//! The overload oracle (`--chaos-stall`): end-to-end proof that stalls
//! and slow consumers are *survivable* faults.
//!
//! Two phases, both asserting convergence back to the fault-free state:
//!
//! 1. **Stalled switch mid-churn.** A two-shard [`ShardRuntime`] drives
//!    one switch over real TCP through a [`chaos::FaultProxy`] whose
//!    schedule freezes the control connection (a [`chaos` Stall]: bytes
//!    stop, the socket stays open) partway into a seeded workload. The
//!    push-deadline watchdog must fire — supersede the stuck writer,
//!    poison the switch, respawn — while the *other* shard keeps
//!    committing. After severing the wedged link, a supervisor-style
//!    resync + replace + reconcile must restore exactly the state a
//!    fault-free run would have installed, with every queue's high-water
//!    mark inside its configured cap.
//!
//! 2. **Slow monitor subscriber.** A real [`ovsdb::Server`] with a
//!    small bounded outbox fans updates out to healthy monitors and one
//!    subscriber that never reads. The slow one must be evicted (not
//!    buffered without bound), healthy monitors must keep receiving,
//!    and the evicted client's reconnect + fresh monitor snapshot must
//!    equal the database — proving eviction loses the subscriber no
//!    state it cannot recover.
//!
//! [`chaos` Stall]: chaos::FaultKind::Stall

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use baselines::{FullRecompute, LearnedMac, Mode, PortConfig};
use chaos::{FaultKind as ChaosFault, FaultProxy, FaultSchedule, Framing};
use nerpa::codegen::CodegenOptions;
use nerpa::controller::NerpaProgram;
use p4sim::runtime::{Digest, TableEntry};
use p4sim::service::{ControlClient, ControlService, SwitchDevice};
use p4sim::Switch;
use serde_json::json;
use shard::{OverloadPolicy, PartitionSpec, Router, ShardRuntime};

use crate::workload::{generate_workload, WorkloadOp};

const MONITORED: [&str; 2] = ["Port", "Switch"];
const SWITCHES: usize = 2;

/// What a green `--chaos-stall` run proves, with the numbers to show it.
#[derive(Debug, Default)]
pub struct OverloadReport {
    /// Workload steps applied.
    pub steps: usize,
    /// Inputs shed (tolerated, healed by resync) during the stall.
    pub sheds: u64,
    /// Write jobs coalesced instead of growing the writer queue.
    pub coalesced: u64,
    /// Push-deadline watchdog firings (must be ≥ 1).
    pub watchdog_restarts: u64,
    /// Commits landed on the healthy shard *while* the other shard's
    /// switch was stalled.
    pub commits_during_stall: u64,
    /// Table entries installed per switch at convergence.
    pub final_entries: usize,
    /// Monitor subscribers evicted in the slow-consumer phase (≥ 1).
    pub evictions: u64,
    /// Healthy monitor subscribers that kept receiving throughout.
    pub healthy_monitors: usize,
}

struct StallHarness {
    db: ovsdb::Database,
    runtime: ShardRuntime,
    devices: Vec<SwitchDevice>,
    policy: OverloadPolicy,
    ports: Vec<PortConfig>,
    macs_by_switch: BTreeMap<usize, Vec<LearnedMac>>,
    live_macs: BTreeSet<(usize, u16, u64, u16)>,
    sheds: u64,
}

impl StallHarness {
    /// Tight bounds so overload machinery engages at oracle scale.
    fn policy() -> OverloadPolicy {
        OverloadPolicy {
            input_queue_cap: 512,
            write_queue_cap: 16,
            enqueue_deadline: Duration::from_secs(1),
            push_deadline: Duration::from_millis(250),
            watchdog_poll: Duration::from_millis(25),
        }
    }

    fn new(
        proxy_addr: std::net::SocketAddr,
        devices: Vec<SwitchDevice>,
    ) -> Result<StallHarness, String> {
        let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA)?;
        let program = p4sim::parse_p4(snvs::assets::SNVS_P4).map_err(|e| e.to_string())?;
        let nerpa_program = NerpaProgram {
            schema: schema.clone(),
            p4info: p4sim::P4Info::from_program(&program),
            rules: snvs::assets::SNVS_RULES.to_string(),
            options: CodegenOptions { per_switch: true },
        };
        let router = Router::new(PartitionSpec::snvs(), SWITCHES);
        let client0 = ControlClient::connect(proxy_addr).map_err(|e| e.to_string())?;
        let policy = Self::policy();
        let runtime = ShardRuntime::start_with(
            &nerpa_program,
            router,
            vec![(0, Box::new(client0)), (1, Box::new(devices[1].clone()))],
            policy.clone(),
        )?;
        let mut harness = StallHarness {
            db: ovsdb::Database::new(schema),
            runtime,
            devices,
            policy,
            ports: Vec::new(),
            macs_by_switch: BTreeMap::new(),
            live_macs: BTreeSet::new(),
            sheds: 0,
        };
        let sw_rows: Vec<serde_json::Value> = (0..SWITCHES)
            .map(|i| json!({"op": "insert", "table": "Switch", "row": {"idx": i}}))
            .collect();
        harness.commit_and_deliver(json!(sw_rows))?;
        Ok(harness)
    }

    /// Commit to the database (must succeed) and offer the changes to
    /// the runtime. An overloaded or degraded runtime may shed the
    /// delivery — that is the fault under test, healed by resync, so it
    /// is counted rather than fatal.
    fn commit_and_deliver(&mut self, ops: serde_json::Value) -> Result<(), String> {
        let before = self.db.commit_index();
        let (results, changes) = self.db.transact(&ops);
        if self.db.commit_index() == before {
            return Err(format!("overload oracle transaction aborted: {results}"));
        }
        if self.runtime.handle_row_changes(&changes).is_err() {
            self.sheds += 1;
        }
        Ok(())
    }

    fn digest(port: u16, mac: u64, vlan: u16) -> Digest {
        Digest {
            name: "mac_learn_t".into(),
            fields: vec![
                ("port".into(), port as u128),
                ("mac".into(), mac as u128),
                ("vlan".into(), vlan as u128),
            ],
        }
    }

    fn port_row_json(cfg: &PortConfig) -> serde_json::Value {
        let mirror: Vec<u16> = cfg.mirror.into_iter().collect();
        match &cfg.mode {
            Mode::Access(v) => json!({
                "id": cfg.id,
                "vlan_mode": "access",
                "tag": v,
                "trunks": ["set", []],
                "mirror_dst": ["set", mirror],
            }),
            Mode::Trunk(vs) => json!({
                "id": cfg.id,
                "vlan_mode": "trunk",
                "trunks": ["set", vs],
                "mirror_dst": ["set", mirror],
            }),
        }
    }

    fn upsert_port(&mut self, cfg: PortConfig) -> Result<(), String> {
        let row = Self::port_row_json(&cfg);
        self.commit_and_deliver(json!([
            {"op": "delete", "table": "Port", "where": [["id", "==", cfg.id]]},
            {"op": "insert", "table": "Port", "row": row},
        ]))?;
        self.ports.retain(|p| p.id != cfg.id);
        self.ports.push(cfg);
        Ok(())
    }

    fn apply(&mut self, op: &WorkloadOp) -> Result<(), String> {
        match op {
            WorkloadOp::AddAccess { port, vlan } => {
                self.upsert_port(PortConfig::access(*port, *vlan))?;
            }
            WorkloadOp::AddTrunk { port, vlans } => {
                self.upsert_port(PortConfig::trunk(*port, vlans.clone()))?;
            }
            WorkloadOp::FlipMode { port } => {
                let Some(cur) = self.ports.iter().find(|p| p.id == *port).cloned() else {
                    return Ok(());
                };
                let mut next = match &cur.mode {
                    Mode::Access(v) => PortConfig::trunk(cur.id, vec![*v]),
                    Mode::Trunk(vs) => {
                        PortConfig::access(cur.id, vs.first().copied().unwrap_or(10))
                    }
                };
                next.mirror = cur.mirror;
                self.upsert_port(next)?;
            }
            WorkloadOp::SetMirror { port, dst } => {
                let Some(mut cur) = self.ports.iter().find(|p| p.id == *port).cloned() else {
                    return Ok(());
                };
                cur.mirror = Some(*dst);
                self.upsert_port(cur)?;
            }
            WorkloadOp::ClearMirror { port } => {
                let Some(mut cur) = self.ports.iter().find(|p| p.id == *port).cloned() else {
                    return Ok(());
                };
                cur.mirror = None;
                self.upsert_port(cur)?;
            }
            WorkloadOp::RemovePort { port } => {
                self.commit_and_deliver(json!([
                    {"op": "delete", "table": "Port", "where": [["id", "==", port]]},
                ]))?;
                self.ports.retain(|p| p.id != *port);
            }
            WorkloadOp::Learn { port, mac, vlan } => {
                let sw = (*mac as usize) % SWITCHES;
                if self.live_macs.contains(&(sw, *port, *mac, *vlan)) {
                    return Ok(());
                }
                let d = Self::digest(*port, *mac, *vlan);
                // Digests are not in the database, so a shed digest is
                // genuinely lost — track only what the runtime accepted
                // and hold convergence to exactly that.
                match self.runtime.handle_digests(sw, vec![d]) {
                    Ok(()) => {
                        self.live_macs.insert((sw, *port, *mac, *vlan));
                        self.macs_by_switch.entry(sw).or_default().push(LearnedMac {
                            port: *port,
                            mac: *mac,
                            vlan: *vlan,
                        });
                    }
                    Err(_) => self.sheds += 1,
                }
            }
            WorkloadOp::Age { pick } => {
                if self.live_macs.is_empty() {
                    return Ok(());
                }
                let idx = (*pick as usize) % self.live_macs.len();
                let (sw, port, mac, vlan) = *self.live_macs.iter().nth(idx).expect("non-empty");
                let d = Self::digest(port, mac, vlan);
                match self.runtime.retract_digests(sw, vec![d]) {
                    Ok(()) => {
                        self.live_macs.remove(&(sw, port, mac, vlan));
                        if let Some(macs) = self.macs_by_switch.get_mut(&sw) {
                            macs.retain(|m| (m.port, m.mac, m.vlan) != (port, mac, vlan));
                        }
                    }
                    Err(_) => self.sheds += 1,
                }
            }
        }
        Ok(())
    }

    fn installed(device: &SwitchDevice) -> BTreeSet<TableEntry> {
        device
            .read_all_tables()
            .into_iter()
            .flat_map(|(_, entries)| entries)
            .collect()
    }

    /// Post-recovery battery: both devices hold exactly the fault-free
    /// state and every queue stayed inside its cap.
    fn check_converged(&self) -> Result<usize, String> {
        let empty = Vec::new();
        let mut total = 0usize;
        for sw in 0..SWITCHES {
            let installed = Self::installed(&self.devices[sw]);
            let macs = self.macs_by_switch.get(&sw).unwrap_or(&empty);
            let (spec_entries, spec_groups) = FullRecompute::desired_state(&self.ports, macs);
            let spec: BTreeSet<TableEntry> = spec_entries.into_iter().collect();
            if installed != spec {
                let extra: Vec<&TableEntry> = installed.difference(&spec).collect();
                let missing: Vec<&TableEntry> = spec.difference(&installed).collect();
                return Err(format!(
                    "switch {sw}: did not converge to fault-free state: \
                     extra {extra:?}, missing {missing:?}"
                ));
            }
            let spec_groups: BTreeMap<u16, BTreeSet<u16>> = spec_groups
                .into_iter()
                .filter(|(_, m)| !m.is_empty())
                .collect();
            let dev_groups = self.devices[sw].mcast_snapshot();
            if dev_groups != spec_groups {
                return Err(format!(
                    "switch {sw}: multicast groups diverged: device {dev_groups:?} != \
                     spec {spec_groups:?}"
                ));
            }
            total += installed.len();
        }
        for shard in 0..SWITCHES {
            let (in_hwm, wr_hwm) = self.runtime.queue_highwater(shard);
            if in_hwm > self.policy.input_queue_cap as u64 {
                return Err(format!(
                    "shard {shard}: input queue high-water {in_hwm} exceeded cap {}",
                    self.policy.input_queue_cap
                ));
            }
            if wr_hwm > self.policy.write_queue_cap as u64 {
                return Err(format!(
                    "shard {shard}: write queue high-water {wr_hwm} exceeded cap {}",
                    self.policy.write_queue_cap
                ));
            }
            let poisoned = self.runtime.poisoned_switches(shard);
            if !poisoned.is_empty() {
                return Err(format!(
                    "shard {shard}: switches {poisoned:?} still poisoned after replace"
                ));
            }
            let dirty = self.runtime.dirty_switches(shard);
            if !dirty.is_empty() {
                return Err(format!(
                    "shard {shard}: switches {dirty:?} still dirty after reconcile"
                ));
            }
        }
        Ok(total)
    }
}

/// Phase 1: stall a switch's control connection mid-churn and prove the
/// watchdog + reconcile path restores the fault-free state.
fn run_stall_phase(
    seed: u64,
    steps: usize,
    stall_seed: u64,
    report: &mut OverloadReport,
) -> Result<(), String> {
    let program = p4sim::parse_p4(snvs::assets::SNVS_P4).map_err(|e| e.to_string())?;
    let devices: Vec<SwitchDevice> = (0..SWITCHES)
        .map(|_| SwitchDevice::new(Switch::new(program.clone())))
        .collect();
    let service =
        ControlService::start(devices[0].clone(), "127.0.0.1:0").map_err(|e| e.to_string())?;
    // The scripted stall: freeze the first control connection after a
    // seed-resolved message count, for longer than any push deadline.
    // The freeze is severed manually once the watchdog has proven
    // itself, so the wedged in-flight frame is dropped, not replayed.
    let plan = ChaosFault::Stall {
        after_messages: (10, 30),
        duration: Duration::from_secs(600),
    }
    .conn_plan()
    .expect("Stall is a wire fault");
    let proxy = FaultProxy::start(
        service.local_addr(),
        FaultSchedule::scripted(stall_seed, Framing::LengthPrefixed, vec![plan]),
    )
    .map_err(|e| e.to_string())?;

    let mut harness = StallHarness::new(proxy.local_addr(), devices)?;
    let shard0 = harness.runtime.shard_of_switch(0);
    let shard1 = harness.runtime.shard_of_switch(1);
    // Shard counters live in the process-global registry, so a second
    // seed in the same run sees the first seed's counts: everything
    // below works in deltas from this baseline.
    let wd_base = harness.runtime.watchdog_restarts(shard0);
    let co_base: u64 = (0..SWITCHES)
        .map(|s| harness.runtime.coalesced_writes(s))
        .sum();

    let ops = generate_workload(seed, steps);
    for op in &ops {
        harness.apply(op)?;
        report.steps += 1;
    }
    // Make sure the stall actually triggered (short workloads may not
    // reach the resolved message count): keep churning until it does.
    let mut filler = 0u64;
    while proxy.stats().stalls == 0 && filler < 1000 {
        filler += 1;
        harness.upsert_port(PortConfig::access(
            40 + (filler % 4) as u16,
            10 + (filler % 3) as u16,
        ))?;
        std::thread::sleep(Duration::from_millis(2));
    }
    if proxy.stats().stalls == 0 {
        return Err("chaos stall never fired (proxy forwarded everything)".into());
    }

    // The watchdog must catch the frozen push within its deadline.
    let deadline = Instant::now() + Duration::from_secs(15);
    while harness.runtime.watchdog_restarts(shard0) == wd_base {
        if Instant::now() > deadline {
            return Err(format!(
                "writer watchdog never fired on shard {shard0} despite a {:?} stall",
                harness.policy.push_deadline
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Isolation: while switch 0 is wedged, the healthy shard (and the
    // wedged shard's own engine) keep committing.
    let c1 = harness.runtime.commits(shard1);
    for i in 0..20u16 {
        harness.upsert_port(PortConfig::access(50 + (i % 4), 20 + (i % 5)))?;
    }
    harness.runtime.flush();
    let gained = harness.runtime.commits(shard1).saturating_sub(c1);
    if gained == 0 {
        return Err(format!(
            "shard {shard1} stopped committing while shard {shard0}'s switch was stalled"
        ));
    }
    report.commits_during_stall = gained;

    // Recovery, supervisor-style: sever the wedged link, resync every
    // shard from a fresh snapshot, install a fresh control connection
    // for the stalled switch, reconcile, and drain.
    proxy.sever_all();
    let snapshot = harness.db.monitor_snapshot(&MONITORED)?;
    let tables: Vec<String> = MONITORED.iter().map(|t| t.to_string()).collect();
    harness.runtime.resync_from_snapshot(&snapshot, &tables)?;
    let fresh = ControlClient::connect(proxy.local_addr()).map_err(|e| e.to_string())?;
    harness.runtime.replace_switch(0, Box::new(fresh))?;
    harness.runtime.reconcile_shard(shard1)?;
    harness.runtime.flush();
    // A write error racing the first reconcile can leave a switch
    // dirty; one more reconcile round must settle it.
    if (0..SWITCHES).any(|s| !harness.runtime.dirty_switches(s).is_empty()) {
        for shard in 0..SWITCHES {
            harness.runtime.reconcile_shard(shard)?;
        }
        harness.runtime.flush();
    }

    report.final_entries = harness.check_converged()?;
    report.sheds = harness.sheds;
    report.watchdog_restarts = harness.runtime.watchdog_restarts(shard0) - wd_base;
    report.coalesced = (0..SWITCHES)
        .map(|s| harness.runtime.coalesced_writes(s))
        .sum::<u64>()
        - co_base;
    Ok(())
}

/// Phase 2: a slow monitor subscriber on a real TCP server must be
/// evicted, healthy monitors keep flowing, and the evicted client's
/// reconnect snapshot equals the database.
fn run_monitor_phase(report: &mut OverloadReport) -> Result<(), String> {
    const HEALTHY: usize = 4;
    let schema = ovsdb::Schema::from_json(&json!({
        "name": "overloaddb",
        "tables": {
            "T": {"columns": {"k": {"type": "string"},
                              "v": {"type": "integer"}}, "isRoot": true}
        }
    }))?;
    let server = ovsdb::Server::start_with(
        ovsdb::Database::new(schema),
        "127.0.0.1:0",
        ovsdb::MonitorOverload {
            outbox_cap: 4,
            evict_deadline: Duration::from_millis(200),
        },
    )
    .map_err(|e| e.to_string())?;

    let healthy: Vec<(
        ovsdb::Client,
        crossbeam_channel::Receiver<serde_json::Value>,
    )> = (0..HEALTHY)
        .map(|i| {
            let c = ovsdb::Client::connect(server.local_addr()).map_err(|e| e.to_string())?;
            let (_, rx) = c.monitor("overloaddb", json!(i), json!({"T": {}}))?;
            Ok((c, rx))
        })
        .collect::<Result<_, String>>()?;

    // The slow subscriber: registers a monitor over a raw socket and
    // never reads another byte.
    let mut slow = std::net::TcpStream::connect(server.local_addr()).map_err(|e| e.to_string())?;
    {
        use ovsdb::rpc::{write_message, Message, MessageReader};
        write_message(
            &mut slow,
            &Message::Request {
                id: json!(1),
                method: "monitor".to_string(),
                params: json!(["overloaddb", "slow", {"T": {}}]),
            },
        )
        .map_err(|e| e.to_string())?;
        let mut rd = MessageReader::new(slow.try_clone().map_err(|e| e.to_string())?);
        match rd.read().map_err(|e| e.to_string())? {
            Some(Message::Response { error, .. }) if error.is_null() => {}
            other => return Err(format!("slow monitor registration failed: {other:?}")),
        }
    }
    if server.subscription_count() != HEALTHY + 1 {
        return Err("slow subscriber did not register".into());
    }

    let evictions_before = telemetry::global()
        .registry
        .value("ovsdb_monitor_evictions_total")
        .unwrap_or(0);

    // Flood with fat rows until the slow subscriber's outbox wedges and
    // eviction fires.
    let mut keys: BTreeSet<String> = BTreeSet::new();
    let big = "x".repeat(256 * 1024);
    let mut evicted = false;
    for i in 0..64 {
        let k = format!("r{i}");
        server.transact_local(&json!([
            {"op": "insert", "table": "T", "row": {"k": format!("{k}-{big}"), "v": i}}
        ]));
        keys.insert(format!("{k}-{big}"));
        if server.subscription_count() == HEALTHY {
            evicted = true;
            break;
        }
    }
    if !evicted {
        return Err("slow monitor subscriber was never evicted".into());
    }
    report.evictions = telemetry::global()
        .registry
        .value("ovsdb_monitor_evictions_total")
        .unwrap_or(0)
        .saturating_sub(evictions_before);
    if report.evictions == 0 {
        return Err("subscription vanished without an eviction being counted".into());
    }

    // The bounded outbox must never have exceeded its cap.
    let hwm = telemetry::global()
        .registry
        .value("ovsdb_monitor_outbox_depth_hwm")
        .unwrap_or(0);
    if hwm > 4 {
        return Err(format!("monitor outbox high-water {hwm} exceeded cap 4"));
    }

    // Healthy monitors keep receiving: a marker committed after the
    // eviction must reach all of them.
    server.transact_local(&json!([
        {"op": "insert", "table": "T", "row": {"k": "post-evict", "v": 999}}
    ]));
    keys.insert("post-evict".to_string());
    for (i, (_, rx)) in healthy.iter().enumerate() {
        let mut saw = false;
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let Ok(upd) = rx.recv_timeout(remaining) else {
                break;
            };
            if upd["T"]
                .as_object()
                .map(|rows| rows.values().any(|r| r["new"]["k"] == json!("post-evict")))
                .unwrap_or(false)
            {
                saw = true;
                break;
            }
        }
        if !saw {
            return Err(format!(
                "healthy monitor {i} stopped receiving after the eviction"
            ));
        }
    }
    report.healthy_monitors = HEALTHY;

    // Eviction safety: the evicted client reconnects and re-monitors;
    // its fresh initial snapshot must equal the database contents.
    let reborn = ovsdb::Client::connect(server.local_addr()).map_err(|e| e.to_string())?;
    let (initial, _rx) = reborn.monitor("overloaddb", json!("reborn"), json!({"T": {}}))?;
    let got: BTreeSet<String> = initial["T"]
        .as_object()
        .map(|rows| {
            rows.values()
                .filter_map(|r| r["new"]["k"].as_str().map(|s| s.to_string()))
                .collect()
        })
        .unwrap_or_default();
    if got != keys {
        return Err(format!(
            "reconnect snapshot diverged from database: {} rows vs {} expected",
            got.len(),
            keys.len()
        ));
    }
    Ok(())
}

/// Run both overload phases. `seed`/`steps` shape the churn workload,
/// `stall_seed` resolves the chaos stall point.
pub fn run_overload_oracle(
    seed: u64,
    steps: usize,
    stall_seed: u64,
) -> Result<OverloadReport, String> {
    let mut report = OverloadReport::default();
    run_stall_phase(seed, steps, stall_seed, &mut report)?;
    run_monitor_phase(&mut report)?;
    Ok(report)
}
