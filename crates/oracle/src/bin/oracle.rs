//! The oracle CLI: deterministic differential fuzzing runs.
//!
//! ```text
//! oracle --seed 1..8 --steps 500            # fault-free sweep
//! oracle --seed 3 --steps 500 --chaos 7     # with fault injection
//! oracle --seed 3 --steps 500 --chaos-crash 7  # + server crash faults
//! oracle --seed 3 --steps 200 --bug skip-resync-deletes   # must fail
//! oracle --seed 1..4 --steps 300 --shards 4 # sharded vs unsharded
//! oracle --seed 1 --steps 150 --chaos-stall 7  # overload/stall survival
//! ```
//!
//! Exit codes: 0 = all seeds green, 1 = divergence found (a shrunk
//! reproduction is printed), 2 = usage error.

use oracle::{
    run_oracle, run_overload_oracle, run_sharded_oracle, InjectedBug, OracleConfig, OracleFailure,
    OracleReport,
};

struct Args {
    seeds: Vec<u64>,
    steps: usize,
    chaos: Option<u64>,
    crashes: bool,
    bug: Option<InjectedBug>,
    shards: usize,
    stall: Option<u64>,
    flight_dir: Option<std::path::PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: oracle --seed <N | A..B> [--steps M] [--chaos S] [--bug NAME] [--shards N]\n\
         \n\
         --seed  N or inclusive range A..B of workload seeds (required)\n\
         --steps workload length per seed (default 500)\n\
         --chaos chaos seed: inject link outages + switch restarts\n\
         --chaos-crash S like --chaos, plus abrupt server crashes with\n\
         \x20       torn WAL tails (crash-equivalence checked)\n\
         --bug   inject a known controller defect, one of:\n\
         \x20       skip-resync-deletes | drop-config-deletes |\n\
         \x20       stale-arrangement\n\
         --shards N run the sharded harness: N shard engines over N\n\
         \x20       switches, checked for cross-shard equivalence against\n\
         \x20       one unsharded engine (incompatible with --chaos-crash\n\
         \x20       and --bug)\n\
         --chaos-stall S overload mode: stall a live switch connection\n\
         \x20       mid-churn (frozen socket, not closed) and wedge a slow\n\
         \x20       OVSDB monitor; asserts the writer watchdog fires, the\n\
         \x20       supervisor recovers, queue depths stay bounded, the\n\
         \x20       slow monitor is evicted, and the final data-plane state\n\
         \x20       converges to the fault-free spec (incompatible with\n\
         \x20       --chaos/--chaos-crash/--bug/--shards)\n\
         --flight-dir D arm the flight recorder: failure dumps land in D,\n\
         \x20       and every chaos run writes a run-end `.nfr` there\n\
         \x20       (inspect with `nerpa-flight show`)"
    );
    std::process::exit(2);
}

fn parse_seeds(s: &str) -> Option<Vec<u64>> {
    if let Some((a, b)) = s.split_once("..") {
        let a: u64 = a.parse().ok()?;
        let b: u64 = b.trim_start_matches('=').parse().ok()?;
        (a <= b).then(|| (a..=b).collect())
    } else {
        Some(vec![s.parse().ok()?])
    }
}

fn parse_args() -> Option<Args> {
    let mut args = Args {
        seeds: Vec::new(),
        steps: 500,
        chaos: None,
        crashes: false,
        bug: None,
        shards: 0,
        stall: None,
        flight_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => args.seeds = parse_seeds(&it.next()?)?,
            "--steps" => args.steps = it.next()?.parse().ok()?,
            "--chaos" => args.chaos = Some(it.next()?.parse().ok()?),
            "--chaos-crash" => {
                args.chaos = Some(it.next()?.parse().ok()?);
                args.crashes = true;
            }
            "--bug" => args.bug = InjectedBug::parse(&it.next()?),
            "--shards" => {
                args.shards = it.next()?.parse().ok()?;
                if args.shards == 0 {
                    return None;
                }
            }
            "--chaos-stall" => args.stall = Some(it.next()?.parse().ok()?),
            "--flight-dir" => args.flight_dir = Some(std::path::PathBuf::from(it.next()?)),
            "--help" | "-h" => usage(),
            _ => return None,
        }
    }
    if args.seeds.is_empty() {
        return None;
    }
    // The sharded harness runs on an in-memory database (no WAL to
    // crash) and checks a different battery than the bug-demo runs.
    if args.shards > 0 && (args.crashes || args.bug.is_some()) {
        return None;
    }
    // The overload run drives its own harness (real TCP control + OVSDB
    // connections, chaos stall proxy) and its own pass/fail criteria.
    if args.stall.is_some() && (args.chaos.is_some() || args.bug.is_some() || args.shards > 0) {
        return None;
    }
    Some(args)
}

fn replay_command(cfg: &OracleConfig) -> String {
    let mut cmd = format!("oracle --seed {} --steps {}", cfg.seed, cfg.steps);
    if let Some(c) = cfg.chaos {
        cmd.push_str(&format!(
            " {} {c}",
            if cfg.crashes {
                "--chaos-crash"
            } else {
                "--chaos"
            }
        ));
    }
    if let Some(b) = cfg.bug {
        cmd.push_str(&format!(" --bug {}", b.name()));
    }
    if cfg.shards > 0 {
        cmd.push_str(&format!(" --shards {}", cfg.shards));
    }
    cmd
}

fn report_ok(seed: u64, cfg: &OracleConfig, report: &OracleReport) {
    let shard_note = if cfg.shards > 0 {
        format!(" [{} shards]", cfg.shards)
    } else {
        String::new()
    };
    println!(
        "seed {seed}: OK{shard_note} — {} steps, {} outages, {} switch restarts, \
         {} crashes ({} torn tails), {} txns, {} entries / {} groups installed",
        report.steps,
        report.outages,
        report.switch_restarts,
        report.crashes,
        report.torn_tails,
        report.transactions,
        report.final_entries,
        report.final_groups,
    );
}

fn report_failure(seed: u64, cfg: &OracleConfig, fail: &OracleFailure) {
    println!("seed {seed}: FAILED at {}", fail.failure);
    println!(
        "  shrunk {} ops -> {} ops:",
        fail.original_len,
        fail.shrunk.len()
    );
    for op in &fail.shrunk {
        println!("    {op:?}");
    }
    println!("  replay: {}", replay_command(cfg));
    if let Some(why) = &fail.failure.why_dump {
        println!("  provenance of the first diverging tuple:");
        for line in why.lines() {
            println!("    {line}");
        }
    }
    if let Some(profile) = &fail.failure.work_profile {
        println!("  work profile of failing step:");
        for line in profile.lines() {
            println!("    {line}");
        }
    }
    if let Some(trace) = &fail.failing_trace {
        println!("  last trace before failure:");
        for line in trace.lines() {
            println!("    {line}");
        }
    }
    println!("  metrics at failure:");
    for line in fail.metrics_snapshot.lines() {
        println!("    {line}");
    }
    if let Some(path) = &fail.dump_path {
        println!("  flight recorder dump: {}", path.display());
        println!("  inspect: nerpa-flight show {}", path.display());
    }
}

fn main() {
    let Some(args) = parse_args() else { usage() };
    if let Some(dir) = &args.flight_dir {
        telemetry::global().recorder.arm(dir.clone());
    }
    let mut failed = false;
    if let Some(stall_seed) = args.stall {
        for seed in &args.seeds {
            match run_overload_oracle(*seed, args.steps, stall_seed) {
                Ok(r) => println!(
                    "seed {seed}: OK [overload] — {} steps, {} commits during stall, \
                     {} watchdog restarts, {} coalesced writes, {} shed inputs, \
                     {} monitor evictions, {}/{} healthy monitors, {} entries installed",
                    r.steps,
                    r.commits_during_stall,
                    r.watchdog_restarts,
                    r.coalesced,
                    r.sheds,
                    r.evictions,
                    r.healthy_monitors,
                    r.healthy_monitors,
                    r.final_entries,
                ),
                Err(e) => {
                    failed = true;
                    println!("seed {seed}: FAILED [overload] — {e}");
                    println!(
                        "  replay: oracle --seed {seed} --steps {} --chaos-stall {stall_seed}",
                        args.steps
                    );
                }
            }
        }
        std::process::exit(if failed { 1 } else { 0 });
    }
    for seed in &args.seeds {
        let cfg = OracleConfig {
            seed: *seed,
            steps: args.steps,
            chaos: args.chaos,
            crashes: args.crashes,
            bug: args.bug,
            shards: args.shards,
        };
        let outcome = if cfg.shards > 0 {
            run_sharded_oracle(&cfg)
        } else {
            run_oracle(&cfg)
        };
        match outcome {
            Ok(report) => report_ok(*seed, &cfg, &report),
            Err(fail) => {
                failed = true;
                report_failure(*seed, &cfg, &fail);
            }
        }
    }
    // `NERPA_METRICS=1` attaches the full registry to a green run, the
    // same snapshot a failure prints unconditionally.
    if std::env::var("NERPA_METRICS").is_ok() {
        print!("\n{}", telemetry::global().registry.render_text());
    }
    // An armed chaos run ships its black box even when green: the
    // run-end dump is what CI parses back with `nerpa-flight`.
    if args.chaos.is_some() {
        if let Some(dir) = telemetry::global().recorder.armed_dir() {
            match telemetry::global()
                .recorder
                .dump_into(&dir, "chaos-run", "chaos run end")
            {
                Ok(path) => println!("flight recorder dump: {}", path.display()),
                Err(e) => eprintln!("flight recorder dump failed: {e}"),
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
