//! Seeded workload generation: typed management-plane transactions and
//! data-plane digest traffic, plus fault plans derived from
//! [`chaos::FaultSchedule`] seeds.

use chaos::{ConnFault, Direction, FaultSchedule, Framing};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Duration;

/// One step of oracle workload. Every variant maps to a concrete OVSDB
/// transaction or digest batch on the incremental side and to the
/// equivalent model mutation on the full-recompute side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Upsert port `port` as an access port on `vlan`.
    AddAccess {
        /// Port id.
        port: u16,
        /// Access VLAN.
        vlan: u16,
    },
    /// Upsert port `port` as a trunk carrying `vlans`.
    AddTrunk {
        /// Port id.
        port: u16,
        /// Allowed VLANs (non-empty).
        vlans: Vec<u16>,
    },
    /// Flip the port's mode: access→trunk (trunking its access VLAN)
    /// or trunk→access (on its first trunk VLAN). No-op if absent.
    FlipMode {
        /// Port id.
        port: u16,
    },
    /// Set the port's ingress mirror destination. No-op if absent.
    SetMirror {
        /// Port id.
        port: u16,
        /// Mirror destination port.
        dst: u16,
    },
    /// Clear the port's mirror destination. No-op if absent.
    ClearMirror {
        /// Port id.
        port: u16,
    },
    /// Delete the port row. No-op if absent.
    RemovePort {
        /// Port id.
        port: u16,
    },
    /// A MAC-learn digest from the data plane.
    Learn {
        /// Reporting port.
        port: u16,
        /// Learned MAC.
        mac: u64,
        /// VLAN it was seen on.
        vlan: u16,
    },
    /// Age out one currently-live learned MAC, chosen by `pick` modulo
    /// the live count (the retraction half of the learn/age cycle).
    /// No-op when nothing is learned.
    Age {
        /// Selector into the live MAC set.
        pick: u64,
    },
}

/// What a fault event does to the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The OVSDB monitor link drops: the controller misses management
    /// updates for `outage_steps` steps, then reconnects and resyncs
    /// from a fresh snapshot.
    OvsdbOutage {
        /// Steps the link stays down.
        outage_steps: usize,
    },
    /// The switch restarts with partial stale state; the controller
    /// re-dials and reconciles its tables.
    SwitchRestart,
    /// The OVSDB server process is killed abruptly — mid-WAL-write when
    /// `torn_tail_bytes > 0` — and restarted from its durability
    /// directory. The oracle checks crash-equivalence: the recovered
    /// state must equal the pre-crash committed prefix, losing at most
    /// the single transaction whose log record was torn.
    CrashServer {
        /// Bytes chopped off the WAL's final record (0 = clean crash;
        /// the WAL layer clamps the chop to that one record).
        torn_tail_bytes: u64,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The step *before* which the fault fires.
    pub at_step: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A resolved fault plan for one run: faults in step order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Scheduled faults, strictly increasing in `at_step`.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Derive a deterministic fault plan for a `steps`-long run from a
    /// chaos seed, reusing [`chaos::FaultSchedule`]'s seeded resolution
    /// so that a chaos seed means the same thing here as it does for the
    /// TCP fault proxy: `resolve(k).kill_at` is how long "connection" k
    /// survives (in steps), and the jittered delay doubles as the outage
    /// length. Faults alternate between management-link outages and
    /// switch restarts.
    pub fn from_chaos_seed(seed: u64, steps: usize) -> FaultPlan {
        FaultPlan::build(seed, steps, false)
    }

    /// Like [`FaultPlan::from_chaos_seed`] but rotating server-process
    /// crashes into the mix (outage / switch restart / crash): the
    /// durability fault plan. Crash torn-tail sizes are drawn through
    /// [`chaos::FaultKind::resolve_crash`], so a chaos seed pins the
    /// exact bytes torn off the WAL, run after run.
    pub fn from_chaos_seed_with_crashes(seed: u64, steps: usize) -> FaultPlan {
        FaultPlan::build(seed, steps, true)
    }

    fn build(seed: u64, steps: usize, crashes: bool) -> FaultPlan {
        let schedule = FaultSchedule::transparent(seed, Framing::Ndjson).with_default_plan(
            ConnFault::kill_between(8, 60, Direction::Both)
                .delayed(Duration::from_micros(1), Duration::from_micros(5)),
        );
        let crash_source = chaos::FaultKind::CrashServer {
            after_commits: (1, 1),
            // 0..=64 spans "clean crash" through "most of a small record
            // torn"; the WAL layer clamps to the final record anyway.
            torn_tail_bytes: (0, 64),
        };
        let period = if crashes { 3 } else { 2 };
        let mut events = Vec::new();
        let mut step = 0usize;
        for conn in 0u64.. {
            let fault = schedule.resolve(conn);
            let survive = fault.kill_at.unwrap_or(u64::MAX) as usize;
            let outage = fault.delay.as_micros() as usize; // 1..=6
            step += survive;
            if step >= steps {
                break;
            }
            let kind = match conn % period {
                0 => FaultKind::OvsdbOutage {
                    outage_steps: outage,
                },
                1 => FaultKind::SwitchRestart,
                _ => FaultKind::CrashServer {
                    torn_tail_bytes: crash_source
                        .resolve_crash(seed, conn)
                        .expect("crash fault resolves")
                        .torn_tail_bytes,
                },
            };
            events.push(FaultEvent {
                at_step: step,
                kind,
            });
            // The next "connection" starts counting after the outage.
            if let FaultKind::OvsdbOutage { outage_steps } = kind {
                step += outage_steps;
            }
        }
        FaultPlan { events }
    }

    /// Whether the plan schedules any server-process crash.
    pub fn has_crashes(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::CrashServer { .. }))
    }
}

/// Generate a `steps`-long deterministic workload for `seed`.
///
/// The port/VLAN/MAC universes are intentionally small (8 ports, 3
/// VLANs, 6 MACs) so that collisions — upserts over live rows, learns on
/// unconfigured ports, ageing of moved MACs — happen constantly; that is
/// where incremental maintenance bugs live.
pub fn generate_workload(seed: u64, steps: usize) -> Vec<WorkloadOp> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF_0CA7_u64.rotate_left(17));
    let mut ops = Vec::with_capacity(steps);
    for _ in 0..steps {
        let port = rng.random_range(0u16..8);
        let vlan = 10 + rng.random_range(0u16..3);
        let op = match rng.random_range(0u32..100) {
            0..=17 => WorkloadOp::AddAccess { port, vlan },
            18..=35 => {
                let n = rng.random_range(1usize..=3);
                let mut vlans: Vec<u16> = (0..n).map(|_| 10 + rng.random_range(0u16..3)).collect();
                vlans.sort_unstable();
                vlans.dedup();
                WorkloadOp::AddTrunk { port, vlans }
            }
            36..=45 => WorkloadOp::FlipMode { port },
            46..=53 => WorkloadOp::SetMirror {
                port,
                dst: rng.random_range(0u16..8),
            },
            54..=58 => WorkloadOp::ClearMirror { port },
            59..=70 => WorkloadOp::RemovePort { port },
            71..=89 => WorkloadOp::Learn {
                port,
                mac: 0xAA00 + rng.random_range(0u64..6),
                vlan,
            },
            _ => WorkloadOp::Age {
                pick: rng.random_range(0u64..64),
            },
        };
        ops.push(op);
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(generate_workload(7, 100), generate_workload(7, 100));
        assert_ne!(generate_workload(7, 100), generate_workload(8, 100));
    }

    #[test]
    fn fault_plan_is_deterministic_and_ordered() {
        let a = FaultPlan::from_chaos_seed(3, 500);
        let b = FaultPlan::from_chaos_seed(3, 500);
        assert_eq!(a, b);
        assert!(
            !a.events.is_empty(),
            "500 steps must see at least one fault"
        );
        for w in a.events.windows(2) {
            assert!(w[0].at_step < w[1].at_step);
        }
        assert!(a.events.iter().all(|e| e.at_step < 500));
    }

    #[test]
    fn crash_plan_is_deterministic_and_adds_crashes() {
        let a = FaultPlan::from_chaos_seed_with_crashes(3, 500);
        let b = FaultPlan::from_chaos_seed_with_crashes(3, 500);
        assert_eq!(a, b);
        assert!(a.has_crashes(), "500 steps must schedule a crash");
        // The crash-free plan never schedules one.
        assert!(!FaultPlan::from_chaos_seed(3, 500).has_crashes());
    }

    #[test]
    fn workload_covers_all_op_kinds() {
        let ops = generate_workload(1, 400);
        let has = |f: &dyn Fn(&WorkloadOp) -> bool| ops.iter().any(f);
        assert!(has(&|o| matches!(o, WorkloadOp::AddAccess { .. })));
        assert!(has(&|o| matches!(o, WorkloadOp::AddTrunk { .. })));
        assert!(has(&|o| matches!(o, WorkloadOp::FlipMode { .. })));
        assert!(has(&|o| matches!(o, WorkloadOp::SetMirror { .. })));
        assert!(has(&|o| matches!(o, WorkloadOp::ClearMirror { .. })));
        assert!(has(&|o| matches!(o, WorkloadOp::RemovePort { .. })));
        assert!(has(&|o| matches!(o, WorkloadOp::Learn { .. })));
        assert!(has(&|o| matches!(o, WorkloadOp::Age { .. })));
    }
}
