//! End-to-end overload robustness: the faults ISSUE "overload" makes
//! survivable, pinned as regressions.
//!
//! * The full `--chaos-stall` oracle (stalled TCP control connection →
//!   watchdog → supervisor recovery → convergence; slow OVSDB monitor →
//!   eviction → reconnect resync) stays green.
//! * A writer wedged in a device push is superseded by the watchdog,
//!   the switch is poisoned (fast-fail, no silent buffering), and a
//!   replace + reconcile restores exactly the state a fault-free
//!   reference runtime installs from the same inputs.
//! * Evicting a slow monitor loses it nothing it cannot recover: a
//!   healthy subscriber's streamed view and the evicted client's
//!   post-reconnect snapshot agree on the final database contents.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nerpa::codegen::CodegenOptions;
use nerpa::controller::{DataPlane, NerpaProgram};
use oracle::run_overload_oracle;
use p4sim::runtime::{TableEntry, Update};
use p4sim::{parse_p4, Switch, SwitchDevice};
use serde_json::json;
use shard::{OverloadPolicy, PartitionSpec, Router, ShardRuntime};

#[test]
fn overload_oracle_survives_stall_and_eviction() {
    let report = run_overload_oracle(21, 80, 5).expect("overload oracle must be green");
    assert!(
        report.watchdog_restarts >= 1,
        "stall must trip the writer watchdog: {report:?}"
    );
    assert!(
        report.commits_during_stall > 0,
        "healthy shard must keep committing during the stall: {report:?}"
    );
    assert!(
        report.evictions >= 1,
        "slow monitor must be evicted: {report:?}"
    );
    assert_eq!(report.healthy_monitors, 4, "{report:?}");
    assert!(report.final_entries > 0, "{report:?}");
}

/// A data plane whose writes block while `stuck` is set — the local
/// stand-in for a switch that accepts the connection but stops
/// acknowledging pushes.
struct StuckDevice {
    inner: SwitchDevice,
    stuck: Arc<AtomicBool>,
}

impl DataPlane for StuckDevice {
    fn write_updates(&self, updates: &[Update]) -> Result<(), String> {
        while self.stuck.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.inner.write(updates)
    }

    fn set_mcast_group(&self, group: u16, ports: Vec<u16>) -> Result<(), String> {
        self.inner.set_mcast_group(group, ports);
        Ok(())
    }

    fn read_all_tables(&self) -> Result<Vec<(String, Vec<TableEntry>)>, String> {
        Ok(self.inner.read_all_tables())
    }
}

fn snvs_program() -> (ovsdb::Schema, p4sim::ast::Program, NerpaProgram) {
    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).expect("snvs schema");
    let program = parse_p4(snvs::assets::SNVS_P4).expect("snvs p4");
    let nerpa = NerpaProgram {
        schema: schema.clone(),
        p4info: p4sim::P4Info::from_program(&program),
        rules: snvs::assets::SNVS_RULES.to_string(),
        options: CodegenOptions { per_switch: true },
    };
    (schema, program, nerpa)
}

fn sorted_tables(dev: &SwitchDevice) -> Vec<(String, Vec<TableEntry>)> {
    let mut tables = dev.read_all_tables();
    for (_, entries) in &mut tables {
        entries.sort();
    }
    tables
}

#[test]
fn watchdog_restart_then_replace_reconciles_to_reference_state() {
    let (schema, program, nerpa) = snvs_program();
    let stuck = Arc::new(AtomicBool::new(false));
    let victim_inner = SwitchDevice::new(Switch::new(program.clone()));
    let dev1 = SwitchDevice::new(Switch::new(program.clone()));

    let policy = OverloadPolicy {
        input_queue_cap: 256,
        write_queue_cap: 8,
        enqueue_deadline: Duration::from_millis(500),
        push_deadline: Duration::from_millis(100),
        watchdog_poll: Duration::from_millis(10),
    };
    let runtime = ShardRuntime::start_with(
        &nerpa,
        Router::new(PartitionSpec::snvs(), 2),
        vec![
            (
                0,
                Box::new(StuckDevice {
                    inner: victim_inner,
                    stuck: Arc::clone(&stuck),
                }),
            ),
            (1, Box::new(dev1.clone())),
        ],
        policy,
    )
    .expect("runtime starts");

    // The fault-free reference: same program, same inputs, no stall.
    let ref_dev0 = SwitchDevice::new(Switch::new(program.clone()));
    let ref_dev1 = SwitchDevice::new(Switch::new(program.clone()));
    let reference = ShardRuntime::start_with(
        &nerpa,
        Router::new(PartitionSpec::snvs(), 2),
        vec![
            (0, Box::new(ref_dev0.clone())),
            (1, Box::new(ref_dev1.clone())),
        ],
        OverloadPolicy::default(),
    )
    .expect("reference runtime starts");

    let mut db = ovsdb::Database::new(schema);
    let deliver = |db: &mut ovsdb::Database, ops: serde_json::Value| {
        let (_, changes) = db.transact(&ops);
        runtime
            .handle_row_changes(&changes)
            .expect("victim delivery");
        reference
            .handle_row_changes(&changes)
            .expect("reference delivery");
    };

    deliver(
        &mut db,
        json!([
            {"op": "insert", "table": "Switch", "row": {"idx": 0}},
            {"op": "insert", "table": "Switch", "row": {"idx": 1}},
            {"op": "insert", "table": "Port",
             "row": {"id": 1, "vlan_mode": "access", "tag": 10}},
        ]),
    );
    runtime.flush();

    let shard0 = runtime.shard_of_switch(0);
    let wd_base = runtime.watchdog_restarts(shard0);

    // Wedge switch 0 and commit through the stall: the push-deadline
    // watchdog must supersede the stuck writer and poison the switch.
    stuck.store(true, Ordering::SeqCst);
    deliver(
        &mut db,
        json!([{"op": "insert", "table": "Port",
                "row": {"id": 2, "vlan_mode": "access", "tag": 10}}]),
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    while runtime.watchdog_restarts(shard0) == wd_base {
        assert!(
            Instant::now() < deadline,
            "watchdog never fired on a 100ms push deadline"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        runtime.poisoned_switches(shard0),
        vec![0],
        "stuck switch must be poisoned, not silently buffered"
    );

    // The healthy switch keeps absorbing changes while 0 is poisoned.
    deliver(
        &mut db,
        json!([{"op": "insert", "table": "Port",
                "row": {"id": 3, "vlan_mode": "trunk", "trunks": [10, 20]}}]),
    );
    runtime.flush();
    assert!(
        !runtime.dirty_switches(shard0).is_empty(),
        "failed pushes must leave the poisoned switch marked dirty"
    );

    // Supervisor recovery: unwedge (the superseded writer dies off), hand
    // the runtime a fresh device, reconcile, drain.
    stuck.store(false, Ordering::SeqCst);
    let fresh = SwitchDevice::new(Switch::new(program.clone()));
    runtime
        .replace_switch(0, Box::new(fresh.clone()))
        .expect("replace");
    for shard in 0..2 {
        runtime.reconcile_shard(shard).expect("reconcile");
    }
    runtime.flush();
    reference.flush();

    assert!(runtime.poisoned_switches(shard0).is_empty());
    assert!((0..2).all(|s| runtime.dirty_switches(s).is_empty()));
    assert_eq!(
        sorted_tables(&fresh),
        sorted_tables(&ref_dev0),
        "recovered switch 0 must match the fault-free reference"
    );
    assert_eq!(fresh.mcast_snapshot(), ref_dev0.mcast_snapshot());
    assert_eq!(sorted_tables(&dev1), sorted_tables(&ref_dev1));
    assert_eq!(dev1.mcast_snapshot(), ref_dev1.mcast_snapshot());
}

#[test]
fn evicted_monitor_resync_equals_healthy_stream() {
    let schema = ovsdb::Schema::from_json(&json!({
        "name": "evictdb",
        "tables": {
            "T": {"columns": {"k": {"type": "string"},
                              "v": {"type": "integer"}}, "isRoot": true}
        }
    }))
    .expect("schema");
    let server = ovsdb::Server::start_with(
        ovsdb::Database::new(schema),
        "127.0.0.1:0",
        ovsdb::MonitorOverload {
            outbox_cap: 4,
            evict_deadline: Duration::from_millis(150),
        },
    )
    .expect("server");

    let healthy = ovsdb::Client::connect(server.local_addr()).expect("healthy connect");
    let (initial, rx) = healthy
        .monitor("evictdb", json!("healthy"), json!({"T": {}}))
        .expect("healthy monitor");
    // uuid → key: the healthy subscriber's incrementally-maintained view.
    let mut streamed: BTreeMap<String, String> = initial["T"]
        .as_object()
        .map(|rows| {
            rows.iter()
                .filter_map(|(u, r)| r["new"]["k"].as_str().map(|k| (u.clone(), k.to_string())))
                .collect()
        })
        .unwrap_or_default();

    // The slow subscriber registers, then never reads another byte.
    let mut slow = std::net::TcpStream::connect(server.local_addr()).expect("slow connect");
    {
        use ovsdb::rpc::{write_message, Message, MessageReader};
        write_message(
            &mut slow,
            &Message::Request {
                id: json!(1),
                method: "monitor".to_string(),
                params: json!(["evictdb", "slow", {"T": {}}]),
            },
        )
        .expect("slow monitor request");
        let mut rd = MessageReader::new(slow.try_clone().expect("clone"));
        assert!(matches!(
            rd.read().expect("slow monitor reply"),
            Some(Message::Response { .. })
        ));
    }
    assert_eq!(server.subscription_count(), 2);

    // Flood with fat rows until the wedged outbox forces the eviction.
    let big = "y".repeat(128 * 1024);
    let mut evicted = false;
    for i in 0..64 {
        server.transact_local(&json!([
            {"op": "insert", "table": "T", "row": {"k": format!("r{i}-{big}"), "v": i}}
        ]));
        if server.subscription_count() == 1 {
            evicted = true;
            break;
        }
    }
    assert!(evicted, "slow subscriber was never evicted");

    server.transact_local(&json!([
        {"op": "insert", "table": "T", "row": {"k": "marker", "v": -1}}
    ]));

    // Apply the stream until the marker arrives: inserts add, deletes
    // remove, exactly the resync algebra a real monitor client runs.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut saw_marker = false;
    while !saw_marker && Instant::now() < deadline {
        let remaining = deadline.saturating_duration_since(Instant::now());
        let Ok(upd) = rx.recv_timeout(remaining) else {
            break;
        };
        if let Some(rows) = upd["T"].as_object() {
            for (uuid, r) in rows {
                match r["new"]["k"].as_str() {
                    Some(k) => {
                        if k == "marker" {
                            saw_marker = true;
                        }
                        streamed.insert(uuid.clone(), k.to_string());
                    }
                    None => {
                        streamed.remove(uuid);
                    }
                }
            }
        }
    }
    assert!(saw_marker, "healthy stream stalled after the eviction");

    // The evicted client reconnects; its snapshot must equal the view
    // the healthy subscriber maintained incrementally.
    drop(slow);
    let reborn = ovsdb::Client::connect(server.local_addr()).expect("reborn connect");
    let (snapshot, _rx2) = reborn
        .monitor("evictdb", json!("reborn"), json!({"T": {}}))
        .expect("reborn monitor");
    let snap: BTreeMap<String, String> = snapshot["T"]
        .as_object()
        .map(|rows| {
            rows.iter()
                .filter_map(|(u, r)| r["new"]["k"].as_str().map(|k| (u.clone(), k.to_string())))
                .collect()
        })
        .unwrap_or_default();
    assert_eq!(
        snap, streamed,
        "post-eviction snapshot and streamed view diverged"
    );
}
