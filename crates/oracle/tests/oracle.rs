//! End-to-end oracle acceptance tests: fault-free and chaos sweeps stay
//! green, faulty runs converge to the fault-free state, and a
//! deliberately-injected controller bug is caught and shrunk.

use oracle::{run_oracle, run_workload, InjectedBug, OracleConfig};

#[test]
fn fault_free_sweep_eight_seeds() {
    for seed in 1..=8 {
        let cfg = OracleConfig::new(seed, 500);
        let report = run_oracle(&cfg).unwrap_or_else(|f| {
            panic!(
                "seed {seed} failed at {} (shrunk: {:?})",
                f.failure, f.shrunk
            )
        });
        assert_eq!(report.steps, 500);
        assert_eq!(report.outages, 0);
        assert_eq!(report.switch_restarts, 0);
    }
}

#[test]
fn chaos_sweep_eight_seeds() {
    for seed in 1..=8 {
        let cfg = OracleConfig {
            chaos: Some(7),
            ..OracleConfig::new(seed, 500)
        };
        let report = run_oracle(&cfg).unwrap_or_else(|f| {
            panic!(
                "seed {seed} failed at {} (shrunk: {:?})",
                f.failure, f.shrunk
            )
        });
        assert_eq!(report.steps, 500);
        assert!(report.outages > 0, "chaos plan must inject outages");
        assert!(
            report.switch_restarts > 0,
            "chaos plan must restart the switch"
        );
    }
}

#[test]
fn crash_sweep_checks_crash_equivalence() {
    // Crash-enabled chaos: every scheduled crash kills the durable
    // OVSDB server (tearing the WAL tail) and the harness asserts the
    // recovered state equals the committed prefix before the regular
    // invariant battery runs.
    for seed in 1..=4 {
        let cfg = OracleConfig {
            chaos: Some(7),
            crashes: true,
            ..OracleConfig::new(seed, 400)
        };
        let report = run_oracle(&cfg).unwrap_or_else(|f| {
            panic!(
                "seed {seed} failed at {} (shrunk: {:?})",
                f.failure, f.shrunk
            )
        });
        assert_eq!(report.steps, 400);
        assert!(report.crashes > 0, "crash plan must crash the server");
        assert!(
            report.torn_tails > 0,
            "crash plan must tear at least one WAL tail"
        );
    }
}

#[test]
fn crash_run_converges_to_fault_free_state() {
    // Post-recovery convergence: a run with server crashes ends in
    // exactly the data-plane state of the fault-free run with the same
    // workload seed.
    for seed in [1u64, 5] {
        let fault_free = oracle::harness::final_state(&OracleConfig::new(seed, 300))
            .expect("fault-free run green");
        let crashed = oracle::harness::final_state(&OracleConfig {
            chaos: Some(13),
            crashes: true,
            ..OracleConfig::new(seed, 300)
        })
        .expect("crash run green");
        assert_eq!(fault_free, crashed, "seed {seed}: converged state differs");
    }
}

#[test]
fn faulty_run_converges_to_fault_free_state() {
    for seed in [1u64, 5, 9] {
        let fault_free = oracle::harness::final_state(&OracleConfig::new(seed, 300))
            .expect("fault-free run green");
        let faulty = oracle::harness::final_state(&OracleConfig {
            chaos: Some(13),
            ..OracleConfig::new(seed, 300)
        })
        .expect("chaos run green");
        assert_eq!(fault_free, faulty, "seed {seed}: converged state differs");
    }
}

#[test]
fn injected_resync_bug_is_caught_and_shrunk() {
    let cfg = OracleConfig {
        chaos: Some(7),
        bug: Some(InjectedBug::SkipResyncDeletes),
        ..OracleConfig::new(1, 200)
    };
    let failure = run_oracle(&cfg).expect_err("the buggy resync must be caught");
    assert!(
        failure.shrunk.len() < failure.original_len,
        "ddmin must shrink {} ops (got {})",
        failure.original_len,
        failure.shrunk.len()
    );
    // The shrunk sequence still reproduces the failure on a fresh run.
    assert!(
        run_workload(&failure.shrunk, &cfg).is_err(),
        "shrunk sequence must still fail"
    );
}

#[test]
fn injected_stale_arrangement_bug_is_caught_and_shrunk() {
    // The engine-level fault: retractions skip arrangement maintenance,
    // so joins probe ghost rows out of the shared indexes while the
    // relations themselves stay correct. The differential check against
    // the full-recompute baseline must see the stale derivation, and
    // ddmin must reduce the workload to a handful of ops.
    let cfg = OracleConfig {
        bug: Some(InjectedBug::StaleArrangement),
        ..OracleConfig::new(1, 200)
    };
    let failure = run_oracle(&cfg).expect_err("stale arrangements must be caught");
    assert!(
        failure.shrunk.len() < failure.original_len,
        "ddmin must shrink {} ops (got {})",
        failure.original_len,
        failure.shrunk.len()
    );
    assert!(
        run_workload(&failure.shrunk, &cfg).is_err(),
        "shrunk sequence must still fail"
    );
}

#[test]
fn failure_carries_metrics_snapshot_and_failing_trace() {
    let cfg = OracleConfig {
        bug: Some(InjectedBug::DropConfigDeletes),
        ..OracleConfig::new(2, 100)
    };
    let failure = run_oracle(&cfg).expect_err("dropped deletes must be caught");
    // The snapshot is well-formed Prometheus exposition covering all
    // three planes, captured before ddmin perturbed the registry.
    telemetry::validate_exposition(&failure.metrics_snapshot)
        .expect("metrics snapshot must be valid exposition text");
    for series in [
        "ddlog_commits_total",
        "controller_transactions_total",
        "p4_write_batches_total",
    ] {
        assert!(
            failure.metrics_snapshot.contains(series),
            "snapshot missing {series}:\n{}",
            failure.metrics_snapshot
        );
    }
    // The last change that flowed through the stack before the
    // invariant broke is attached as a rendered span tree.
    let trace = failure
        .failing_trace
        .as_deref()
        .expect("a failing run must carry its last trace");
    assert!(trace.contains("stack.change"), "trace:\n{trace}");
    assert!(trace.contains("ddlog.apply"), "trace:\n{trace}");
    // The failing step carries the work profile of the engine commit
    // closest to the divergence: which operators did how much work.
    let profile = failure
        .failure
        .work_profile
        .as_deref()
        .expect("a failing run must carry the failing step's work profile");
    assert!(profile.contains("tuples processed"), "profile:\n{profile}");
    assert!(profile.contains("scan"), "profile:\n{profile}");
}

#[test]
fn injected_delete_drop_bug_shrinks_to_minimal_pair() {
    let cfg = OracleConfig {
        bug: Some(InjectedBug::DropConfigDeletes),
        ..OracleConfig::new(1, 100)
    };
    let failure = run_oracle(&cfg).expect_err("dropped deletes must be caught");
    // A dropped delete needs exactly: one op that installs state for a
    // port, and one that replaces it (the delete half goes missing).
    assert!(
        failure.shrunk.len() <= 3,
        "expected a near-minimal reproduction, got {:?}",
        failure.shrunk
    );
    assert!(run_workload(&failure.shrunk, &cfg).is_err());
}
