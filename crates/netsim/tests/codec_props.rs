//! Property tests for the packet codecs: encode/decode round trips and
//! decoder totality on arbitrary bytes.

use netsim::{Arp, ArpOp, EthFrame, Ip4, Ipv4, Mac, Udp};
use proptest::prelude::*;

fn mac_strategy() -> impl Strategy<Value = Mac> {
    any::<[u8; 6]>().prop_map(Mac)
}

proptest! {
    #[test]
    fn eth_roundtrip(
        dst in mac_strategy(),
        src in mac_strategy(),
        ethertype in any::<u16>(),
        vlan in proptest::option::of((0u8..8, 0u16..4096)),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // Avoid an ethertype that collides with the VLAN TPID in the
        // untagged case (an untagged frame whose type is 0x8100 would
        // decode as tagged — that is genuinely ambiguous on the wire).
        prop_assume!(vlan.is_some() || ethertype != 0x8100);
        let mut f = EthFrame::new(dst, src, ethertype, payload);
        if let Some((pcp, vid)) = vlan {
            f = f.with_vlan(pcp, vid);
        }
        prop_assert_eq!(EthFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn eth_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Decoding arbitrary bytes never panics; when it succeeds the
        // re-encoding round trips.
        if let Some(f) = EthFrame::decode(&bytes) {
            prop_assert_eq!(f.encode(), bytes);
        }
    }

    #[test]
    fn ipv4_roundtrip(
        src in any::<u32>(),
        dst in any::<u32>(),
        protocol in any::<u8>(),
        ttl in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let p = Ipv4 {
            src: Ip4::from_u32(src),
            dst: Ip4::from_u32(dst),
            protocol,
            ttl,
            payload,
        };
        prop_assert_eq!(Ipv4::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn ipv4_detects_single_bit_corruption(
        src in any::<u32>(),
        dst in any::<u32>(),
        byte in 0usize..20,
        bit in 0u8..8,
    ) {
        let p = Ipv4 {
            src: Ip4::from_u32(src),
            dst: Ip4::from_u32(dst),
            protocol: 17,
            ttl: 64,
            payload: vec![],
        };
        let mut bytes = p.encode();
        bytes[byte] ^= 1 << bit;
        // Any single-bit header flip is either caught by the checksum or
        // changes a field the decoder validates structurally.
        if let Some(decoded) = Ipv4::decode(&bytes) {
            prop_assert_ne!(decoded, p);
        }
    }

    #[test]
    fn udp_roundtrip(
        sp in any::<u16>(),
        dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let u = Udp { src_port: sp, dst_port: dp, payload };
        prop_assert_eq!(Udp::decode(&u.encode()).unwrap(), u);
    }

    #[test]
    fn arp_roundtrip(
        sha in mac_strategy(),
        tha in mac_strategy(),
        spa in any::<u32>(),
        tpa in any::<u32>(),
        req in any::<bool>(),
    ) {
        let a = Arp {
            op: if req { ArpOp::Request } else { ArpOp::Reply },
            sha,
            spa: Ip4::from_u32(spa),
            tha,
            tpa: Ip4::from_u32(tpa),
        };
        prop_assert_eq!(Arp::decode(&a.encode()).unwrap(), a);
    }
}
