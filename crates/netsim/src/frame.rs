//! Ethernet II and 802.1Q frame construction and parsing on `bytes`.

use bytes::{BufMut, BytesMut};
use std::fmt;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mac(pub [u8; 6]);

impl Mac {
    /// The broadcast address ff:ff:ff:ff:ff:ff.
    pub const BROADCAST: Mac = Mac([0xff; 6]);

    /// Build from the low 48 bits of an integer.
    pub fn from_u64(v: u64) -> Mac {
        let b = v.to_be_bytes();
        Mac([b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// The numeric value (as used in P4 bit<48> fields).
    pub fn to_u64(self) -> u64 {
        let mut b = [0u8; 8];
        b[2..].copy_from_slice(&self.0);
        u64::from_be_bytes(b)
    }

    /// A deterministic host MAC for test topologies: 02:00:00:00:00:NN
    /// (locally administered).
    pub fn host(n: u32) -> Mac {
        Mac::from_u64(0x0200_0000_0000 | n as u64)
    }

    /// True for group (multicast/broadcast) addresses.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 1 == 1
    }
}

impl fmt::Display for Mac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// Well-known EtherTypes.
pub mod ethertype {
    /// IPv4.
    pub const IPV4: u16 = 0x0800;
    /// ARP.
    pub const ARP: u16 = 0x0806;
    /// 802.1Q VLAN tag.
    pub const VLAN: u16 = 0x8100;
}

/// A decoded Ethernet frame (one optional 802.1Q tag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthFrame {
    /// Destination MAC.
    pub dst: Mac,
    /// Source MAC.
    pub src: Mac,
    /// VLAN tag: (pcp, vid) when present.
    pub vlan: Option<(u8, u16)>,
    /// EtherType of the payload.
    pub ethertype: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl EthFrame {
    /// Build an untagged frame.
    pub fn new(dst: Mac, src: Mac, ethertype: u16, payload: Vec<u8>) -> EthFrame {
        EthFrame {
            dst,
            src,
            vlan: None,
            ethertype,
            payload,
        }
    }

    /// Add a VLAN tag.
    pub fn with_vlan(mut self, pcp: u8, vid: u16) -> EthFrame {
        self.vlan = Some((pcp & 0x7, vid & 0xfff));
        self
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(18 + self.payload.len());
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        if let Some((pcp, vid)) = self.vlan {
            buf.put_u16(ethertype::VLAN);
            buf.put_u16(((pcp as u16) << 13) | (vid & 0xfff));
        }
        buf.put_u16(self.ethertype);
        buf.put_slice(&self.payload);
        buf.to_vec()
    }

    /// Decode from wire bytes. Returns `None` for truncated frames.
    pub fn decode(data: &[u8]) -> Option<EthFrame> {
        if data.len() < 14 {
            return None;
        }
        let dst = Mac(data[0..6].try_into().unwrap());
        let src = Mac(data[6..12].try_into().unwrap());
        let tpid = u16::from_be_bytes([data[12], data[13]]);
        if tpid == ethertype::VLAN {
            if data.len() < 18 {
                return None;
            }
            let tci = u16::from_be_bytes([data[14], data[15]]);
            let ethertype = u16::from_be_bytes([data[16], data[17]]);
            Some(EthFrame {
                dst,
                src,
                vlan: Some(((tci >> 13) as u8, tci & 0xfff)),
                ethertype,
                payload: data[18..].to_vec(),
            })
        } else {
            Some(EthFrame {
                dst,
                src,
                vlan: None,
                ethertype: tpid,
                payload: data[14..].to_vec(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_conversions() {
        let m = Mac::from_u64(0x0200_0000_002a);
        assert_eq!(m.to_u64(), 0x0200_0000_002a);
        assert_eq!(m.to_string(), "02:00:00:00:00:2a");
        assert_eq!(Mac::host(42), m);
        assert!(Mac::BROADCAST.is_multicast());
        assert!(!m.is_multicast());
    }

    #[test]
    fn untagged_roundtrip() {
        let f = EthFrame::new(
            Mac::host(1),
            Mac::host(2),
            ethertype::IPV4,
            b"data".to_vec(),
        );
        let bytes = f.encode();
        assert_eq!(bytes.len(), 18);
        assert_eq!(EthFrame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn tagged_roundtrip() {
        let f = EthFrame::new(Mac::host(1), Mac::host(2), ethertype::ARP, vec![1, 2, 3])
            .with_vlan(5, 100);
        let bytes = f.encode();
        assert_eq!(bytes.len(), 21);
        let d = EthFrame::decode(&bytes).unwrap();
        assert_eq!(d.vlan, Some((5, 100)));
        assert_eq!(d, f);
    }

    #[test]
    fn vlan_field_masking() {
        let f = EthFrame::new(Mac::host(1), Mac::host(2), 0, vec![]).with_vlan(0xff, 0xffff);
        assert_eq!(f.vlan, Some((7, 0xfff)));
    }

    #[test]
    fn truncated_rejected() {
        assert!(EthFrame::decode(&[0; 13]).is_none());
        let mut tagged = EthFrame::new(Mac::host(1), Mac::host(2), 0, vec![])
            .with_vlan(0, 1)
            .encode();
        tagged.truncate(16);
        assert!(EthFrame::decode(&tagged).is_none());
    }
}
