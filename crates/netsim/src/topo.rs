//! Deterministic network topologies: hosts, links, and P4 switches.
//!
//! The harness is synchronous: injecting a frame processes it through the
//! switch graph immediately (with a hop limit) and returns every host
//! delivery. Digests still fan out through each switch's
//! [`SwitchDevice`] subscription channels, so a controller under test
//! observes exactly what it would observe asynchronously, in a
//! reproducible order.

use std::collections::HashMap;

use p4sim::SwitchDevice;

use crate::frame::Mac;
use crate::proto::Ip4;

/// Identifies a switch in the network.
pub type SwitchId = usize;
/// Identifies a host in the network.
pub type HostId = usize;

/// Where a switch port leads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Host(HostId),
    Switch(SwitchId, u16),
}

/// A simulated end host.
#[derive(Debug, Clone)]
pub struct Host {
    /// Host MAC address.
    pub mac: Mac,
    /// Host IPv4 address.
    pub ip: Ip4,
    /// Attachment: (switch, port).
    pub attachment: (SwitchId, u16),
}

/// A frame delivered to a host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The receiving host.
    pub host: HostId,
    /// The frame bytes as received.
    pub bytes: Vec<u8>,
}

/// A network of switches, hosts, and links.
#[derive(Default)]
pub struct Network {
    switches: Vec<SwitchDevice>,
    hosts: Vec<Host>,
    links: HashMap<(SwitchId, u16), Endpoint>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Network {
        Network::default()
    }

    /// Add a switch device.
    pub fn add_switch(&mut self, device: SwitchDevice) -> SwitchId {
        self.switches.push(device);
        self.switches.len() - 1
    }

    /// Attach a host to a switch port.
    ///
    /// Panics if the port is already wired.
    pub fn add_host(&mut self, mac: Mac, ip: Ip4, switch: SwitchId, port: u16) -> HostId {
        let id = self.hosts.len();
        self.hosts.push(Host {
            mac,
            ip,
            attachment: (switch, port),
        });
        let prev = self.links.insert((switch, port), Endpoint::Host(id));
        assert!(prev.is_none(), "port ({switch},{port}) already wired");
        id
    }

    /// Wire two switch ports together (bidirectional).
    ///
    /// Panics if either port is already wired.
    pub fn connect(&mut self, a: SwitchId, pa: u16, b: SwitchId, pb: u16) {
        let p1 = self.links.insert((a, pa), Endpoint::Switch(b, pb));
        let p2 = self.links.insert((b, pb), Endpoint::Switch(a, pa));
        assert!(p1.is_none() && p2.is_none(), "link endpoint already wired");
    }

    /// Host metadata.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id]
    }

    /// Switch device handle.
    pub fn switch(&self, id: SwitchId) -> &SwitchDevice {
        &self.switches[id]
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Send raw bytes from a host; returns every delivery in
    /// deterministic order.
    pub fn send_raw(&self, from: HostId, bytes: Vec<u8>) -> Vec<Delivery> {
        let (sw, port) = self.hosts[from].attachment;
        self.inject(sw, port, bytes)
    }

    /// Inject a frame at a switch port (as if it arrived on the wire).
    pub fn inject(&self, switch: SwitchId, port: u16, bytes: Vec<u8>) -> Vec<Delivery> {
        let mut deliveries = Vec::new();
        // (switch, ingress port, frame, remaining hops)
        let mut queue: Vec<(SwitchId, u16, Vec<u8>, u8)> = vec![(switch, port, bytes, 16)];
        while let Some((sw, in_port, frame, hops)) = queue.pop() {
            if hops == 0 {
                continue; // loop guard
            }
            let result = self.switches[sw].inject(in_port, &frame);
            let mut outs = result.outputs;
            // Deterministic processing order.
            outs.sort_by_key(|(p, _)| *p);
            for (out_port, out_bytes) in outs {
                match self.links.get(&(sw, out_port)) {
                    Some(Endpoint::Host(h)) => deliveries.push(Delivery {
                        host: *h,
                        bytes: out_bytes,
                    }),
                    Some(Endpoint::Switch(s2, p2)) => {
                        queue.push((*s2, *p2, out_bytes, hops - 1));
                    }
                    None => {} // unwired port: frame disappears
                }
            }
        }
        deliveries.sort_by(|a, b| (a.host, &a.bytes).cmp(&(b.host, &b.bytes)));
        deliveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{ethertype, EthFrame};
    use p4sim::{FieldMatch, Switch, TableEntry, Update, WriteOp};

    /// Build a single-switch network with `n` hosts on VLAN 10.
    fn star(n: u32) -> (Network, Vec<HostId>) {
        let device = SwitchDevice::new(Switch::from_source(p4sim::parser::DEMO).unwrap());
        // All ports are access ports on VLAN 10; flooding goes to the
        // VLAN's multicast group.
        let mut updates = Vec::new();
        for port in 1..=n {
            updates.push(Update {
                op: WriteOp::Insert,
                entry: TableEntry {
                    table: "InVlan".into(),
                    matches: vec![FieldMatch::Exact {
                        value: port as u128,
                    }],
                    priority: 0,
                    action: "set_vlan".into(),
                    params: vec![10],
                },
            });
        }
        device.write(&updates).unwrap();
        device.set_mcast_group(10, (1..=n as u16).collect());

        let mut net = Network::new();
        let sw = net.add_switch(device);
        let hosts = (0..n)
            .map(|i| {
                net.add_host(
                    Mac::host(i + 1),
                    Ip4::new(10, 0, 0, (i + 1) as u8),
                    sw,
                    (i + 1) as u16,
                )
            })
            .collect();
        (net, hosts)
    }

    #[test]
    fn flood_reaches_all_but_sender() {
        let (net, hosts) = star(4);
        let f = EthFrame::new(
            Mac::BROADCAST,
            Mac::host(1),
            ethertype::IPV4,
            b"bcast".to_vec(),
        );
        let deliveries = net.send_raw(hosts[0], f.encode());
        let to: Vec<HostId> = deliveries.iter().map(|d| d.host).collect();
        assert_eq!(to, vec![hosts[1], hosts[2], hosts[3]]);
    }

    #[test]
    fn learned_unicast_goes_to_one_port() {
        let (net, hosts) = star(4);
        // Install a learned MAC: host 2's MAC behind port 2.
        net.switch(0)
            .write(&[Update {
                op: WriteOp::Insert,
                entry: TableEntry {
                    table: "MacLearned".into(),
                    matches: vec![
                        FieldMatch::Exact { value: 10 },
                        FieldMatch::Exact {
                            value: Mac::host(2).to_u64() as u128,
                        },
                    ],
                    priority: 0,
                    action: "output".into(),
                    params: vec![2],
                },
            }])
            .unwrap();
        let f = EthFrame::new(Mac::host(2), Mac::host(1), ethertype::IPV4, b"uni".to_vec());
        let deliveries = net.send_raw(hosts[0], f.encode());
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].host, hosts[1]);
        let got = EthFrame::decode(&deliveries[0].bytes).unwrap();
        assert_eq!(got.payload, b"uni");
    }

    #[test]
    fn two_switch_chain() {
        // Two demo switches wired back to back: port 3 of each is the
        // trunk. Flood on sw0 must traverse to sw1's hosts.
        let mk = || SwitchDevice::new(Switch::from_source(p4sim::parser::DEMO).unwrap());
        let mut net = Network::new();
        let s0 = net.add_switch(mk());
        let s1 = net.add_switch(mk());
        for s in [s0, s1] {
            let dev = net.switch(s).clone();
            let mut updates = Vec::new();
            for port in [1u16, 2, 3] {
                updates.push(Update {
                    op: WriteOp::Insert,
                    entry: TableEntry {
                        table: "InVlan".into(),
                        matches: vec![FieldMatch::Exact {
                            value: port as u128,
                        }],
                        priority: 0,
                        action: "set_vlan".into(),
                        params: vec![10],
                    },
                });
            }
            dev.write(&updates).unwrap();
            dev.set_mcast_group(10, vec![1, 2, 3]);
        }
        let h0 = net.add_host(Mac::host(1), Ip4::new(10, 0, 0, 1), s0, 1);
        let h1 = net.add_host(Mac::host(2), Ip4::new(10, 0, 0, 2), s0, 2);
        let h2 = net.add_host(Mac::host(3), Ip4::new(10, 0, 0, 3), s1, 1);
        let h3 = net.add_host(Mac::host(4), Ip4::new(10, 0, 0, 4), s1, 2);
        net.connect(s0, 3, s1, 3);

        let f = EthFrame::new(Mac::BROADCAST, Mac::host(1), ethertype::IPV4, b"x".to_vec());
        let deliveries = net.send_raw(h0, f.encode());
        let mut to: Vec<HostId> = deliveries.iter().map(|d| d.host).collect();
        to.sort_unstable();
        assert_eq!(to, vec![h1, h2, h3]);
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wiring_panics() {
        let (mut net, _) = star(2);
        net.add_host(Mac::host(9), Ip4::new(10, 0, 0, 9), 0, 1);
    }

    #[test]
    fn digests_observed_during_send() {
        let (net, hosts) = star(2);
        let rx = net.switch(0).subscribe_digests();
        let f = EthFrame::new(Mac::BROADCAST, Mac::host(1), ethertype::IPV4, vec![]);
        net.send_raw(hosts[0], f.encode());
        let digests = rx.try_recv().unwrap();
        assert_eq!(digests[0].field("mac"), Some(Mac::host(1).to_u64() as u128));
    }
}
