//! Deterministic packet-level network substrate.
//!
//! Provides what the Nerpa paper's authors had physically: hosts, links,
//! and a test network around the behavioral switches. Frames are real
//! wire bytes ([`frame`], [`proto`]); topologies process traffic
//! synchronously and reproducibly ([`topo`]).
#![warn(missing_docs)]

pub mod frame;
pub mod proto;
pub mod topo;

pub use frame::{ethertype, EthFrame, Mac};
pub use proto::{internet_checksum, Arp, ArpOp, Ip4, Ipv4, Udp};
pub use topo::{Delivery, Host, HostId, Network, SwitchId};
