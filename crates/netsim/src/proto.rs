//! ARP, IPv4, and UDP codecs — enough protocol surface for realistic
//! L2/L3 workloads through the behavioral switches.

use bytes::{BufMut, BytesMut};

use crate::frame::Mac;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ip4(pub [u8; 4]);

impl Ip4 {
    /// From dotted parts.
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Ip4 {
        Ip4([a, b, c, d])
    }

    /// Numeric value (for P4 bit<32> fields).
    pub fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// From a numeric value.
    pub fn from_u32(v: u32) -> Ip4 {
        Ip4(v.to_be_bytes())
    }
}

impl std::fmt::Display for Ip4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has.
    Request,
    /// Is-at.
    Reply,
}

/// An ARP packet (Ethernet/IPv4 only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arp {
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sha: Mac,
    /// Sender protocol address.
    pub spa: Ip4,
    /// Target hardware address.
    pub tha: Mac,
    /// Target protocol address.
    pub tpa: Ip4,
}

impl Arp {
    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = BytesMut::with_capacity(28);
        b.put_u16(1); // htype ethernet
        b.put_u16(0x0800); // ptype ipv4
        b.put_u8(6);
        b.put_u8(4);
        b.put_u16(match self.op {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        });
        b.put_slice(&self.sha.0);
        b.put_slice(&self.spa.0);
        b.put_slice(&self.tha.0);
        b.put_slice(&self.tpa.0);
        b.to_vec()
    }

    /// Decode from bytes.
    pub fn decode(data: &[u8]) -> Option<Arp> {
        if data.len() < 28 {
            return None;
        }
        if u16::from_be_bytes([data[0], data[1]]) != 1
            || u16::from_be_bytes([data[2], data[3]]) != 0x0800
        {
            return None;
        }
        let op = match u16::from_be_bytes([data[6], data[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            _ => return None,
        };
        Some(Arp {
            op,
            sha: Mac(data[8..14].try_into().unwrap()),
            spa: Ip4(data[14..18].try_into().unwrap()),
            tha: Mac(data[18..24].try_into().unwrap()),
            tpa: Ip4(data[24..28].try_into().unwrap()),
        })
    }
}

/// The ones-complement checksum used by IPv4.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [b] = chunks.remainder() {
        sum += (*b as u32) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// An IPv4 packet (no options).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4 {
    /// Source address.
    pub src: Ip4,
    /// Destination address.
    pub dst: Ip4,
    /// Protocol number (17 = UDP).
    pub protocol: u8,
    /// Time to live.
    pub ttl: u8,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Ipv4 {
    /// Encode with a correct header checksum.
    pub fn encode(&self) -> Vec<u8> {
        let total_len = 20 + self.payload.len() as u16;
        let mut b = BytesMut::with_capacity(total_len as usize);
        b.put_u8(0x45); // version 4, ihl 5
        b.put_u8(0); // dscp/ecn
        b.put_u16(total_len);
        b.put_u16(0); // identification
        b.put_u16(0); // flags/fragment
        b.put_u8(self.ttl);
        b.put_u8(self.protocol);
        b.put_u16(0); // checksum placeholder
        b.put_slice(&self.src.0);
        b.put_slice(&self.dst.0);
        let csum = internet_checksum(&b[..20]);
        b[10..12].copy_from_slice(&csum.to_be_bytes());
        b.put_slice(&self.payload);
        b.to_vec()
    }

    /// Decode and verify the checksum.
    pub fn decode(data: &[u8]) -> Option<Ipv4> {
        if data.len() < 20 || data[0] != 0x45 {
            return None;
        }
        if internet_checksum(&data[..20]) != 0 {
            return None;
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]) as usize;
        if total_len < 20 || total_len > data.len() {
            return None;
        }
        Some(Ipv4 {
            src: Ip4(data[12..16].try_into().unwrap()),
            dst: Ip4(data[16..20].try_into().unwrap()),
            protocol: data[9],
            ttl: data[8],
            payload: data[20..total_len].to_vec(),
        })
    }
}

/// A UDP datagram (checksum 0 = unused, as permitted for IPv4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Udp {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Udp {
    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = BytesMut::with_capacity(8 + self.payload.len());
        b.put_u16(self.src_port);
        b.put_u16(self.dst_port);
        b.put_u16(8 + self.payload.len() as u16);
        b.put_u16(0);
        b.put_slice(&self.payload);
        b.to_vec()
    }

    /// Decode from bytes.
    pub fn decode(data: &[u8]) -> Option<Udp> {
        if data.len() < 8 {
            return None;
        }
        let len = u16::from_be_bytes([data[4], data[5]]) as usize;
        if len < 8 || len > data.len() {
            return None;
        }
        Some(Udp {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            payload: data[8..len].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arp_roundtrip() {
        let a = Arp {
            op: ArpOp::Request,
            sha: Mac::host(1),
            spa: Ip4::new(10, 0, 0, 1),
            tha: Mac([0; 6]),
            tpa: Ip4::new(10, 0, 0, 2),
        };
        assert_eq!(Arp::decode(&a.encode()).unwrap(), a);
        assert!(Arp::decode(&[0; 10]).is_none());
    }

    #[test]
    fn ipv4_roundtrip_and_checksum() {
        let p = Ipv4 {
            src: Ip4::new(10, 0, 0, 1),
            dst: Ip4::new(10, 0, 0, 2),
            protocol: 17,
            ttl: 64,
            payload: b"hello".to_vec(),
        };
        let bytes = p.encode();
        assert_eq!(Ipv4::decode(&bytes).unwrap(), p);
        // Corrupt a byte: checksum must catch it.
        let mut bad = bytes.clone();
        bad[8] ^= 0xff;
        assert!(Ipv4::decode(&bad).is_none());
    }

    #[test]
    fn udp_roundtrip() {
        let u = Udp {
            src_port: 1234,
            dst_port: 53,
            payload: b"q".to_vec(),
        };
        assert_eq!(Udp::decode(&u.encode()).unwrap(), u);
    }

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 example-style check: checksum of a buffer with its own
        // checksum inserted verifies to 0.
        let p = Ipv4 {
            src: Ip4::new(192, 168, 0, 1),
            dst: Ip4::new(192, 168, 0, 199),
            protocol: 6,
            ttl: 64,
            payload: vec![],
        };
        let b = p.encode();
        assert_eq!(internet_checksum(&b[..20]), 0);
    }

    #[test]
    fn ip4_display_and_numeric() {
        let ip = Ip4::new(10, 1, 2, 3);
        assert_eq!(ip.to_string(), "10.1.2.3");
        assert_eq!(Ip4::from_u32(ip.to_u32()), ip);
    }
}
