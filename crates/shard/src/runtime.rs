//! The async shard runtime: per-shard workers behind input queues, and
//! per-shard writer threads behind the data planes.
//!
//! Two thread layers per shard:
//!
//! * a **worker** owns the shard's [`Controller`] (its DDlog engine)
//!   and drains the shard's input queue — monitor-update slices, row
//!   changes, digests, resync and reconcile requests. Commits run here.
//! * a **writer** owns the shard's real data planes ([`DataPlane`]
//!   boxes, typically TCP control clients) and drains the shard's write
//!   queue. Device pushes run here.
//!
//! The worker's controller never touches a real device: its registered
//! switches are [`AsyncSwitch`] handles that enqueue write jobs (with
//! the originating trace id) onto the writer queue and return
//! immediately. That is the pipelining point — a commit on shard A is
//! never blocked behind a device push, and shard B's slow or dead
//! switch cannot stall shard A's writer, which is a different thread
//! with a different queue. Reads (`read_all_tables`, used by
//! reconciliation) round-trip through the writer queue, which also
//! orders them after every previously-enqueued write.
//!
//! A failed device push does not fail the pipeline: the writer marks
//! the switch dirty, flips the shard's health to degraded, and keeps
//! draining (later successful writes to the same switch clear it).
//! Reconciliation — per shard, on request or after a monitor resync —
//! replays desired state through the same queues.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use nerpa::controller::{Controller, DataPlane, NerpaProgram};
use ovsdb::db::RowChange;
use p4sim::runtime::{Digest, TableEntry, Update};
use serde_json::{json, Value as Json};

use crate::partition::Router;

/// One unit of work for a shard worker.
enum ShardInput {
    /// A pre-split monitor `table-updates` slice (trace id embedded).
    Monitor(Json),
    /// Pre-split committed row changes (the in-process path). The
    /// trace id was minted once by the runtime so every shard's writes
    /// join the same trace.
    Changes { changes: Vec<RowChange>, trace: u64 },
    /// Digests (or retractions) from one owned switch.
    Digests {
        switch_id: usize,
        digests: Vec<Digest>,
        insert: bool,
    },
    /// Resync this shard's engine from its slice of a monitor snapshot.
    Resync { slice: Json, tables: Vec<String> },
    /// Reconcile this shard's switches (tolerant: per-switch errors are
    /// recorded, not fatal).
    Reconcile,
    /// Drain marker: reply once everything enqueued before it — worker
    /// side and writer side — has been fully processed.
    Flush(Sender<()>),
}

/// What `read_all_tables` returns through the writer queue.
type TableDump = Result<Vec<(String, Vec<TableEntry>)>, String>;

/// One unit of work for a shard writer.
enum WriterJob {
    Write {
        switch_id: usize,
        updates: Vec<Update>,
        trace: Option<u64>,
    },
    Mcast {
        switch_id: usize,
        group: u16,
        ports: Vec<u16>,
    },
    ReadAll {
        switch_id: usize,
        reply: Sender<TableDump>,
    },
    /// Swap the real data plane behind `switch_id` (switch reconnect).
    Replace {
        switch_id: usize,
        dp: Box<dyn DataPlane>,
    },
    Flush(Sender<()>),
}

/// Shared, externally-visible state of one shard: the `shard`-labeled
/// series plus what the `/shards` page renders.
struct ShardStat {
    /// Global ids of the switches this shard owns.
    switches: Vec<usize>,
    commits: telemetry::Counter,
    commit_errors: telemetry::Counter,
    write_batches: telemetry::Counter,
    write_errors: telemetry::Counter,
    entries_written: telemetry::Counter,
    queue_depth: telemetry::Gauge,
    write_queue_depth: telemetry::Gauge,
    /// Switches whose last push failed and that have not been healed by
    /// a later successful write or reconcile.
    dirty: Mutex<BTreeSet<usize>>,
    /// Human-readable resync/reconcile state ("idle", "reconciling",
    /// "resyncing", "reconciled +a -b", "failed: ...").
    resync_state: Mutex<String>,
}

impl ShardStat {
    fn new(shard: usize, switches: Vec<usize>) -> ShardStat {
        let registry = &telemetry::global().registry;
        let label = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &label)];
        ShardStat {
            switches,
            commits: registry.counter_with(
                "nerpa_shard_commits_total",
                "Engine transactions committed, per shard",
                labels,
            ),
            commit_errors: registry.counter_with(
                "nerpa_shard_commit_errors_total",
                "Failed shard commits, per shard",
                labels,
            ),
            write_batches: registry.counter_with(
                "nerpa_shard_write_batches_total",
                "Device write batches pushed by the shard's writer",
                labels,
            ),
            write_errors: registry.counter_with(
                "nerpa_shard_write_errors_total",
                "Failed device pushes, per shard",
                labels,
            ),
            entries_written: registry.counter_with(
                "nerpa_shard_entries_written_total",
                "Table-entry updates pushed by the shard's writer",
                labels,
            ),
            queue_depth: registry.gauge_with(
                "nerpa_shard_queue_depth",
                "Pending inputs in the shard's worker queue",
                labels,
            ),
            write_queue_depth: registry.gauge_with(
                "nerpa_shard_write_queue_depth",
                "Pending jobs in the shard's writer queue",
                labels,
            ),
            dirty: Mutex::new(BTreeSet::new()),
            resync_state: Mutex::new("idle".to_string()),
        }
    }

    fn set_resync_state(&self, s: impl Into<String>) {
        *self.resync_state.lock().unwrap() = s.into();
    }
}

/// A [`DataPlane`] handle that enqueues writes onto its shard's writer
/// queue instead of touching a device. Registered in the shard worker's
/// controller under the switch's global id, so the worker uses the
/// ordinary commit→convert→write paths while actual device
/// programming happens on the writer thread.
struct AsyncSwitch {
    switch_id: usize,
    jobs: Sender<WriterJob>,
    stat: Arc<ShardStat>,
}

impl DataPlane for AsyncSwitch {
    fn write_updates(&self, updates: &[Update]) -> Result<(), String> {
        self.write_updates_traced(updates, 0)
    }

    fn write_updates_traced(&self, updates: &[Update], trace: u64) -> Result<(), String> {
        self.stat.write_queue_depth.add(1);
        self.jobs
            .send(WriterJob::Write {
                switch_id: self.switch_id,
                updates: updates.to_vec(),
                trace: (trace != 0).then_some(trace),
            })
            .map_err(|_| "shard writer gone".to_string())
    }

    fn set_mcast_group(&self, group: u16, ports: Vec<u16>) -> Result<(), String> {
        self.stat.write_queue_depth.add(1);
        self.jobs
            .send(WriterJob::Mcast {
                switch_id: self.switch_id,
                group,
                ports,
            })
            .map_err(|_| "shard writer gone".to_string())
    }

    fn settles_inline(&self) -> bool {
        // Enqueueing is not settling: the shard's writer records
        // convergence when the device acknowledges the push.
        false
    }

    fn read_all_tables(&self) -> Result<Vec<(String, Vec<TableEntry>)>, String> {
        let (tx, rx) = bounded(1);
        self.stat.write_queue_depth.add(1);
        self.jobs
            .send(WriterJob::ReadAll {
                switch_id: self.switch_id,
                reply: tx,
            })
            .map_err(|_| "shard writer gone".to_string())?;
        rx.recv().map_err(|_| "shard writer gone".to_string())?
    }
}

/// The running sharded control plane: N workers, N writers, and the
/// router that feeds them. Dropping the runtime shuts every thread
/// down (after draining the queues).
pub struct ShardRuntime {
    router: Router,
    inputs: Vec<Sender<ShardInput>>,
    writer_jobs: Vec<Sender<WriterJob>>,
    stats: Vec<Arc<ShardStat>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    writers: Vec<std::thread::JoinHandle<()>>,
}

impl ShardRuntime {
    /// Compile one engine per shard and start the worker/writer pairs.
    /// `switches` are `(global switch id, data plane)` pairs; each goes
    /// to the shard the router assigns it.
    pub fn start(
        program: &NerpaProgram,
        router: Router,
        switches: Vec<(usize, Box<dyn DataPlane>)>,
    ) -> Result<ShardRuntime, String> {
        let n = router.shards();
        let mut per_shard: Vec<Vec<(usize, Box<dyn DataPlane>)>> =
            (0..n).map(|_| Vec::new()).collect();
        for (id, dp) in switches {
            per_shard[router.route_switch(id)].push((id, dp));
        }

        let mut inputs = Vec::with_capacity(n);
        let mut writer_jobs = Vec::with_capacity(n);
        let mut stats = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        let mut writers = Vec::with_capacity(n);
        for (shard, owned) in per_shard.into_iter().enumerate() {
            let ids: Vec<usize> = owned.iter().map(|(id, _)| *id).collect();
            let stat = Arc::new(ShardStat::new(shard, ids.clone()));
            let (job_tx, job_rx) = unbounded::<WriterJob>();
            let (in_tx, in_rx) = unbounded::<ShardInput>();

            let mut controller = Controller::new(program)?;
            for id in &ids {
                controller.add_switch_with_id(
                    *id,
                    Box::new(AsyncSwitch {
                        switch_id: *id,
                        jobs: job_tx.clone(),
                        stat: stat.clone(),
                    }),
                );
            }

            let writer_stat = stat.clone();
            writers.push(
                std::thread::Builder::new()
                    .name(format!("shard-writer-{shard}"))
                    .spawn(move || writer_loop(shard, owned, job_rx, writer_stat))
                    .map_err(|e| e.to_string())?,
            );
            let worker_stat = stat.clone();
            let worker_jobs = job_tx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("shard-worker-{shard}"))
                    .spawn(move || worker_loop(shard, controller, in_rx, worker_jobs, worker_stat))
                    .map_err(|e| e.to_string())?,
            );
            inputs.push(in_tx);
            writer_jobs.push(job_tx);
            stats.push(stat);
        }

        let runtime = ShardRuntime {
            router,
            inputs,
            writer_jobs,
            stats,
            workers,
            writers,
        };
        runtime.register_shards_page();
        Ok(runtime)
    }

    /// The router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The shard owning switch `switch_id`.
    pub fn shard_of_switch(&self, switch_id: usize) -> usize {
        self.router.route_switch(switch_id)
    }

    /// Fan one monitor `table-updates` object out to the shard queues.
    /// Returns immediately; commits and pushes happen on the shard
    /// threads. The embedded trace id rides along in each slice.
    pub fn handle_monitor_update(&self, updates: &Json) {
        for (shard, slice) in self
            .router
            .split_monitor_update(updates)
            .into_iter()
            .enumerate()
        {
            if let Some(slice) = slice {
                self.enqueue(shard, ShardInput::Monitor(slice));
            }
        }
    }

    /// Fan committed row changes out to the shard queues. One trace id
    /// is minted for the whole commit and carried onto every shard's
    /// slice — and from there onto every device write — so the flight
    /// recorder can stitch the fan-out back into a single timeline.
    /// Returns that trace id.
    pub fn handle_row_changes(&self, changes: &[RowChange]) -> u64 {
        let trace = telemetry::next_trace_id();
        telemetry::global().convergence_begin(trace);
        for (shard, slice) in self
            .router
            .split_row_changes(changes)
            .into_iter()
            .enumerate()
        {
            if !slice.is_empty() {
                telemetry::record_event(
                    telemetry::Plane::Control,
                    "shard.route",
                    trace,
                    &[("shard", shard as u64), ("rows", slice.len() as u64)],
                );
                self.enqueue(
                    shard,
                    ShardInput::Changes {
                        changes: slice,
                        trace,
                    },
                );
            }
        }
        trace
    }

    /// Queue digests from switch `switch_id` onto its owning shard.
    pub fn handle_digests(&self, switch_id: usize, digests: Vec<Digest>) {
        let shard = self.router.route_switch(switch_id);
        self.enqueue(
            shard,
            ShardInput::Digests {
                switch_id,
                digests,
                insert: true,
            },
        );
    }

    /// Queue digest retractions (aging) onto the owning shard.
    pub fn retract_digests(&self, switch_id: usize, digests: Vec<Digest>) {
        let shard = self.router.route_switch(switch_id);
        self.enqueue(
            shard,
            ShardInput::Digests {
                switch_id,
                digests,
                insert: false,
            },
        );
    }

    /// Resync every shard from a monitor snapshot (each shard diffs its
    /// slice against its own engine inputs; empty slices still resync
    /// so stale rows are retracted).
    pub fn resync_from_snapshot(&self, initial: &Json, monitored_tables: &[String]) {
        let slices = self.router.split_monitor_update(initial);
        for (shard, slice) in slices.into_iter().enumerate() {
            self.enqueue(
                shard,
                ShardInput::Resync {
                    slice: slice.unwrap_or_else(|| json!({})),
                    tables: monitored_tables.to_vec(),
                },
            );
        }
    }

    /// Ask one shard to reconcile its switches (queued behind whatever
    /// it is currently processing).
    pub fn reconcile_shard(&self, shard: usize) {
        self.enqueue(shard, ShardInput::Reconcile);
    }

    /// Swap the data plane behind `switch_id` (e.g. a fresh TCP client
    /// after the switch restarted), then reconcile its shard. Only that
    /// shard's queues are involved; other shards keep committing.
    pub fn replace_switch(&self, switch_id: usize, dp: Box<dyn DataPlane>) {
        let shard = self.router.route_switch(switch_id);
        self.stats[shard].write_queue_depth.add(1);
        let _ = self.writer_jobs[shard].send(WriterJob::Replace { switch_id, dp });
        self.reconcile_shard(shard);
    }

    /// Barrier: block until every input enqueued before this call —
    /// commits on the workers and pushes on the writers — has been
    /// fully processed, on every shard.
    pub fn flush(&self) {
        let (tx, rx) = bounded(self.inputs.len());
        for input in &self.inputs {
            let _ = input.send(ShardInput::Flush(tx.clone()));
        }
        drop(tx);
        while rx.recv().is_ok() {}
    }

    /// Engine transactions committed by one shard so far.
    pub fn commits(&self, shard: usize) -> u64 {
        self.stats[shard].commits.get()
    }

    /// Commit errors recorded by one shard so far.
    pub fn commit_errors(&self, shard: usize) -> u64 {
        self.stats[shard].commit_errors.get()
    }

    /// Table entries successfully pushed to devices by one shard so far.
    pub fn entries_written(&self, shard: usize) -> u64 {
        self.stats[shard].entries_written.get()
    }

    /// Switches whose last device push failed and that have not healed.
    pub fn dirty_switches(&self, shard: usize) -> BTreeSet<usize> {
        self.stats[shard].dirty.lock().unwrap().clone()
    }

    /// Read a switch's tables through its shard's writer queue (ordered
    /// after every write enqueued before this call).
    pub fn read_switch_tables(
        &self,
        switch_id: usize,
    ) -> Result<Vec<(String, Vec<TableEntry>)>, String> {
        let shard = self.router.route_switch(switch_id);
        let (tx, rx) = bounded(1);
        self.stats[shard].write_queue_depth.add(1);
        self.writer_jobs[shard]
            .send(WriterJob::ReadAll {
                switch_id,
                reply: tx,
            })
            .map_err(|_| "shard writer gone".to_string())?;
        rx.recv().map_err(|_| "shard writer gone".to_string())?
    }

    fn enqueue(&self, shard: usize, input: ShardInput) {
        self.stats[shard].queue_depth.add(1);
        let depth = self.stats[shard].queue_depth.get().max(0) as u64;
        telemetry::record_event(
            telemetry::Plane::Control,
            "shard.enqueue",
            0,
            &[("shard", shard as u64), ("depth", depth)],
        );
        let _ = self.inputs[shard].send(input);
    }

    /// Register the `/shards` introspection page: one JSON object per
    /// shard with its switches, counters, queue depths, dirty switches,
    /// and resync state.
    fn register_shards_page(&self) {
        let stats: Vec<Arc<ShardStat>> = self.stats.to_vec();
        telemetry::global().register_page("/shards", "application/json", move || {
            let shards: Vec<Json> = stats
                .iter()
                .enumerate()
                .map(|(shard, s)| {
                    let dirty: Vec<usize> = s.dirty.lock().unwrap().iter().copied().collect();
                    json!({
                        "shard": shard,
                        "switches": s.switches.clone(),
                        "commits": s.commits.get(),
                        "commit_errors": s.commit_errors.get(),
                        "write_batches": s.write_batches.get(),
                        "write_errors": s.write_errors.get(),
                        "entries_written": s.entries_written.get(),
                        "queue_depth": s.queue_depth.get(),
                        "write_queue_depth": s.write_queue_depth.get(),
                        "dirty_switches": dirty,
                        "resync_state": s.resync_state.lock().unwrap().clone(),
                    })
                })
                .collect();
            json!({ "shards": shards }).to_string()
        });
    }

    /// Drain and stop every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Closing the input channels ends the workers (after a drain);
        // each worker closes nothing else, so the writer channels close
        // once both the runtime's and the workers' senders are gone.
        self.inputs.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.writer_jobs.clear();
        for w in self.writers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ShardRuntime {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(
    shard: usize,
    mut controller: Controller,
    inputs: Receiver<ShardInput>,
    writer: Sender<WriterJob>,
    stat: Arc<ShardStat>,
) {
    while let Ok(input) = inputs.recv() {
        stat.queue_depth.add(-1);
        if let ShardInput::Flush(reply) = input {
            // Worker-side backlog is drained by arrival here; now drain
            // the writer too, then ack.
            let (tx, rx) = bounded(1);
            if writer.send(WriterJob::Flush(tx)).is_ok() {
                let _ = rx.recv();
            }
            let _ = reply.send(());
            continue;
        }
        let commits = matches!(
            input,
            ShardInput::Monitor(_) | ShardInput::Changes { .. } | ShardInput::Digests { .. }
        );
        let result = match input {
            ShardInput::Monitor(slice) => controller.handle_monitor_update(&slice).map(|_| ()),
            ShardInput::Changes { changes, trace } => controller
                .handle_row_changes_traced(&changes, trace)
                .map(|_| ()),
            ShardInput::Digests {
                switch_id,
                digests,
                insert,
            } => {
                let r = if insert {
                    controller.handle_digests(switch_id, &digests)
                } else {
                    controller.retract_digests(switch_id, &digests)
                };
                r.map(|_| ())
            }
            ShardInput::Resync { slice, tables } => {
                stat.set_resync_state("resyncing");
                let r = controller.resync_from_snapshot(&slice, &tables);
                match &r {
                    Ok(report) => stat.set_resync_state(format!(
                        "resynced +{} -{}",
                        report.inserts, report.deletes
                    )),
                    Err(e) => stat.set_resync_state(format!("resync failed: {e}")),
                }
                r.map(|_| ())
            }
            ShardInput::Reconcile => {
                stat.set_resync_state("reconciling");
                let ids = controller.switch_ids();
                let mut inserted = 0usize;
                let mut deleted = 0usize;
                let mut failed = Vec::new();
                for (id, r) in controller.try_reconcile_switches(&ids) {
                    match r {
                        Ok(report) => {
                            inserted += report.inserted;
                            deleted += report.deleted;
                            stat.dirty.lock().unwrap().remove(&id);
                        }
                        Err(e) => failed.push((id, e)),
                    }
                }
                if failed.is_empty() {
                    stat.set_resync_state(format!("reconciled +{inserted} -{deleted}"));
                    Ok(())
                } else {
                    stat.set_resync_state(format!("reconcile failed: {failed:?}"));
                    Err(format!("shard {shard} reconcile failed: {failed:?}"))
                }
            }
            ShardInput::Flush(_) => unreachable!("handled above"),
        };
        match result {
            Ok(()) => {
                if commits {
                    stat.commits.inc();
                }
            }
            Err(e) => {
                stat.commit_errors.inc();
                telemetry::global()
                    .health
                    .set(format!("shard/{shard}"), "degraded(commit failed)");
                telemetry::log_warn!("shard", "shard {} input failed: {}", shard, e);
            }
        }
    }
}

fn writer_loop(
    shard: usize,
    switches: Vec<(usize, Box<dyn DataPlane>)>,
    jobs: Receiver<WriterJob>,
    stat: Arc<ShardStat>,
) {
    let mut switches: std::collections::BTreeMap<usize, Box<dyn DataPlane>> =
        switches.into_iter().collect();
    let mark_dirty = |switch_id: usize, err: &str| {
        stat.write_errors.inc();
        stat.dirty.lock().unwrap().insert(switch_id);
        telemetry::global()
            .health
            .set(format!("shard/{shard}"), "degraded(write failed)");
        telemetry::log_warn!(
            "shard",
            "shard {} push to switch {} failed: {}",
            shard,
            switch_id,
            err
        );
    };
    let mark_clean = |switch_id: usize| {
        let mut dirty = stat.dirty.lock().unwrap();
        dirty.remove(&switch_id);
        if dirty.is_empty() {
            telemetry::global()
                .health
                .set(format!("shard/{shard}"), "ok");
        }
    };
    while let Ok(job) = jobs.recv() {
        stat.write_queue_depth.add(-1);
        match job {
            WriterJob::Write {
                switch_id,
                updates,
                trace,
            } => {
                let Some(dp) = switches.get(&switch_id) else {
                    continue;
                };
                // Recorded before the device call so the timeline
                // orders the shard push before the p4.write it causes.
                telemetry::record_event(
                    telemetry::Plane::Control,
                    "shard.push",
                    trace.unwrap_or(0),
                    &[
                        ("shard", shard as u64),
                        ("switch", switch_id as u64),
                        ("updates", updates.len() as u64),
                    ],
                );
                let started = Instant::now();
                let r = match trace {
                    Some(t) => dp.write_updates_traced(&updates, t),
                    None => dp.write_updates(&updates),
                };
                match r {
                    Ok(()) => {
                        stat.write_batches.inc();
                        stat.entries_written.add(updates.len() as u64);
                        mark_clean(switch_id);
                        // The device acknowledged: this trace has
                        // converged as far as this switch is concerned.
                        if let Some(t) = trace {
                            telemetry::global().convergence_settled(t, Some(shard));
                        }
                    }
                    Err(e) => {
                        telemetry::record_event_note(
                            telemetry::Plane::Control,
                            "shard.write_error",
                            trace.unwrap_or(0),
                            &[("shard", shard as u64), ("switch", switch_id as u64)],
                            &e,
                        );
                        mark_dirty(switch_id, &e);
                    }
                }
                telemetry::global()
                    .registry
                    .histogram(
                        "nerpa_shard_push_us",
                        "Device push latency as seen by shard writers, microseconds",
                        &telemetry::LATENCY_BOUNDS_US,
                    )
                    .record_duration(started.elapsed());
            }
            WriterJob::Mcast {
                switch_id,
                group,
                ports,
            } => {
                let Some(dp) = switches.get(&switch_id) else {
                    continue;
                };
                if let Err(e) = dp.set_mcast_group(group, ports) {
                    mark_dirty(switch_id, &e);
                }
            }
            WriterJob::ReadAll { switch_id, reply } => {
                let r = match switches.get(&switch_id) {
                    Some(dp) => dp.read_all_tables(),
                    None => Err(format!("switch {switch_id} not owned by shard {shard}")),
                };
                let _ = reply.send(r);
            }
            WriterJob::Replace { switch_id, dp } => {
                switches.insert(switch_id, dp);
            }
            WriterJob::Flush(reply) => {
                let _ = reply.send(());
            }
        }
    }
}
