//! The async shard runtime: per-shard workers behind input queues, and
//! per-shard writer threads behind the data planes.
//!
//! Two thread layers per shard:
//!
//! * a **worker** owns the shard's [`Controller`] (its DDlog engine)
//!   and drains the shard's input queue — monitor-update slices, row
//!   changes, digests, resync and reconcile requests. Commits run here.
//! * a **writer** owns the shard's real data planes ([`DataPlane`]
//!   boxes, typically TCP control clients) and drains the shard's write
//!   queue. Device pushes run here.
//!
//! The worker's controller never touches a real device: its registered
//! switches are [`AsyncSwitch`] handles that enqueue write jobs (with
//! the originating trace id) onto the writer queue and return
//! immediately. That is the pipelining point — a commit on shard A is
//! never blocked behind a device push, and shard B's slow or dead
//! switch cannot stall shard A's writer, which is a different thread
//! with a different queue. Reads (`read_all_tables`, used by
//! reconciliation) round-trip through the writer queue, which also
//! orders them after every previously-enqueued write.
//!
//! Every queue is **bounded** (see [`OverloadPolicy`]): input queues
//! block the producer up to a deadline then shed (surfaced as an
//! error + `nerpa_shard_shed_inputs_total`); writer queues coalesce
//! per switch so a flood holds O(switches) jobs, not O(commits). A
//! per-shard **watchdog** supervises the writer: a device push that
//! exceeds `push_deadline` supersedes the writer thread (generation
//! bump), marks the stuck switch dirty + poisoned, respawns a fresh
//! writer on the same queue, and queues a reconcile. The superseded
//! thread exits without applying effects when it eventually unblocks;
//! the poisoned switch fast-fails jobs until [`ShardRuntime::replace_switch`]
//! installs a fresh data plane.
//!
//! A failed device push does not fail the pipeline: the writer marks
//! the switch dirty, flips the shard's health to degraded, and keeps
//! draining (later successful writes to the same switch clear it).
//! Reconciliation — per shard, on request or after a monitor resync —
//! replays desired state through the same queues.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam_channel::{bounded, Receiver, SendTimeoutError, Sender};
use nerpa::controller::{Controller, DataPlane, NerpaProgram};
use ovsdb::db::RowChange;
use p4sim::runtime::{Digest, TableEntry, Update};
use serde_json::{json, Value as Json};

use crate::overload::{OverloadPolicy, Popped, PushError, Pushed, WriteJob, WriteQueue};
use crate::partition::Router;

/// One unit of work for a shard worker.
enum ShardInput {
    /// A pre-split monitor `table-updates` slice (trace id embedded).
    Monitor(Json),
    /// Pre-split committed row changes (the in-process path). The
    /// trace id was minted once by the runtime so every shard's writes
    /// join the same trace.
    Changes { changes: Vec<RowChange>, trace: u64 },
    /// Digests (or retractions) from one owned switch.
    Digests {
        switch_id: usize,
        digests: Vec<Digest>,
        insert: bool,
    },
    /// Resync this shard's engine from its slice of a monitor snapshot.
    Resync { slice: Json, tables: Vec<String> },
    /// Reconcile this shard's switches (tolerant: per-switch errors are
    /// recorded, not fatal).
    Reconcile,
    /// Drain marker: reply once everything enqueued before it — worker
    /// side and writer side — has been fully processed.
    Flush(Sender<()>),
}

/// Shared, externally-visible state of one shard: the `shard`-labeled
/// series plus what the `/shards` page renders.
struct ShardStat {
    /// Global ids of the switches this shard owns.
    switches: Vec<usize>,
    commits: telemetry::Counter,
    commit_errors: telemetry::Counter,
    write_batches: telemetry::Counter,
    write_errors: telemetry::Counter,
    entries_written: telemetry::Counter,
    queue_depth: telemetry::Gauge,
    write_queue_depth: telemetry::Gauge,
    /// High-water marks of the two depth gauges: the overload oracle
    /// asserts these never exceed the configured caps.
    queue_depth_hwm: telemetry::Gauge,
    write_queue_depth_hwm: telemetry::Gauge,
    /// Inputs/write jobs shed after blocking the full enqueue deadline.
    shed_inputs: telemetry::Counter,
    /// Sends that failed because the worker/writer is gone (was a
    /// silent `let _ = send(..)` before overload hardening).
    dropped_inputs: telemetry::Counter,
    /// Write jobs merged into an already-queued job for the same
    /// switch instead of growing the queue.
    coalesced_writes: telemetry::Counter,
    /// Writer threads superseded + respawned by the push watchdog.
    watchdog_restarts: telemetry::Counter,
    /// Switches whose last push failed and that have not been healed by
    /// a later successful write or reconcile.
    dirty: Mutex<BTreeSet<usize>>,
    /// Human-readable resync/reconcile state ("idle", "reconciling",
    /// "resyncing", "reconciled +a -b", "failed: ...").
    resync_state: Mutex<String>,
}

impl ShardStat {
    fn new(shard: usize, switches: Vec<usize>) -> ShardStat {
        let registry = &telemetry::global().registry;
        let label = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &label)];
        ShardStat {
            switches,
            commits: registry.counter_with(
                "nerpa_shard_commits_total",
                "Engine transactions committed, per shard",
                labels,
            ),
            commit_errors: registry.counter_with(
                "nerpa_shard_commit_errors_total",
                "Failed shard commits, per shard",
                labels,
            ),
            write_batches: registry.counter_with(
                "nerpa_shard_write_batches_total",
                "Device write batches pushed by the shard's writer",
                labels,
            ),
            write_errors: registry.counter_with(
                "nerpa_shard_write_errors_total",
                "Failed device pushes, per shard",
                labels,
            ),
            entries_written: registry.counter_with(
                "nerpa_shard_entries_written_total",
                "Table-entry updates pushed by the shard's writer",
                labels,
            ),
            queue_depth: registry.gauge_with(
                "nerpa_shard_queue_depth",
                "Pending inputs in the shard's worker queue",
                labels,
            ),
            write_queue_depth: registry.gauge_with(
                "nerpa_shard_write_queue_depth",
                "Pending jobs in the shard's writer queue",
                labels,
            ),
            queue_depth_hwm: registry.gauge_with(
                "nerpa_shard_queue_depth_hwm",
                "High-water mark of the shard's worker queue depth",
                labels,
            ),
            write_queue_depth_hwm: registry.gauge_with(
                "nerpa_shard_write_queue_depth_hwm",
                "High-water mark of the shard's writer queue depth",
                labels,
            ),
            shed_inputs: registry.counter_with(
                "nerpa_shard_shed_inputs_total",
                "Inputs or write jobs shed after the enqueue deadline on a full queue",
                labels,
            ),
            dropped_inputs: registry.counter_with(
                "nerpa_shard_dropped_inputs_total",
                "Sends that failed because the shard's worker or writer is gone",
                labels,
            ),
            coalesced_writes: registry.counter_with(
                "nerpa_shard_coalesced_writes_total",
                "Write jobs coalesced into an already-queued job for the same switch",
                labels,
            ),
            watchdog_restarts: registry.counter_with(
                "nerpa_shard_watchdog_restarts_total",
                "Writer threads superseded and respawned by the push watchdog",
                labels,
            ),
            dirty: Mutex::new(BTreeSet::new()),
            resync_state: Mutex::new("idle".to_string()),
        }
    }

    fn set_resync_state(&self, s: impl Into<String>) {
        *self.resync_state.lock().unwrap() = s.into();
    }

    fn note_write_queue_depth(&self, depth: usize) {
        self.write_queue_depth.set(depth as i64);
        self.write_queue_depth_hwm.set_max(depth as i64);
    }
}

/// One owned switch slot behind the writer. `dp` is `None` while a
/// writer thread has the handle out for a push (or after a watchdog
/// fire dropped it); `poisoned` means the device is presumed stuck and
/// jobs fast-fail until a `Replace` installs a fresh handle.
struct SwitchSlot {
    dp: Option<Box<dyn DataPlane>>,
    poisoned: bool,
}

/// State shared between a shard's writer thread(s), its watchdog, and
/// the runtime handle.
struct WriterShared {
    queue: WriteQueue,
    switches: Mutex<BTreeMap<usize, SwitchSlot>>,
    /// The push currently on a device: `(switch, started, generation)`.
    inflight: Mutex<Option<(usize, Instant, u64)>>,
    /// The live writer's join handle; superseded handles are detached
    /// (they belong to threads that may be stuck in a device call).
    writer_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl WriterShared {
    fn poisoned_switches(&self) -> Vec<usize> {
        self.switches
            .lock()
            .unwrap()
            .iter()
            .filter(|(_, slot)| slot.poisoned)
            .map(|(id, _)| *id)
            .collect()
    }
}

/// A [`DataPlane`] handle that enqueues writes onto its shard's writer
/// queue instead of touching a device. Registered in the shard worker's
/// controller under the switch's global id, so the worker uses the
/// ordinary commit→convert→write paths while actual device
/// programming happens on the writer thread.
struct AsyncSwitch {
    switch_id: usize,
    queue: WriteQueue,
    stat: Arc<ShardStat>,
    policy: OverloadPolicy,
}

impl AsyncSwitch {
    /// Enqueue a writer job with the shard's overload discipline:
    /// coalesce if possible, block up to the enqueue deadline on a
    /// full queue, then shed with a surfaced error.
    fn push(&self, job: WriteJob) -> Result<(), String> {
        match self.queue.push(job, Some(self.policy.enqueue_deadline)) {
            Ok(Pushed::Queued) => {
                self.stat.note_write_queue_depth(self.queue.len());
                Ok(())
            }
            Ok(Pushed::Coalesced) => {
                self.stat.coalesced_writes.inc();
                Ok(())
            }
            Err(PushError::Timeout(_)) => {
                self.stat.shed_inputs.inc();
                self.stat.dirty.lock().unwrap().insert(self.switch_id);
                telemetry::record_event(
                    telemetry::Plane::Control,
                    "shard.overload",
                    0,
                    &[("switch", self.switch_id as u64)],
                );
                Err(format!(
                    "write queue full past deadline for switch {} (job shed, switch marked dirty)",
                    self.switch_id
                ))
            }
            Err(PushError::Closed(_)) => {
                self.stat.dropped_inputs.inc();
                Err("shard writer gone".to_string())
            }
        }
    }
}

impl DataPlane for AsyncSwitch {
    fn write_updates(&self, updates: &[Update]) -> Result<(), String> {
        self.write_updates_traced(updates, 0)
    }

    fn write_updates_traced(&self, updates: &[Update], trace: u64) -> Result<(), String> {
        self.push(WriteJob::Write {
            switch_id: self.switch_id,
            updates: updates.to_vec(),
            traces: if trace != 0 { vec![trace] } else { Vec::new() },
        })
    }

    fn set_mcast_group(&self, group: u16, ports: Vec<u16>) -> Result<(), String> {
        self.push(WriteJob::Mcast {
            switch_id: self.switch_id,
            group,
            ports,
        })
    }

    fn settles_inline(&self) -> bool {
        // Enqueueing is not settling: the shard's writer records
        // convergence when the device acknowledges the push.
        false
    }

    fn read_all_tables(&self) -> Result<Vec<(String, Vec<TableEntry>)>, String> {
        let (tx, rx) = bounded(1);
        self.push(WriteJob::ReadAll {
            switch_id: self.switch_id,
            reply: tx,
        })?;
        rx.recv().map_err(|_| "shard writer gone".to_string())?
    }
}

/// The running sharded control plane: N workers, N supervised writers,
/// N watchdogs, and the router that feeds them. Dropping the runtime
/// shuts every thread down (after draining the queues).
pub struct ShardRuntime {
    router: Router,
    policy: OverloadPolicy,
    inputs: Vec<Sender<ShardInput>>,
    writer_shared: Vec<Arc<WriterShared>>,
    stats: Vec<Arc<ShardStat>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    watchdogs: Vec<std::thread::JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
}

impl ShardRuntime {
    /// [`ShardRuntime::start_with`] under the default [`OverloadPolicy`].
    pub fn start(
        program: &NerpaProgram,
        router: Router,
        switches: Vec<(usize, Box<dyn DataPlane>)>,
    ) -> Result<ShardRuntime, String> {
        ShardRuntime::start_with(program, router, switches, OverloadPolicy::default())
    }

    /// Compile one engine per shard and start the worker/writer pairs
    /// plus a per-shard writer watchdog. `switches` are `(global switch
    /// id, data plane)` pairs; each goes to the shard the router
    /// assigns it.
    pub fn start_with(
        program: &NerpaProgram,
        router: Router,
        switches: Vec<(usize, Box<dyn DataPlane>)>,
        policy: OverloadPolicy,
    ) -> Result<ShardRuntime, String> {
        let n = router.shards();
        let mut per_shard: Vec<Vec<(usize, Box<dyn DataPlane>)>> =
            (0..n).map(|_| Vec::new()).collect();
        for (id, dp) in switches {
            per_shard[router.route_switch(id)].push((id, dp));
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        let mut inputs = Vec::with_capacity(n);
        let mut writer_shared = Vec::with_capacity(n);
        let mut stats = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        let mut watchdogs = Vec::with_capacity(n);
        for (shard, owned) in per_shard.into_iter().enumerate() {
            let ids: Vec<usize> = owned.iter().map(|(id, _)| *id).collect();
            let stat = Arc::new(ShardStat::new(shard, ids.clone()));
            let queue = WriteQueue::new(policy.write_queue_cap);
            let (in_tx, in_rx) = bounded::<ShardInput>(policy.input_queue_cap);

            let shared = Arc::new(WriterShared {
                queue: queue.clone(),
                switches: Mutex::new(
                    owned
                        .into_iter()
                        .map(|(id, dp)| {
                            (
                                id,
                                SwitchSlot {
                                    dp: Some(dp),
                                    poisoned: false,
                                },
                            )
                        })
                        .collect(),
                ),
                inflight: Mutex::new(None),
                writer_handle: Mutex::new(None),
            });

            let mut controller = Controller::new(program)?;
            for id in &ids {
                controller.add_switch_with_id(
                    *id,
                    Box::new(AsyncSwitch {
                        switch_id: *id,
                        queue: queue.clone(),
                        stat: stat.clone(),
                        policy: policy.clone(),
                    }),
                );
            }

            spawn_writer(shard, shared.clone(), stat.clone(), 0)?;
            watchdogs.push(spawn_watchdog(
                shard,
                shared.clone(),
                stat.clone(),
                policy.clone(),
                in_tx.clone(),
                shutdown.clone(),
            )?);
            let worker_stat = stat.clone();
            let worker_queue = queue.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("shard-worker-{shard}"))
                    .spawn(move || worker_loop(shard, controller, in_rx, worker_queue, worker_stat))
                    .map_err(|e| e.to_string())?,
            );
            inputs.push(in_tx);
            writer_shared.push(shared);
            stats.push(stat);
        }

        let runtime = ShardRuntime {
            router,
            policy,
            inputs,
            writer_shared,
            stats,
            workers,
            watchdogs,
            shutdown,
        };
        runtime.register_shards_page();
        Ok(runtime)
    }

    /// The router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The active overload policy.
    pub fn policy(&self) -> &OverloadPolicy {
        &self.policy
    }

    /// The shard owning switch `switch_id`.
    pub fn shard_of_switch(&self, switch_id: usize) -> usize {
        self.router.route_switch(switch_id)
    }

    /// Fan one monitor `table-updates` object out to the shard queues.
    /// Returns once every slice is enqueued (commits and pushes happen
    /// on the shard threads); a full or dead shard queue surfaces as an
    /// error naming the shard. The embedded trace id rides along in
    /// each slice.
    pub fn handle_monitor_update(&self, updates: &Json) -> Result<(), String> {
        for (shard, slice) in self
            .router
            .split_monitor_update(updates)
            .into_iter()
            .enumerate()
        {
            if let Some(slice) = slice {
                self.enqueue(shard, ShardInput::Monitor(slice))?;
            }
        }
        Ok(())
    }

    /// Fan committed row changes out to the shard queues. One trace id
    /// is minted for the whole commit and carried onto every shard's
    /// slice — and from there onto every device write — so the flight
    /// recorder can stitch the fan-out back into a single timeline.
    /// Returns that trace id.
    pub fn handle_row_changes(&self, changes: &[RowChange]) -> Result<u64, String> {
        let trace = telemetry::next_trace_id();
        telemetry::global().convergence_begin(trace);
        for (shard, slice) in self
            .router
            .split_row_changes(changes)
            .into_iter()
            .enumerate()
        {
            if !slice.is_empty() {
                telemetry::record_event(
                    telemetry::Plane::Control,
                    "shard.route",
                    trace,
                    &[("shard", shard as u64), ("rows", slice.len() as u64)],
                );
                self.enqueue(
                    shard,
                    ShardInput::Changes {
                        changes: slice,
                        trace,
                    },
                )?;
            }
        }
        Ok(trace)
    }

    /// Queue digests from switch `switch_id` onto its owning shard.
    pub fn handle_digests(&self, switch_id: usize, digests: Vec<Digest>) -> Result<(), String> {
        let shard = self.router.route_switch(switch_id);
        self.enqueue(
            shard,
            ShardInput::Digests {
                switch_id,
                digests,
                insert: true,
            },
        )
    }

    /// Queue digest retractions (aging) onto the owning shard.
    pub fn retract_digests(&self, switch_id: usize, digests: Vec<Digest>) -> Result<(), String> {
        let shard = self.router.route_switch(switch_id);
        self.enqueue(
            shard,
            ShardInput::Digests {
                switch_id,
                digests,
                insert: false,
            },
        )
    }

    /// Resync every shard from a monitor snapshot (each shard diffs its
    /// slice against its own engine inputs; empty slices still resync
    /// so stale rows are retracted).
    pub fn resync_from_snapshot(
        &self,
        initial: &Json,
        monitored_tables: &[String],
    ) -> Result<(), String> {
        let slices = self.router.split_monitor_update(initial);
        for (shard, slice) in slices.into_iter().enumerate() {
            self.enqueue(
                shard,
                ShardInput::Resync {
                    slice: slice.unwrap_or_else(|| json!({})),
                    tables: monitored_tables.to_vec(),
                },
            )?;
        }
        Ok(())
    }

    /// Ask one shard to reconcile its switches (queued behind whatever
    /// it is currently processing).
    pub fn reconcile_shard(&self, shard: usize) -> Result<(), String> {
        self.enqueue(shard, ShardInput::Reconcile)
    }

    /// Swap the data plane behind `switch_id` (e.g. a fresh TCP client
    /// after the switch restarted), then reconcile its shard. Only that
    /// shard's queues are involved; other shards keep committing. Also
    /// clears the switch's watchdog-poisoned state.
    pub fn replace_switch(&self, switch_id: usize, dp: Box<dyn DataPlane>) -> Result<(), String> {
        let shard = self.router.route_switch(switch_id);
        let shared = &self.writer_shared[shard];
        match shared.queue.push(WriteJob::Replace { switch_id, dp }, None) {
            Ok(_) => self.stats[shard].note_write_queue_depth(shared.queue.len()),
            Err(_) => {
                self.stats[shard].dropped_inputs.inc();
                return Err(format!(
                    "shard {shard} writer gone; cannot replace switch {switch_id}"
                ));
            }
        }
        self.reconcile_shard(shard)
    }

    /// Barrier: block until every input enqueued before this call —
    /// commits on the workers and pushes on the writers — has been
    /// fully processed, on every shard.
    pub fn flush(&self) {
        let (tx, rx) = bounded(self.inputs.len().max(1));
        for input in &self.inputs {
            // Flush markers bypass the shed deadline: a barrier must
            // get in even under load, and the channel blocking here is
            // itself the backpressure.
            let _ = input.send(ShardInput::Flush(tx.clone()));
        }
        drop(tx);
        while rx.recv().is_ok() {}
    }

    /// Engine transactions committed by one shard so far.
    pub fn commits(&self, shard: usize) -> u64 {
        self.stats[shard].commits.get()
    }

    /// Commit errors recorded by one shard so far.
    pub fn commit_errors(&self, shard: usize) -> u64 {
        self.stats[shard].commit_errors.get()
    }

    /// Table entries successfully pushed to devices by one shard so far.
    pub fn entries_written(&self, shard: usize) -> u64 {
        self.stats[shard].entries_written.get()
    }

    /// Writer watchdog restarts on one shard so far.
    pub fn watchdog_restarts(&self, shard: usize) -> u64 {
        self.stats[shard].watchdog_restarts.get()
    }

    /// Write jobs coalesced on one shard so far.
    pub fn coalesced_writes(&self, shard: usize) -> u64 {
        self.stats[shard].coalesced_writes.get()
    }

    /// Inputs/write jobs shed on one shard so far.
    pub fn shed_inputs(&self, shard: usize) -> u64 {
        self.stats[shard].shed_inputs.get()
    }

    /// High-water marks of one shard's (input, writer) queue depths.
    pub fn queue_highwater(&self, shard: usize) -> (u64, u64) {
        (
            self.stats[shard].queue_depth_hwm.get().max(0) as u64,
            self.stats[shard].write_queue_depth_hwm.get().max(0) as u64,
        )
    }

    /// Switches currently poisoned by the watchdog (awaiting a
    /// [`ShardRuntime::replace_switch`]).
    pub fn poisoned_switches(&self, shard: usize) -> Vec<usize> {
        self.writer_shared[shard].poisoned_switches()
    }

    /// Switches whose last device push failed and that have not healed.
    pub fn dirty_switches(&self, shard: usize) -> BTreeSet<usize> {
        self.stats[shard].dirty.lock().unwrap().clone()
    }

    /// Read a switch's tables through its shard's writer queue (ordered
    /// after every write enqueued before this call).
    pub fn read_switch_tables(
        &self,
        switch_id: usize,
    ) -> Result<Vec<(String, Vec<TableEntry>)>, String> {
        let shard = self.router.route_switch(switch_id);
        let (tx, rx) = bounded(1);
        let shared = &self.writer_shared[shard];
        shared
            .queue
            .push(
                WriteJob::ReadAll {
                    switch_id,
                    reply: tx,
                },
                None,
            )
            .map_err(|_| "shard writer gone".to_string())?;
        self.stats[shard].note_write_queue_depth(shared.queue.len());
        rx.recv().map_err(|_| "shard writer gone".to_string())?
    }

    fn enqueue(&self, shard: usize, input: ShardInput) -> Result<(), String> {
        let stat = &self.stats[shard];
        telemetry::record_event(
            telemetry::Plane::Control,
            "shard.enqueue",
            0,
            &[
                ("shard", shard as u64),
                ("depth", stat.queue_depth.get().max(0) as u64),
            ],
        );
        match self.inputs[shard].send_timeout(input, self.policy.enqueue_deadline) {
            Ok(()) => {
                stat.queue_depth.add(1);
                stat.queue_depth_hwm
                    .set_max(self.inputs[shard].len() as i64);
                Ok(())
            }
            Err(SendTimeoutError::Timeout(_)) => {
                stat.shed_inputs.inc();
                telemetry::global()
                    .health
                    .set(format!("shard/{shard}"), "degraded(input shed)");
                telemetry::record_event(
                    telemetry::Plane::Control,
                    "shard.overload",
                    0,
                    &[("shard", shard as u64)],
                );
                telemetry::log_warn!(
                    "shard",
                    "shard {} input queue full past deadline; input shed",
                    shard
                );
                Err(format!(
                    "shard {shard} input queue full past deadline (input shed)"
                ))
            }
            Err(SendTimeoutError::Disconnected(_)) => {
                stat.dropped_inputs.inc();
                telemetry::global()
                    .health
                    .set(format!("shard/{shard}"), "degraded(worker dead)");
                telemetry::log_warn!("shard", "shard {} worker is gone; input dropped", shard);
                Err(format!("shard {shard} worker is gone (input dropped)"))
            }
        }
    }

    /// Register the `/shards` introspection page: one JSON object per
    /// shard with its switches, counters, queue depths, overload
    /// counters, dirty/poisoned switches, and resync state.
    fn register_shards_page(&self) {
        let stats: Vec<Arc<ShardStat>> = self.stats.to_vec();
        let shared: Vec<Arc<WriterShared>> = self.writer_shared.to_vec();
        telemetry::global().register_page("/shards", "application/json", move || {
            let shards: Vec<Json> = stats
                .iter()
                .zip(shared.iter())
                .enumerate()
                .map(|(shard, (s, w))| {
                    let dirty: Vec<usize> = s.dirty.lock().unwrap().iter().copied().collect();
                    json!({
                        "shard": shard,
                        "switches": s.switches.clone(),
                        "commits": s.commits.get(),
                        "commit_errors": s.commit_errors.get(),
                        "write_batches": s.write_batches.get(),
                        "write_errors": s.write_errors.get(),
                        "entries_written": s.entries_written.get(),
                        "queue_depth": s.queue_depth.get(),
                        "write_queue_depth": s.write_queue_depth.get(),
                        "queue_depth_hwm": s.queue_depth_hwm.get(),
                        "write_queue_depth_hwm": s.write_queue_depth_hwm.get(),
                        "shed_inputs": s.shed_inputs.get(),
                        "dropped_inputs": s.dropped_inputs.get(),
                        "coalesced_writes": s.coalesced_writes.get(),
                        "watchdog_restarts": s.watchdog_restarts.get(),
                        "writer_generation": w.queue.generation(),
                        "poisoned_switches": w.poisoned_switches(),
                        "dirty_switches": dirty,
                        "resync_state": s.resync_state.lock().unwrap().clone(),
                    })
                })
                .collect();
            json!({ "shards": shards }).to_string()
        });
    }

    /// Drain and stop every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // The watchdogs hold input-sender clones (for their reconcile
        // kicks), so they must exit before closing the input channels
        // can disconnect the workers. This also means a shutdown drain
        // cannot be mistaken for a stuck push.
        self.shutdown.store(true, Ordering::SeqCst);
        for w in self.watchdogs.drain(..) {
            let _ = w.join();
        }
        // Closing the input channels ends the workers (after a drain).
        self.inputs.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Close the queues: the live writers drain what is left and
        // exit. Superseded writers were already detached.
        for shared in self.writer_shared.drain(..) {
            shared.queue.close();
            let handle = shared.writer_handle.lock().unwrap().take();
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
    }
}

impl Drop for ShardRuntime {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(
    shard: usize,
    mut controller: Controller,
    inputs: Receiver<ShardInput>,
    queue: WriteQueue,
    stat: Arc<ShardStat>,
) {
    while let Ok(input) = inputs.recv() {
        stat.queue_depth.add(-1);
        if let ShardInput::Flush(reply) = input {
            // Worker-side backlog is drained by arrival here; now drain
            // the writer too, then ack.
            let (tx, rx) = bounded(1);
            if queue.push(WriteJob::Flush(tx), None).is_ok() {
                stat.note_write_queue_depth(queue.len());
                let _ = rx.recv();
            }
            let _ = reply.send(());
            continue;
        }
        let commits = matches!(
            input,
            ShardInput::Monitor(_) | ShardInput::Changes { .. } | ShardInput::Digests { .. }
        );
        let result = match input {
            ShardInput::Monitor(slice) => controller.handle_monitor_update(&slice).map(|_| ()),
            ShardInput::Changes { changes, trace } => controller
                .handle_row_changes_traced(&changes, trace)
                .map(|_| ()),
            ShardInput::Digests {
                switch_id,
                digests,
                insert,
            } => {
                let r = if insert {
                    controller.handle_digests(switch_id, &digests)
                } else {
                    controller.retract_digests(switch_id, &digests)
                };
                r.map(|_| ())
            }
            ShardInput::Resync { slice, tables } => {
                stat.set_resync_state("resyncing");
                let r = controller.resync_from_snapshot(&slice, &tables);
                match &r {
                    Ok(report) => stat.set_resync_state(format!(
                        "resynced +{} -{}",
                        report.inserts, report.deletes
                    )),
                    Err(e) => stat.set_resync_state(format!("resync failed: {e}")),
                }
                r.map(|_| ())
            }
            ShardInput::Reconcile => {
                stat.set_resync_state("reconciling");
                let ids = controller.switch_ids();
                let mut inserted = 0usize;
                let mut deleted = 0usize;
                let mut failed = Vec::new();
                for (id, r) in controller.try_reconcile_switches(&ids) {
                    match r {
                        Ok(report) => {
                            inserted += report.inserted;
                            deleted += report.deleted;
                            stat.dirty.lock().unwrap().remove(&id);
                        }
                        Err(e) => failed.push((id, e)),
                    }
                }
                if failed.is_empty() {
                    stat.set_resync_state(format!("reconciled +{inserted} -{deleted}"));
                    Ok(())
                } else {
                    stat.set_resync_state(format!("reconcile failed: {failed:?}"));
                    Err(format!("shard {shard} reconcile failed: {failed:?}"))
                }
            }
            ShardInput::Flush(_) => unreachable!("handled above"),
        };
        match result {
            Ok(()) => {
                if commits {
                    stat.commits.inc();
                }
            }
            Err(e) => {
                stat.commit_errors.inc();
                telemetry::global()
                    .health
                    .set(format!("shard/{shard}"), "degraded(commit failed)");
                telemetry::log_warn!("shard", "shard {} input failed: {}", shard, e);
            }
        }
    }
}

/// Spawn (or respawn) the writer thread for `shard` at `generation`,
/// registering its handle in `shared.writer_handle`. The previous
/// handle, if any, is detached — it belongs to a superseded thread
/// that may still be stuck inside a device call.
fn spawn_writer(
    shard: usize,
    shared: Arc<WriterShared>,
    stat: Arc<ShardStat>,
    generation: u64,
) -> Result<(), String> {
    let thread_shared = shared.clone();
    let handle = std::thread::Builder::new()
        .name(format!("shard-writer-{shard}.{generation}"))
        .spawn(move || writer_loop(shard, thread_shared, stat, generation))
        .map_err(|e| e.to_string())?;
    *shared.writer_handle.lock().unwrap() = Some(handle);
    Ok(())
}

/// The per-shard writer watchdog: polls the in-flight push and, when
/// one exceeds the deadline, supersedes the writer (generation bump),
/// poisons + dirties the stuck switch, respawns a fresh writer on the
/// same queue, and queues a reconcile for the shard.
fn spawn_watchdog(
    shard: usize,
    shared: Arc<WriterShared>,
    stat: Arc<ShardStat>,
    policy: OverloadPolicy,
    inputs: Sender<ShardInput>,
    shutdown: Arc<AtomicBool>,
) -> Result<std::thread::JoinHandle<()>, String> {
    std::thread::Builder::new()
        .name(format!("shard-watchdog-{shard}"))
        .spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(policy.watchdog_poll);
                let fire = {
                    let inflight = shared.inflight.lock().unwrap();
                    match *inflight {
                        Some((switch_id, started, gen))
                            if started.elapsed() >= policy.push_deadline
                                && gen == shared.queue.generation() =>
                        {
                            Some((switch_id, gen))
                        }
                        _ => None,
                    }
                };
                let Some((switch_id, gen)) = fire else {
                    continue;
                };
                let Some(new_gen) = shared.queue.supersede(gen) else {
                    continue;
                };
                *shared.inflight.lock().unwrap() = None;
                stat.watchdog_restarts.inc();
                stat.dirty.lock().unwrap().insert(switch_id);
                if let Some(slot) = shared.switches.lock().unwrap().get_mut(&switch_id) {
                    // The handle is out with the superseded thread; it
                    // drops it (closing the stuck connection) when it
                    // unblocks. Until a Replace, jobs fast-fail.
                    slot.poisoned = true;
                }
                telemetry::global()
                    .health
                    .set(format!("shard/{shard}"), "degraded(writer watchdog)");
                telemetry::record_event(
                    telemetry::Plane::Control,
                    "shard.watchdog_fire",
                    0,
                    &[
                        ("shard", shard as u64),
                        ("switch", switch_id as u64),
                        ("generation", new_gen),
                    ],
                );
                telemetry::log_warn!(
                    "shard",
                    "shard {} writer stuck pushing to switch {} past {:?}; superseding (gen {})",
                    shard,
                    switch_id,
                    policy.push_deadline,
                    new_gen
                );
                if spawn_writer(shard, shared.clone(), stat.clone(), new_gen).is_err() {
                    telemetry::log_warn!("shard", "shard {} writer respawn failed", shard);
                }
                // Re-enter the dirty-switch reconcile path; best-effort
                // (the reconcile will fast-fail on the poisoned switch
                // and succeed after replace_switch).
                let _ = inputs.try_send(ShardInput::Reconcile);
            }
        })
        .map_err(|e| e.to_string())
}

fn writer_loop(shard: usize, shared: Arc<WriterShared>, stat: Arc<ShardStat>, my_gen: u64) {
    let mark_dirty = |switch_id: usize, err: &str| {
        stat.write_errors.inc();
        stat.dirty.lock().unwrap().insert(switch_id);
        telemetry::global()
            .health
            .set(format!("shard/{shard}"), "degraded(write failed)");
        telemetry::log_warn!(
            "shard",
            "shard {} push to switch {} failed: {}",
            shard,
            switch_id,
            err
        );
    };
    let mark_clean = |switch_id: usize| {
        let mut dirty = stat.dirty.lock().unwrap();
        dirty.remove(&switch_id);
        if dirty.is_empty() {
            telemetry::global()
                .health
                .set(format!("shard/{shard}"), "ok");
        }
    };
    // Take the switch's device handle out of its slot for the duration
    // of a device call. Returns `None` (with the job failed) if the
    // switch is unknown, poisoned, or its handle is out with a
    // superseded thread.
    let take_dp = |switch_id: usize| -> Result<Box<dyn DataPlane>, String> {
        let mut switches = shared.switches.lock().unwrap();
        match switches.get_mut(&switch_id) {
            None => Err(format!("switch {switch_id} not owned by shard {shard}")),
            Some(slot) if slot.poisoned => Err(format!(
                "switch {switch_id} poisoned by watchdog; awaiting replace"
            )),
            Some(slot) => slot
                .dp
                .take()
                .ok_or_else(|| format!("switch {switch_id} handle unavailable")),
        }
    };
    // Put the handle back unless this thread was superseded mid-call:
    // then the handle is dropped (closing a presumed-stuck connection)
    // and the call's effects are discarded. Returns false on
    // supersede.
    let put_dp = |switch_id: usize, dp: Box<dyn DataPlane>| -> bool {
        *shared.inflight.lock().unwrap() = None;
        if shared.queue.generation() != my_gen {
            drop(dp);
            telemetry::record_event_note(
                telemetry::Plane::Control,
                "shard.writer_stale_exit",
                0,
                &[("shard", shard as u64), ("switch", switch_id as u64)],
                "superseded writer dropped its device handle",
            );
            return false;
        }
        let mut switches = shared.switches.lock().unwrap();
        if let Some(slot) = switches.get_mut(&switch_id) {
            if slot.poisoned {
                drop(dp);
            } else {
                slot.dp = Some(dp);
            }
        }
        true
    };
    let begin_call = |switch_id: usize| {
        *shared.inflight.lock().unwrap() = Some((switch_id, Instant::now(), my_gen));
    };

    loop {
        let job = match shared.queue.pop(my_gen) {
            Popped::Job(job) => job,
            Popped::Superseded | Popped::Closed => return,
        };
        stat.note_write_queue_depth(shared.queue.len());
        match job {
            WriteJob::Write {
                switch_id,
                updates,
                traces,
            } => {
                let dp = match take_dp(switch_id) {
                    Ok(dp) => dp,
                    Err(e) => {
                        mark_dirty(switch_id, &e);
                        continue;
                    }
                };
                // Recorded before the device call so the timeline
                // orders the shard push before the p4.write it causes.
                let trace = traces.first().copied().unwrap_or(0);
                telemetry::record_event(
                    telemetry::Plane::Control,
                    "shard.push",
                    trace,
                    &[
                        ("shard", shard as u64),
                        ("switch", switch_id as u64),
                        ("updates", updates.len() as u64),
                    ],
                );
                begin_call(switch_id);
                let started = Instant::now();
                let r = if trace != 0 {
                    dp.write_updates_traced(&updates, trace)
                } else {
                    dp.write_updates(&updates)
                };
                if !put_dp(switch_id, dp) {
                    return; // superseded: no effects, no settle
                }
                match r {
                    Ok(()) => {
                        stat.write_batches.inc();
                        stat.entries_written.add(updates.len() as u64);
                        mark_clean(switch_id);
                        // The device acknowledged: every coalesced
                        // trace has converged as far as this switch is
                        // concerned.
                        for t in traces {
                            telemetry::global().convergence_settled(t, Some(shard));
                        }
                    }
                    Err(e) => {
                        telemetry::record_event_note(
                            telemetry::Plane::Control,
                            "shard.write_error",
                            trace,
                            &[("shard", shard as u64), ("switch", switch_id as u64)],
                            &e,
                        );
                        mark_dirty(switch_id, &e);
                    }
                }
                telemetry::global()
                    .registry
                    .histogram(
                        "nerpa_shard_push_us",
                        "Device push latency as seen by shard writers, microseconds",
                        &telemetry::LATENCY_BOUNDS_US,
                    )
                    .record_duration(started.elapsed());
            }
            WriteJob::Mcast {
                switch_id,
                group,
                ports,
            } => {
                let dp = match take_dp(switch_id) {
                    Ok(dp) => dp,
                    Err(e) => {
                        mark_dirty(switch_id, &e);
                        continue;
                    }
                };
                begin_call(switch_id);
                let r = dp.set_mcast_group(group, ports);
                if !put_dp(switch_id, dp) {
                    return;
                }
                if let Err(e) = r {
                    mark_dirty(switch_id, &e);
                }
            }
            WriteJob::ReadAll { switch_id, reply } => {
                let r = match take_dp(switch_id) {
                    Ok(dp) => {
                        begin_call(switch_id);
                        let r = dp.read_all_tables();
                        if !put_dp(switch_id, dp) {
                            let _ = reply.send(Err(format!(
                                "shard {shard} writer superseded during read of switch {switch_id}"
                            )));
                            return;
                        }
                        r
                    }
                    Err(e) => Err(e),
                };
                let _ = reply.send(r);
            }
            WriteJob::Replace { switch_id, dp } => {
                shared.switches.lock().unwrap().insert(
                    switch_id,
                    SwitchSlot {
                        dp: Some(dp),
                        poisoned: false,
                    },
                );
            }
            WriteJob::Flush(reply) => {
                let _ = reply.send(());
            }
        }
    }
}
