//! Overload policy and the bounded, coalescing writer-job queue.
//!
//! Two producer-side disciplines, chosen per queue:
//!
//! * **shard inputs** (monitor slices, row changes, digests) carry
//!   *deltas* — dropping one loses information — so the input queue is
//!   a bounded channel with **block-with-deadline** semantics: a full
//!   queue applies backpressure to the committer for up to
//!   [`OverloadPolicy::enqueue_deadline`], then the send is *shed* and
//!   surfaced as an error (the caller decides whether to retry or
//!   resync).
//! * **writer jobs** describe *desired state* — only the latest
//!   matters — so the write queue **coalesces**: a new `Write` for a
//!   switch that already has one queued merges into it (updates
//!   append, trace ids accumulate), and a new `Mcast` for a
//!   `(switch, group)` that already has one queued replaces its port
//!   list. Barrier jobs (`ReadAll`, `Replace`, `Flush`) close every
//!   open coalesce point so reads stay ordered after the writes that
//!   precede them. Under a flood targeting one switch the queue
//!   therefore holds O(switches + groups) jobs, not O(commits).
//!
//! The queue also carries the writer **generation**: the watchdog bumps
//! it to supersede a writer thread stuck in a device push. A superseded
//! writer observes the bump on its next queue interaction and exits
//! without applying effects; its replacement drains the same queue, so
//! no enqueued job is lost.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crossbeam_channel::Sender;
use nerpa::controller::DataPlane;
use p4sim::runtime::{TableEntry, Update};

/// What `read_all_tables` returns through the writer queue.
pub type TableDump = Result<Vec<(String, Vec<TableEntry>)>, String>;

/// Queue bounds and deadlines for one [`crate::ShardRuntime`]. The
/// defaults are sized for production-ish workloads; tests shrink them
/// to force the overload paths deterministically.
#[derive(Debug, Clone)]
pub struct OverloadPolicy {
    /// Max pending inputs per shard worker queue.
    pub input_queue_cap: usize,
    /// Max pending jobs per shard writer queue (after coalescing).
    pub write_queue_cap: usize,
    /// How long a producer may block on a full queue before the send
    /// is shed and surfaced as an error.
    pub enqueue_deadline: Duration,
    /// How long one device push may run before the writer watchdog
    /// declares it stuck, supersedes the writer thread, and respawns.
    pub push_deadline: Duration,
    /// Watchdog poll interval.
    pub watchdog_poll: Duration,
}

impl Default for OverloadPolicy {
    fn default() -> OverloadPolicy {
        OverloadPolicy {
            input_queue_cap: 1024,
            write_queue_cap: 256,
            enqueue_deadline: Duration::from_secs(2),
            push_deadline: Duration::from_secs(5),
            watchdog_poll: Duration::from_millis(50),
        }
    }
}

/// One unit of work for a shard writer.
pub enum WriteJob {
    /// Push table-entry updates to one switch. `traces` holds every
    /// trace id coalesced into this batch; all of them settle when the
    /// device acknowledges.
    Write {
        /// Global switch id.
        switch_id: usize,
        /// The update batch (appended to by coalescing).
        updates: Vec<Update>,
        /// Trace ids riding on this batch.
        traces: Vec<u64>,
    },
    /// Program a multicast group (last write wins per group).
    Mcast {
        /// Global switch id.
        switch_id: usize,
        /// Multicast group id.
        group: u16,
        /// Desired member ports.
        ports: Vec<u16>,
    },
    /// Read back every table (barrier: ordered after queued writes).
    ReadAll {
        /// Global switch id.
        switch_id: usize,
        /// Where to send the dump.
        reply: Sender<TableDump>,
    },
    /// Swap the real data plane behind `switch_id` (switch reconnect).
    /// Barrier; also clears the switch's poisoned state.
    Replace {
        /// Global switch id.
        switch_id: usize,
        /// The replacement device handle.
        dp: Box<dyn DataPlane>,
    },
    /// Drain marker (barrier): reply once the writer reaches it.
    Flush(Sender<()>),
}

impl std::fmt::Debug for WriteJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteJob::Write {
                switch_id, updates, ..
            } => write!(f, "Write{{switch:{switch_id}, updates:{}}}", updates.len()),
            WriteJob::Mcast {
                switch_id, group, ..
            } => write!(f, "Mcast{{switch:{switch_id}, group:{group}}}"),
            WriteJob::ReadAll { switch_id, .. } => write!(f, "ReadAll{{switch:{switch_id}}}"),
            WriteJob::Replace { switch_id, .. } => write!(f, "Replace{{switch:{switch_id}}}"),
            WriteJob::Flush(_) => f.write_str("Flush"),
        }
    }
}

impl std::fmt::Debug for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Timeout(job) => write!(f, "Timeout({job:?})"),
            PushError::Closed(job) => write!(f, "Closed({job:?})"),
        }
    }
}

impl WriteJob {
    fn is_barrier(&self) -> bool {
        matches!(
            self,
            WriteJob::ReadAll { .. } | WriteJob::Replace { .. } | WriteJob::Flush(_)
        )
    }
}

/// How a [`WriteQueue::push`] landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pushed {
    /// Appended as a new job.
    Queued,
    /// Merged into an already-queued job for the same switch (write)
    /// or `(switch, group)` (mcast); queue depth unchanged.
    Coalesced,
}

/// Why a [`WriteQueue::push`] failed; carries the unpushed job.
pub enum PushError {
    /// The queue stayed full past the enqueue deadline.
    Timeout(WriteJob),
    /// The queue is closed (runtime shutting down).
    Closed(WriteJob),
}

/// What [`WriteQueue::pop`] observed.
pub enum Popped {
    /// A job to execute.
    Job(WriteJob),
    /// The caller's generation was superseded by the watchdog: exit
    /// without touching shared state.
    Superseded,
    /// Queue closed and drained: exit cleanly.
    Closed,
}

struct QueueState {
    jobs: VecDeque<WriteJob>,
    /// Absolute sequence number of `jobs.front()`; a job's stable
    /// handle is `base + index`, immune to `pop_front` shifts.
    base: u64,
    /// Open (coalescible) `Write` job per switch: switch id → absolute
    /// sequence. Stale entries (seq < base) are ignored.
    open_write: BTreeMap<usize, u64>,
    /// Open `Mcast` job per `(switch, group)` → absolute sequence.
    open_mcast: BTreeMap<(usize, u16), u64>,
    /// The current writer generation; pops from older generations
    /// return [`Popped::Superseded`].
    generation: u64,
    closed: bool,
}

impl QueueState {
    fn job_mut(&mut self, seq: u64) -> Option<&mut WriteJob> {
        if seq < self.base {
            return None;
        }
        self.jobs.get_mut((seq - self.base) as usize)
    }
}

/// The bounded, coalescing MPSC job queue between a shard's worker and
/// its (current) writer thread. Clonable handle; all clones share one
/// queue.
#[derive(Clone)]
pub struct WriteQueue {
    inner: Arc<QueueInner>,
}

struct QueueInner {
    state: Mutex<QueueState>,
    cap: usize,
    /// Signalled on push and close: wakes the writer.
    pop_cond: Condvar,
    /// Signalled on pop and close: wakes producers blocked on a full
    /// queue.
    push_cond: Condvar,
}

impl WriteQueue {
    /// An empty queue holding at most `cap` jobs (post-coalescing).
    pub fn new(cap: usize) -> WriteQueue {
        WriteQueue {
            inner: Arc::new(QueueInner {
                state: Mutex::new(QueueState {
                    jobs: VecDeque::new(),
                    base: 0,
                    open_write: BTreeMap::new(),
                    open_mcast: BTreeMap::new(),
                    generation: 0,
                    closed: false,
                }),
                cap: cap.max(1),
                pop_cond: Condvar::new(),
                push_cond: Condvar::new(),
            }),
        }
    }

    /// Enqueue a job, coalescing where the job kind allows it. On a
    /// full queue, blocks until space frees or `deadline` passes
    /// (`None` = wait forever).
    pub fn push(&self, job: WriteJob, deadline: Option<Duration>) -> Result<Pushed, PushError> {
        let give_up = deadline.map(|d| Instant::now() + d);
        let mut st = self.inner.state.lock().unwrap();
        if st.closed {
            return Err(PushError::Closed(job));
        }

        // Coalesce into an open job if one is still queued.
        match &job {
            WriteJob::Write {
                switch_id,
                updates,
                traces,
            } => {
                if let Some(&seq) = st.open_write.get(switch_id) {
                    if let Some(WriteJob::Write {
                        updates: open_updates,
                        traces: open_traces,
                        ..
                    }) = st.job_mut(seq)
                    {
                        open_updates.extend(updates.iter().cloned());
                        open_traces.extend(traces.iter().copied());
                        return Ok(Pushed::Coalesced);
                    }
                }
            }
            WriteJob::Mcast {
                switch_id,
                group,
                ports,
            } => {
                if let Some(&seq) = st.open_mcast.get(&(*switch_id, *group)) {
                    if let Some(WriteJob::Mcast {
                        ports: open_ports, ..
                    }) = st.job_mut(seq)
                    {
                        *open_ports = ports.clone();
                        return Ok(Pushed::Coalesced);
                    }
                }
            }
            _ => {}
        }

        // Need a fresh slot: wait for space.
        while st.jobs.len() >= self.inner.cap {
            if st.closed {
                return Err(PushError::Closed(job));
            }
            match give_up {
                None => st = self.inner.push_cond.wait(st).unwrap(),
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        return Err(PushError::Timeout(job));
                    }
                    let (guard, _) = self.inner.push_cond.wait_timeout(st, at - now).unwrap();
                    st = guard;
                }
            }
        }
        if st.closed {
            return Err(PushError::Closed(job));
        }

        let seq = st.base + st.jobs.len() as u64;
        if job.is_barrier() {
            // Reads and swaps must stay ordered after every write
            // queued before them: close all open coalesce points.
            st.open_write.clear();
            st.open_mcast.clear();
        } else {
            match &job {
                WriteJob::Write { switch_id, .. } => {
                    st.open_write.insert(*switch_id, seq);
                }
                WriteJob::Mcast {
                    switch_id, group, ..
                } => {
                    st.open_mcast.insert((*switch_id, *group), seq);
                }
                _ => unreachable!("non-barrier jobs are Write or Mcast"),
            }
        }
        st.jobs.push_back(job);
        self.inner.pop_cond.notify_all();
        Ok(Pushed::Queued)
    }

    /// Dequeue the next job for a writer of generation `my_gen`. Blocks
    /// while the queue is empty; returns [`Popped::Superseded`] as soon
    /// as the watchdog has bumped past `my_gen`.
    pub fn pop(&self, my_gen: u64) -> Popped {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if st.generation != my_gen {
                return Popped::Superseded;
            }
            if let Some(job) = st.jobs.pop_front() {
                let seq = st.base;
                st.base += 1;
                // The popped job is in flight now: later pushes must
                // not merge into it.
                match &job {
                    WriteJob::Write { switch_id, .. }
                        if st.open_write.get(switch_id) == Some(&seq) =>
                    {
                        st.open_write.remove(switch_id);
                    }
                    WriteJob::Mcast {
                        switch_id, group, ..
                    } if st.open_mcast.get(&(*switch_id, *group)) == Some(&seq) => {
                        st.open_mcast.remove(&(*switch_id, *group));
                    }
                    _ => {}
                }
                self.inner.push_cond.notify_all();
                return Popped::Job(job);
            }
            if st.closed {
                return Popped::Closed;
            }
            // Bounded wait so a supersede is noticed promptly even if
            // its notify raced our sleep.
            let (guard, _) = self
                .inner
                .pop_cond
                .wait_timeout(st, Duration::from_millis(100))
                .unwrap();
            st = guard;
        }
    }

    /// Bump the generation past `expected`, superseding its writer.
    /// Returns the new generation, or `None` if another supersede (or
    /// none-matching generation) got there first.
    pub fn supersede(&self, expected: u64) -> Option<u64> {
        let mut st = self.inner.state.lock().unwrap();
        if st.generation != expected {
            return None;
        }
        st.generation += 1;
        self.inner.pop_cond.notify_all();
        self.inner.push_cond.notify_all();
        Some(st.generation)
    }

    /// The current writer generation.
    pub fn generation(&self) -> u64 {
        self.inner.state.lock().unwrap().generation
    }

    /// Close the queue: producers fail fast, the writer drains what is
    /// left and exits.
    pub fn close(&self) {
        let mut st = self.inner.state.lock().unwrap();
        st.closed = true;
        self.inner.pop_cond.notify_all();
        self.inner.push_cond.notify_all();
    }

    /// Jobs currently queued (post-coalescing).
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().jobs.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4sim::runtime::{FieldMatch, WriteOp};

    fn upd(table: &str, key: u128) -> Update {
        Update {
            op: WriteOp::Insert,
            entry: TableEntry {
                table: table.to_string(),
                matches: vec![FieldMatch::Exact { value: key }],
                priority: 0,
                action: "a".to_string(),
                params: vec![],
            },
        }
    }

    fn write(switch: usize, key: u128, trace: u64) -> WriteJob {
        WriteJob::Write {
            switch_id: switch,
            updates: vec![upd("t", key)],
            traces: vec![trace],
        }
    }

    #[test]
    fn writes_coalesce_per_switch() {
        let q = WriteQueue::new(8);
        assert_eq!(q.push(write(1, 1, 101), None).ok(), Some(Pushed::Queued));
        assert_eq!(q.push(write(2, 2, 102), None).ok(), Some(Pushed::Queued));
        assert_eq!(q.push(write(1, 3, 103), None).ok(), Some(Pushed::Coalesced));
        assert_eq!(q.len(), 2);
        let Popped::Job(WriteJob::Write {
            switch_id,
            updates,
            traces,
        }) = q.pop(0)
        else {
            panic!("expected a write job");
        };
        assert_eq!(switch_id, 1);
        assert_eq!(updates.len(), 2);
        assert_eq!(traces, vec![101, 103]);
        // The in-flight job is closed: a new push for switch 1 queues.
        assert_eq!(q.push(write(1, 4, 104), None).ok(), Some(Pushed::Queued));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn barriers_close_coalesce_points_and_mcast_is_last_wins() {
        let q = WriteQueue::new(8);
        q.push(write(1, 1, 0), None).unwrap();
        q.push(
            WriteJob::Mcast {
                switch_id: 1,
                group: 7,
                ports: vec![1, 2],
            },
            None,
        )
        .unwrap();
        assert_eq!(
            q.push(
                WriteJob::Mcast {
                    switch_id: 1,
                    group: 7,
                    ports: vec![3],
                },
                None,
            )
            .ok(),
            Some(Pushed::Coalesced)
        );
        let (tx, _rx) = crossbeam_channel::bounded(1);
        q.push(WriteJob::Flush(tx), None).unwrap();
        // After the barrier both kinds queue fresh jobs.
        assert_eq!(q.push(write(1, 2, 0), None).ok(), Some(Pushed::Queued));
        assert_eq!(
            q.push(
                WriteJob::Mcast {
                    switch_id: 1,
                    group: 7,
                    ports: vec![4],
                },
                None,
            )
            .ok(),
            Some(Pushed::Queued)
        );
        assert_eq!(q.len(), 5);
        let _ = q.pop(0); // the queued write
        let Popped::Job(WriteJob::Mcast { ports, .. }) = q.pop(0) else {
            panic!("expected mcast");
        };
        assert_eq!(ports, vec![3]);
    }

    #[test]
    fn full_queue_sheds_after_deadline_but_coalesce_still_lands() {
        let q = WriteQueue::new(2);
        q.push(write(1, 1, 0), None).unwrap();
        q.push(write(2, 1, 0), None).unwrap();
        // Full for a *new* switch: shed after the deadline.
        match q.push(write(3, 1, 0), Some(Duration::from_millis(10))) {
            Err(PushError::Timeout(WriteJob::Write { switch_id, .. })) => {
                assert_eq!(switch_id, 3)
            }
            _ => panic!("expected timeout"),
        }
        // But coalescing needs no slot, so a flood at a queued switch
        // cannot grow the queue or shed.
        assert_eq!(
            q.push(write(1, 2, 0), Some(Duration::from_millis(10))).ok(),
            Some(Pushed::Coalesced)
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn supersede_ends_old_generation_and_new_one_drains() {
        let q = WriteQueue::new(4);
        q.push(write(1, 1, 0), None).unwrap();
        assert_eq!(q.generation(), 0);
        let gen1 = q.supersede(0).unwrap();
        assert_eq!(gen1, 1);
        assert!(q.supersede(0).is_none()); // raced supersede loses
        assert!(matches!(q.pop(0), Popped::Superseded));
        assert!(matches!(q.pop(gen1), Popped::Job(_)));
        q.close();
        assert!(matches!(q.pop(gen1), Popped::Closed));
        assert!(matches!(
            q.push(write(1, 2, 0), None),
            Err(PushError::Closed(_))
        ));
    }
}
