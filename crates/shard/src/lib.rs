//! Sharded control plane: partitioned DDlog engines behind an async
//! write pipeline.
//!
//! One Nerpa controller scales until a single engine commit — or a
//! single slow switch push — becomes the bottleneck. This crate splits
//! the control plane by switch: a deterministic [`partition::Router`]
//! assigns every OVSDB row and every digest to one of N shards (global
//! configuration broadcasts), each shard runs its own DDlog engine over
//! its own subset of switches, and each shard pushes its P4Runtime
//! writes from its own writer thread. Commits for shard A never wait on
//! device pushes for shard B, and a fault on one shard's switch leaves
//! the other shards committing undisturbed.
//!
//! Layers:
//!
//! * [`partition`] — the pure routing function (row keys → shard) plus
//!   monitor-update and row-change splitters;
//! * [`set::ShardSet`] — N controllers driven synchronously in
//!   lockstep; the deterministic core the differential oracle checks
//!   for cross-shard equivalence;
//! * [`runtime::ShardRuntime`] — the threaded deployment: per-shard
//!   input queues, worker threads owning the engines, writer threads
//!   owning the data planes, per-shard reconcile/resync, `shard`-labeled
//!   telemetry, and the `/shards` introspection page;
//! * [`overload`] — the backpressure layer: bounded queues with an
//!   [`overload::OverloadPolicy`] (block-with-deadline inputs,
//!   coalesce-per-switch writer jobs) and the writer-generation
//!   machinery the per-shard push watchdog uses to supersede and
//!   respawn a stuck writer thread.

pub mod overload;
pub mod partition;
pub mod runtime;
pub mod set;

pub use overload::OverloadPolicy;
pub use partition::{Assignment, PartitionSpec, RouteRule, Router};
pub use runtime::ShardRuntime;
pub use set::ShardSet;
