//! A synchronous set of shard controllers driven in lockstep.
//!
//! [`ShardSet`] is the deterministic core of the sharded control plane:
//! N independent [`Controller`]s (one DDlog engine each), a [`Router`]
//! deciding which shard sees which row, and nothing else — no queues,
//! no threads. The async runtime layers pipelining on top of this; the
//! differential oracle drives a `ShardSet` directly so that every step
//! is replayable and shrinkable.

use std::collections::{BTreeMap, BTreeSet};

use ddlog::Value;
use nerpa::controller::{Controller, DataPlane, NerpaProgram};
use ovsdb::db::RowChange;
use p4sim::runtime::Digest;
use serde_json::{json, Value as Json};

use crate::partition::Router;

/// N shard controllers plus the router that feeds them.
pub struct ShardSet {
    router: Router,
    shards: Vec<Controller>,
}

impl ShardSet {
    /// Compile `program` once per shard. Every shard runs the same
    /// DDlog program; they differ only in which input rows (and thus
    /// which switches) they own.
    pub fn new(program: &NerpaProgram, router: Router) -> Result<ShardSet, String> {
        let shards = (0..router.shards())
            .map(|_| Controller::new(program))
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ShardSet { router, shards })
    }

    /// The router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard controllers, in shard order.
    pub fn controllers(&self) -> &[Controller] {
        &self.shards
    }

    /// Mutable access to one shard's controller.
    pub fn controller_mut(&mut self, shard: usize) -> &mut Controller {
        &mut self.shards[shard]
    }

    /// The shard owning switch `switch_id`.
    pub fn shard_of_switch(&self, switch_id: usize) -> usize {
        self.router.route_switch(switch_id)
    }

    /// Register a data plane under its global switch id with the shard
    /// that owns it; returns that shard.
    pub fn add_switch(&mut self, switch_id: usize, dp: Box<dyn DataPlane>) -> usize {
        let shard = self.router.route_switch(switch_id);
        self.shards[shard].add_switch_with_id(switch_id, dp);
        shard
    }

    /// Feed one monitor `table-updates` object: split it through the
    /// router and let each shard commit its slice.
    pub fn handle_monitor_update(&mut self, updates: &Json) -> Result<(), String> {
        for (shard, slice) in self
            .router
            .split_monitor_update(updates)
            .into_iter()
            .enumerate()
        {
            if let Some(slice) = slice {
                self.shards[shard].handle_monitor_update(&slice)?;
            }
        }
        Ok(())
    }

    /// Feed committed row changes (the in-process path).
    pub fn handle_row_changes(&mut self, changes: &[RowChange]) -> Result<(), String> {
        for (shard, slice) in self
            .router
            .split_row_changes(changes)
            .into_iter()
            .enumerate()
        {
            if !slice.is_empty() {
                self.shards[shard].handle_row_changes(&slice)?;
            }
        }
        Ok(())
    }

    /// Route digests from switch `switch_id` to the owning shard.
    pub fn handle_digests(&mut self, switch_id: usize, digests: &[Digest]) -> Result<(), String> {
        let shard = self.router.route_switch(switch_id);
        self.shards[shard].handle_digests(switch_id, digests)?;
        Ok(())
    }

    /// Retract previously-learned digests (the aging half).
    pub fn retract_digests(&mut self, switch_id: usize, digests: &[Digest]) -> Result<(), String> {
        let shard = self.router.route_switch(switch_id);
        self.shards[shard].retract_digests(switch_id, digests)?;
        Ok(())
    }

    /// Resync every shard from a monitor snapshot: each shard diffs its
    /// slice of the snapshot against its own engine inputs. Shards with
    /// an empty slice still resync (against the empty snapshot) so rows
    /// deleted while disconnected are retracted everywhere.
    pub fn resync_from_snapshot(
        &mut self,
        initial: &Json,
        monitored_tables: &[String],
    ) -> Result<(), String> {
        let slices = self.router.split_monitor_update(initial);
        for (shard, slice) in slices.into_iter().enumerate() {
            let slice = slice.unwrap_or_else(|| json!({}));
            self.shards[shard].resync_from_snapshot(&slice, monitored_tables)?;
        }
        Ok(())
    }

    /// The set-union of one relation's rows across every shard engine —
    /// the sharded side of the cross-shard equivalence invariant.
    /// Broadcast-derived rows appear in several shards; per-switch rows
    /// in exactly one; the union must equal the unsharded engine's view.
    pub fn union_dump(&self, relation: &str) -> Result<BTreeSet<Vec<Value>>, String> {
        let mut union = BTreeSet::new();
        for shard in &self.shards {
            for row in shard.engine().dump(relation).map_err(|e| e.to_string())? {
                union.insert(row);
            }
        }
        Ok(union)
    }

    /// Switch `switch_id`'s multicast groups, as tracked by its owning
    /// shard's replication state.
    pub fn mcast_snapshot(&self, switch_id: usize) -> BTreeMap<u16, BTreeSet<u16>> {
        let shard = self.router.route_switch(switch_id);
        self.shards[shard].mcast_snapshot(switch_id)
    }

    /// Total engine transactions committed across all shards.
    pub fn transactions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.metrics.transactions.get())
            .sum()
    }
}
