//! Deterministic row→shard partitioning.
//!
//! The router is a pure function of row keys: given a table name and a
//! row (in either of the two wire shapes the stack uses — monitor
//! `table-updates` JSON or in-process [`RowChange`] values), it decides
//! which shard owns the row. Rows keyed by a switch column go to
//! `switch % shards`; rows keyed by a VLAN column (programs with no
//! switch identity on the row) go to `vlan % shards`; global-config
//! rows are broadcast to every shard. Nothing about the assignment
//! depends on arrival order, batch boundaries, or prior routing
//! decisions, so replaying a permuted input stream routes every row
//! identically — the property the partition proptests pin down.

use std::collections::BTreeMap;

use ovsdb::db::{RowChange, RowData};
use ovsdb::{Atom, TRACE_KEY};
use serde_json::{json, Value as Json};

/// Where one row lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Exactly one shard owns the row.
    One(usize),
    /// Every shard receives the row (global configuration).
    All,
}

/// How rows of one table map to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteRule {
    /// Partition by the named integer switch column.
    BySwitch(String),
    /// Partition by the named integer VLAN column — the fallback for
    /// tables that carry no switch identity but are still per-segment.
    ByVlan(String),
    /// Replicate to every shard (global configuration rows that
    /// cross-join with per-switch state, e.g. snvs `Port`).
    Broadcast,
}

impl RouteRule {
    /// The key column this rule partitions on, if any.
    fn key_column(&self) -> Option<&str> {
        match self {
            RouteRule::BySwitch(c) | RouteRule::ByVlan(c) => Some(c),
            RouteRule::Broadcast => None,
        }
    }
}

/// Per-table routing rules plus the default for unlisted tables.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    rules: BTreeMap<String, RouteRule>,
    default_rule: RouteRule,
}

impl PartitionSpec {
    /// A spec with only the default rule.
    pub fn new(default_rule: RouteRule) -> PartitionSpec {
        PartitionSpec {
            rules: BTreeMap::new(),
            default_rule,
        }
    }

    /// Add (or replace) the rule for `table`.
    pub fn with_rule(mut self, table: &str, rule: RouteRule) -> PartitionSpec {
        self.rules.insert(table.to_string(), rule);
        self
    }

    /// The partitioning of the snvs program: `Switch` rows are owned by
    /// `idx % shards`; `Port` rows are global config (every snvs rule
    /// cross-joins them with `Switch`), so they broadcast — as does any
    /// table the spec does not know about, which is always safe: a
    /// shard that holds a surplus row derives only per-switch outputs
    /// for switches it does not own, and those are dropped at the
    /// write-routing stage.
    pub fn snvs() -> PartitionSpec {
        PartitionSpec::new(RouteRule::Broadcast)
            .with_rule("Switch", RouteRule::BySwitch("idx".to_string()))
            .with_rule("Port", RouteRule::Broadcast)
    }

    /// The rule for `table`.
    pub fn rule(&self, table: &str) -> &RouteRule {
        self.rules.get(table).unwrap_or(&self.default_rule)
    }
}

/// A [`PartitionSpec`] bound to a shard count.
#[derive(Debug, Clone)]
pub struct Router {
    spec: PartitionSpec,
    shards: usize,
}

impl Router {
    /// Bind `spec` to `shards` partitions (at least one).
    pub fn new(spec: PartitionSpec, shards: usize) -> Router {
        assert!(shards >= 1, "a router needs at least one shard");
        Router { spec, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning switch `idx` — also the digest route: a digest
    /// reported by switch `idx` is consumed by this shard's engine.
    pub fn route_switch(&self, idx: usize) -> usize {
        idx % self.shards
    }

    fn key_to_shard(&self, key: i64) -> usize {
        key.rem_euclid(self.shards as i64) as usize
    }

    /// Route a monitor-JSON row object. A keyed table whose key column
    /// is absent or non-integer broadcasts (total assignment: every row
    /// lands somewhere, and over-delivery is harmless — see
    /// [`PartitionSpec::snvs`]).
    pub fn route_json_row(&self, table: &str, row: &Json) -> Assignment {
        match self.spec.rule(table).key_column() {
            None => Assignment::All,
            Some(col) => match json_col_int(row, col) {
                Some(k) => Assignment::One(self.key_to_shard(k)),
                None => Assignment::All,
            },
        }
    }

    /// Route an in-process [`RowData`] row (same totality contract as
    /// [`Router::route_json_row`]).
    pub fn route_row_data(&self, table: &str, row: &RowData) -> Assignment {
        match self.spec.rule(table).key_column() {
            None => Assignment::All,
            Some(col) => match row.get(col).and_then(|d| d.as_scalar()) {
                Some(Atom::Integer(k)) => Assignment::One(self.key_to_shard(*k)),
                _ => Assignment::All,
            },
        }
    }

    /// Split one monitor `table-updates` object into per-shard slices.
    /// Returns one entry per shard; `None` means no rows routed there.
    /// The embedded trace object ([`ovsdb::TRACE_KEY`]) is copied into
    /// every non-empty slice so the commit's trace id follows each
    /// shard's queue. A modification whose key column moved the row
    /// across shards splits into a delete on the old owner and an
    /// insert on the new one.
    pub fn split_monitor_update(&self, updates: &Json) -> Vec<Option<Json>> {
        let mut slices: Vec<BTreeMap<String, Json>> = vec![BTreeMap::new(); self.shards];
        let mut put = |shard: usize, table: &str, uuid: &str, body: Json| {
            let slot = slices[shard]
                .entry(table.to_string())
                .or_insert_with(|| json!({}));
            if let Some(obj) = slot.as_object_mut() {
                obj.insert(uuid.to_string(), body);
            }
        };
        let Some(tables) = updates.as_object() else {
            return vec![None; self.shards];
        };
        for (table, rows) in tables {
            if table == TRACE_KEY {
                continue;
            }
            let Some(rows) = rows.as_object() else {
                continue;
            };
            for (uuid, body) in rows {
                let old = body.get("old").filter(|o| !o.is_null());
                let new = body.get("new").filter(|n| !n.is_null());
                match (old, new) {
                    (Some(old), Some(new)) => {
                        // Monitor `modify` semantics: `old` carries only
                        // the changed columns; the full old row is `new`
                        // patched with them.
                        let old_full = patch_row(new, old);
                        let old_dst = self.route_json_row(table, &old_full);
                        let new_dst = self.route_json_row(table, new);
                        if old_dst == new_dst {
                            for shard in self.fan_out(new_dst) {
                                put(shard, table, uuid, body.clone());
                            }
                        } else {
                            for shard in self.fan_out(old_dst) {
                                put(shard, table, uuid, json!({ "old": old_full }));
                            }
                            for shard in self.fan_out(new_dst) {
                                put(shard, table, uuid, json!({ "new": new }));
                            }
                        }
                    }
                    (Some(old), None) => {
                        for shard in self.fan_out(self.route_json_row(table, old)) {
                            put(shard, table, uuid, body.clone());
                        }
                    }
                    (None, Some(new)) => {
                        for shard in self.fan_out(self.route_json_row(table, new)) {
                            put(shard, table, uuid, body.clone());
                        }
                    }
                    (None, None) => {}
                }
            }
        }
        let trace = tables.get(TRACE_KEY);
        slices
            .into_iter()
            .map(|tables| {
                if tables.is_empty() {
                    return None;
                }
                let mut out = json!({});
                let obj = out.as_object_mut().expect("fresh object");
                for (t, rows) in tables {
                    obj.insert(t, rows);
                }
                if let Some(trace) = trace {
                    obj.insert(TRACE_KEY.to_string(), trace.clone());
                }
                Some(out)
            })
            .collect()
    }

    /// Split committed row changes (the in-process path) into per-shard
    /// batches, preserving order within each shard. A change whose key
    /// moved across shards splits into a bare deletion on the old owner
    /// and a bare insertion on the new one.
    pub fn split_row_changes(&self, changes: &[RowChange]) -> Vec<Vec<RowChange>> {
        let mut out: Vec<Vec<RowChange>> = vec![Vec::new(); self.shards];
        for change in changes {
            let old_dst = change
                .old
                .as_ref()
                .map(|r| self.route_row_data(&change.table, r));
            let new_dst = change
                .new
                .as_ref()
                .map(|r| self.route_row_data(&change.table, r));
            match (old_dst, new_dst) {
                (Some(od), Some(nd)) if od != nd => {
                    for shard in self.fan_out(od) {
                        out[shard].push(RowChange {
                            new: None,
                            ..change.clone()
                        });
                    }
                    for shard in self.fan_out(nd) {
                        out[shard].push(RowChange {
                            old: None,
                            ..change.clone()
                        });
                    }
                }
                (_, Some(dst)) | (Some(dst), _) => {
                    for shard in self.fan_out(dst) {
                        out[shard].push(change.clone());
                    }
                }
                (None, None) => {}
            }
        }
        out
    }

    fn fan_out(&self, a: Assignment) -> Vec<usize> {
        match a {
            Assignment::One(s) => vec![s],
            Assignment::All => (0..self.shards).collect(),
        }
    }
}

/// Rebuild a full old row from monitor `modify` halves: `new` patched
/// with the changed columns in `old`.
fn patch_row(new: &Json, old: &Json) -> Json {
    let mut full = new.clone();
    if let (Some(dst), Some(src)) = (full.as_object_mut(), old.as_object()) {
        for (col, val) in src {
            dst.insert(col.clone(), val.clone());
        }
    }
    full
}

/// Extract an integer key from a monitor-JSON row column: either a bare
/// number or the OVSDB scalar-set encoding `["set", [n]]`.
fn json_col_int(row: &Json, col: &str) -> Option<i64> {
    let v = row.get(col)?;
    if let Some(i) = v.as_i64() {
        return Some(i);
    }
    let arr = v.as_array()?;
    if arr.len() == 2 && arr[0].as_str() == Some("set") {
        let inner = arr[1].as_array()?;
        if inner.len() == 1 {
            return inner[0].as_i64();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router(shards: usize) -> Router {
        Router::new(PartitionSpec::snvs(), shards)
    }

    #[test]
    fn switch_rows_partition_by_idx() {
        let r = router(4);
        for idx in 0..16 {
            let row = json!({ "idx": idx });
            assert_eq!(
                r.route_json_row("Switch", &row),
                Assignment::One(idx % 4),
                "idx {idx}"
            );
        }
    }

    #[test]
    fn port_rows_broadcast() {
        let r = router(4);
        let row = json!({ "id": 7, "vlan_mode": "access", "tag": 42 });
        assert_eq!(r.route_json_row("Port", &row), Assignment::All);
    }

    #[test]
    fn unknown_table_and_missing_key_broadcast() {
        let r = router(4);
        assert_eq!(
            r.route_json_row("Mystery", &json!({"x": 1})),
            Assignment::All
        );
        assert_eq!(
            r.route_json_row("Switch", &json!({"x": 1})),
            Assignment::All
        );
    }

    #[test]
    fn scalar_set_encoding_routes() {
        let r = router(3);
        let row = json!({ "idx": ["set", [5]] });
        assert_eq!(r.route_json_row("Switch", &row), Assignment::One(2));
    }

    #[test]
    fn vlan_fallback_rule() {
        let spec = PartitionSpec::new(RouteRule::Broadcast)
            .with_rule("Segment", RouteRule::ByVlan("vlan".to_string()));
        let r = Router::new(spec, 4);
        assert_eq!(
            r.route_json_row("Segment", &json!({"vlan": 10})),
            Assignment::One(2)
        );
    }

    #[test]
    fn split_preserves_trace_and_routes_rows() {
        let r = router(2);
        let updates = json!({
            "Switch": {
                "u1": { "new": { "idx": 0 } },
                "u2": { "new": { "idx": 1 } },
            },
            "Port": { "u3": { "new": { "id": 9, "tag": 1 } } },
            ovsdb::TRACE_KEY: { "id": 77, "commit_ns": 5 },
        });
        let slices = r.split_monitor_update(&updates);
        assert_eq!(slices.len(), 2);
        for (shard, slice) in slices.iter().enumerate() {
            let slice = slice.as_ref().expect("both shards get rows");
            assert_eq!(slice[ovsdb::TRACE_KEY]["id"], json!(77), "shard {shard}");
            assert!(slice["Port"].get("u3").is_some(), "Port broadcasts");
            let switches = slice["Switch"].as_object().unwrap();
            assert_eq!(switches.len(), 1);
        }
        assert!(slices[0].as_ref().unwrap()["Switch"].get("u1").is_some());
        assert!(slices[1].as_ref().unwrap()["Switch"].get("u2").is_some());
    }

    #[test]
    fn modify_that_moves_key_splits_into_delete_and_insert() {
        let r = router(2);
        // Monitor modify: old carries only the changed column (idx 0→1).
        let updates = json!({
            "Switch": { "u1": { "old": { "idx": 0 }, "new": { "idx": 1 } } },
        });
        let slices = r.split_monitor_update(&updates);
        let s0 = slices[0].as_ref().expect("old owner notified");
        let s1 = slices[1].as_ref().expect("new owner notified");
        let d0 = &s0["Switch"]["u1"];
        assert!(
            d0.get("new").is_none(),
            "old owner sees a pure delete: {d0}"
        );
        assert_eq!(d0["old"]["idx"], json!(0));
        let d1 = &s1["Switch"]["u1"];
        assert!(
            d1.get("old").is_none(),
            "new owner sees a pure insert: {d1}"
        );
        assert_eq!(d1["new"]["idx"], json!(1));
    }

    #[test]
    fn single_shard_router_sends_everything_to_shard_zero() {
        let r = router(1);
        assert_eq!(
            r.route_json_row("Switch", &json!({"idx": 9})),
            Assignment::One(0)
        );
        assert_eq!(r.route_switch(9), 0);
    }
}
