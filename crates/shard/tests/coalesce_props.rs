//! Coalescing equivalence: draining a [`shard::overload::WriteQueue`]
//! applies exactly the same final device state as replaying the raw,
//! uncoalesced job stream — for any op sequence, any queue capacity,
//! and any interleaving of pushes and drains. Coalescing merges write
//! batches per switch (append, order-preserving) and multicast programs
//! per `(switch, group)` (last wins); neither may change where the
//! device ends up, only how many queue slots the journey takes.

use std::time::Duration;

use p4sim::runtime::{FieldMatch, TableEntry, Update, WriteOp};
use p4sim::{parse_p4, Switch, SwitchDevice};
use proptest::prelude::*;
use shard::overload::{Popped, PushError, WriteJob, WriteQueue};

const SWITCHES: usize = 2;

fn mac_update(op: WriteOp, vlan: u16, mac: u64, port: u16) -> Update {
    Update {
        op,
        entry: TableEntry {
            table: "MacLearned".to_string(),
            matches: vec![
                FieldMatch::Exact {
                    value: vlan as u128,
                },
                FieldMatch::Exact { value: mac as u128 },
            ],
            priority: 0,
            action: "output".to_string(),
            params: vec![port as u128],
        },
    }
}

/// Execute one drained job against the coalesced-side device set, the
/// way a shard writer would.
fn apply(job: WriteJob, devices: &[SwitchDevice]) {
    match job {
        WriteJob::Write {
            switch_id, updates, ..
        } => devices[switch_id].write(&updates).expect("coalesced write"),
        WriteJob::Mcast {
            switch_id,
            group,
            ports,
        } => devices[switch_id].set_mcast_group(group, ports),
        WriteJob::Flush(tx) => {
            let _ = tx.send(());
        }
        other => panic!("unexpected job {other:?}"),
    }
}

fn drain_one(q: &WriteQueue, devices: &[SwitchDevice]) {
    match q.pop(0) {
        Popped::Job(job) => apply(job, devices),
        other @ (Popped::Superseded | Popped::Closed) => {
            panic!(
                "pop returned {} with jobs still queued",
                match other {
                    Popped::Superseded => "Superseded",
                    _ => "Closed",
                }
            )
        }
    }
}

fn sorted_tables(dev: &SwitchDevice) -> Vec<(String, Vec<TableEntry>)> {
    let mut tables = dev.read_all_tables();
    for (_, entries) in &mut tables {
        entries.sort();
    }
    tables
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any consistent op stream, any capacity, and any push/drain
    /// interleaving: (final tables, final mcast groups) of the device
    /// fed through the coalescing queue equal those of the device fed
    /// the raw stream directly.
    #[test]
    fn coalesced_drain_equals_raw_replay(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>(), 0usize..3), 1..80),
        cap in 2usize..6,
    ) {
        let program = parse_p4(snvs::assets::SNVS_P4).expect("snvs parses");
        let raw: Vec<SwitchDevice> = (0..SWITCHES)
            .map(|_| SwitchDevice::new(Switch::new(program.clone())))
            .collect();
        let coalesced: Vec<SwitchDevice> = (0..SWITCHES)
            .map(|_| SwitchDevice::new(Switch::new(program.clone())))
            .collect();
        let q = WriteQueue::new(cap);

        // Model of live MacLearned keys per switch, so generated
        // Insert/Delete streams are always valid table programs.
        let mut live: Vec<Vec<(u16, u64, u16)>> = vec![Vec::new(); SWITCHES];
        let mut fresh = 0u64;

        for &(sel, key_pick, drain) in &ops {
            let sw = (sel >> 4) as usize % SWITCHES;
            let job = match sel % 10 {
                // Insert a fresh key.
                0..=4 => {
                    fresh += 1;
                    let key = (fresh as u16 % 7, 0x1000 + fresh, fresh as u16 % 15);
                    live[sw].push(key);
                    let upd = mac_update(WriteOp::Insert, key.0, key.1, key.2);
                    raw[sw].write(std::slice::from_ref(&upd)).expect("raw insert");
                    WriteJob::Write { switch_id: sw, updates: vec![upd], traces: vec![fresh] }
                }
                // Delete a live key (falls back to insert when empty).
                5 | 6 if !live[sw].is_empty() => {
                    let idx = key_pick as usize % live[sw].len();
                    let key = live[sw].remove(idx);
                    let upd = mac_update(WriteOp::Delete, key.0, key.1, key.2);
                    raw[sw].write(std::slice::from_ref(&upd)).expect("raw delete");
                    WriteJob::Write { switch_id: sw, updates: vec![upd], traces: vec![0] }
                }
                5 | 6 => {
                    fresh += 1;
                    let key = (fresh as u16 % 7, 0x1000 + fresh, fresh as u16 % 15);
                    live[sw].push(key);
                    let upd = mac_update(WriteOp::Insert, key.0, key.1, key.2);
                    raw[sw].write(std::slice::from_ref(&upd)).expect("raw insert");
                    WriteJob::Write { switch_id: sw, updates: vec![upd], traces: vec![fresh] }
                }
                // Program (or clear: empty port set) a multicast group.
                7 | 8 => {
                    let group = key_pick % 3;
                    let ports: Vec<u16> = (0..(key_pick >> 2) % 3)
                        .map(|i| 1 + (key_pick >> (4 + i)) % 9)
                        .collect();
                    raw[sw].set_mcast_group(group, ports.clone());
                    WriteJob::Mcast { switch_id: sw, group, ports }
                }
                // Barrier: closes every open coalesce point.
                _ => {
                    let (tx, _rx) = crossbeam_channel::bounded::<()>(1);
                    WriteJob::Flush(tx)
                }
            };

            // Push, draining one job whenever a fresh slot is needed —
            // the single-threaded stand-in for writer backpressure.
            let mut job = job;
            loop {
                match q.push(job, Some(Duration::ZERO)) {
                    Ok(_) => break,
                    Err(PushError::Timeout(j)) => {
                        job = j;
                        drain_one(&q, &coalesced);
                    }
                    Err(PushError::Closed(_)) => panic!("queue closed mid-test"),
                }
            }
            prop_assert!(q.len() <= cap, "queue grew past its cap");
            for _ in 0..drain {
                if q.is_empty() {
                    break;
                }
                drain_one(&q, &coalesced);
            }
        }
        while !q.is_empty() {
            drain_one(&q, &coalesced);
        }

        for sw in 0..SWITCHES {
            prop_assert_eq!(
                sorted_tables(&raw[sw]),
                sorted_tables(&coalesced[sw]),
                "switch {} table state diverged after coalescing", sw
            );
            prop_assert_eq!(
                raw[sw].mcast_snapshot(),
                coalesced[sw].mcast_snapshot(),
                "switch {} multicast groups diverged after coalescing", sw
            );
        }
    }
}
