//! Partitioner properties: the row→shard assignment is total (every
//! row lands on at least one shard, never on a nonexistent one),
//! deterministic across replays, and stable under permutation and
//! re-batching of the input stream — a row's destination depends only
//! on its own keys, never on arrival order or batch boundaries.

use std::collections::BTreeMap;
use std::sync::Arc;

use ovsdb::db::{RowChange, RowData};
use ovsdb::{Atom, Datum, Uuid};
use proptest::prelude::*;
use serde_json::json;
use shard::{Assignment, PartitionSpec, Router};

/// A generated row: which table, its integer key (meaningful for
/// `Switch` only), and whether the change carries old/new halves.
type GenRow = (u8, i64, bool, bool);

fn row_data(table_kind: u8, key: i64) -> Arc<RowData> {
    let mut row = BTreeMap::new();
    match table_kind % 3 {
        0 => {
            row.insert("idx".to_string(), Datum::scalar(Atom::Integer(key)));
        }
        1 => {
            row.insert("id".to_string(), Datum::scalar(Atom::Integer(key)));
            row.insert("tag".to_string(), Datum::scalar(Atom::Integer(1)));
        }
        _ => {
            row.insert("x".to_string(), Datum::scalar(Atom::Integer(key)));
        }
    }
    Arc::new(row)
}

fn table_name(table_kind: u8) -> &'static str {
    match table_kind % 3 {
        0 => "Switch",
        1 => "Port",
        _ => "Mystery",
    }
}

fn change(i: usize, (table_kind, key, has_old, has_new): GenRow) -> RowChange {
    let data = row_data(table_kind, key);
    RowChange {
        table: table_name(table_kind).to_string(),
        uuid: Uuid(((i as u128) << 64) | 0xdead),
        old: (has_old || !has_new).then(|| data.clone()),
        new: has_new.then(|| data.clone()),
    }
}

fn routes_of(router: &Router, changes: &[RowChange]) -> BTreeMap<ovsdb::Uuid, Vec<usize>> {
    let mut out: BTreeMap<ovsdb::Uuid, Vec<usize>> = BTreeMap::new();
    for (s, slice) in router.split_row_changes(changes).into_iter().enumerate() {
        for c in slice {
            out.entry(c.uuid).or_default().push(s);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every row is assigned, and always to an existing shard.
    #[test]
    fn assignment_is_total(
        rows in proptest::collection::vec((0u8..3, -64i64..64), 1..40),
        shards in 1usize..9,
    ) {
        let router = Router::new(PartitionSpec::snvs(), shards);
        for (kind, key) in &rows {
            let table = table_name(*kind);
            match router.route_row_data(table, &row_data(*kind, *key)) {
                Assignment::One(s) => prop_assert!(s < shards, "{table} key {key} -> shard {s}"),
                Assignment::All => {}
            }
            let jrow = match *kind % 3 {
                0 => json!({"idx": key}),
                1 => json!({"id": key, "tag": 1}),
                _ => json!({"x": key}),
            };
            // Both wire shapes agree on the destination.
            prop_assert_eq!(
                router.route_json_row(table, &jrow),
                router.route_row_data(table, &row_data(*kind, *key)),
                "JSON and RowData routing diverge for {} key {}", table, key
            );
        }
    }

    /// Routing the same batch twice yields byte-identical splits.
    #[test]
    fn assignment_is_deterministic(
        rows in proptest::collection::vec((0u8..3, -64i64..64, any::<bool>(), any::<bool>()), 1..40),
        shards in 1usize..9,
    ) {
        let router = Router::new(PartitionSpec::snvs(), shards);
        let changes: Vec<RowChange> = rows.iter().enumerate().map(|(i, r)| change(i, *r)).collect();
        let a = router.split_row_changes(&changes);
        let b = router.split_row_changes(&changes);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // A separately-constructed router with the same spec agrees too.
        let other = Router::new(PartitionSpec::snvs(), shards);
        let c = other.split_row_changes(&changes);
        prop_assert_eq!(format!("{a:?}"), format!("{c:?}"));
    }

    /// Each row's destination set is invariant under permutation and
    /// re-batching of the input stream.
    #[test]
    fn assignment_is_stable_under_permutation(
        rows in proptest::collection::vec((0u8..3, -64i64..64, any::<bool>(), any::<bool>()), 2..40),
        shards in 1usize..9,
        rotate in 0usize..40,
        split_at in 0usize..40,
    ) {
        let router = Router::new(PartitionSpec::snvs(), shards);
        let changes: Vec<RowChange> = rows.iter().enumerate().map(|(i, r)| change(i, *r)).collect();
        let baseline = routes_of(&router, &changes);

        // Rotated stream: same rows, different order.
        let mut rotated = changes.clone();
        rotated.rotate_left(rotate % changes.len());
        prop_assert_eq!(&routes_of(&router, &rotated), &baseline);

        // Re-batched stream: same rows, different batch boundaries.
        let cut = split_at % changes.len();
        let mut rebatched = routes_of(&router, &changes[..cut]);
        for (uuid, mut shards) in routes_of(&router, &changes[cut..]) {
            rebatched.entry(uuid).or_default().append(&mut shards);
        }
        prop_assert_eq!(&rebatched, &baseline);
    }

    /// Monitor-JSON splitting conserves rows: every input row appears
    /// in at least one slice, and `Switch` rows in exactly one.
    #[test]
    fn monitor_split_conserves_rows(
        rows in proptest::collection::vec((0u8..3, -64i64..64), 1..30),
        shards in 1usize..9,
    ) {
        let router = Router::new(PartitionSpec::snvs(), shards);
        let mut tables = json!({});
        for (i, (kind, key)) in rows.iter().enumerate() {
            let table = table_name(*kind);
            let jrow = match *kind % 3 {
                0 => json!({"idx": key}),
                1 => json!({"id": key, "tag": 1}),
                _ => json!({"x": key}),
            };
            let obj = tables.as_object_mut().unwrap();
            let slot = obj.entry(table.to_string()).or_insert_with(|| json!({}));
            slot.as_object_mut()
                .unwrap()
                .insert(format!("u{i}"), json!({"new": jrow}));
        }
        let slices = router.split_monitor_update(&tables);
        prop_assert_eq!(slices.len(), shards);
        for (i, (kind, _)) in rows.iter().enumerate() {
            let table = table_name(*kind);
            let uuid = format!("u{i}");
            let copies = slices
                .iter()
                .flatten()
                .filter(|s| s.get(table).and_then(|t| t.get(&uuid)).is_some())
                .count();
            prop_assert!(copies >= 1, "row {uuid} of {table} lost in the split");
            if table == "Switch" {
                prop_assert_eq!(copies, 1, "Switch row {} replicated", uuid);
            }
        }
    }
}
