//! Registry semantics: bucket boundaries, counter saturation,
//! concurrent access, and exposition-format stability (golden file).

use std::sync::Arc;

use telemetry::{validate_exposition, Counter, Histogram, Registry, LATENCY_BOUNDS_US};

#[test]
fn histogram_bucket_boundaries_are_inclusive() {
    let h = Histogram::new(&[10, 100, 1_000]);
    // On the boundary → that bucket; one past → the next.
    h.record(10);
    h.record(11);
    h.record(100);
    h.record(101);
    h.record(1_000);
    h.record(1_001); // overflow bucket
    assert_eq!(h.bucket_counts(), vec![1, 2, 2, 1]);
    assert_eq!(h.count(), 6);
    assert_eq!(h.sum(), 10 + 11 + 100 + 101 + 1_000 + 1_001);
    assert_eq!(h.first(), Some(10));
    assert_eq!(h.last(), Some(1_001));
    assert_eq!(h.max(), Some(1_001));
}

#[test]
fn histogram_zero_lands_in_first_bucket() {
    let h = Histogram::new(&LATENCY_BOUNDS_US);
    h.record(0);
    assert_eq!(h.bucket_counts()[0], 1);
    assert_eq!(h.mean(), Some(0.0));
}

#[test]
fn empty_histogram_reports_nothing() {
    let h = Histogram::new(&[1, 2]);
    assert_eq!(h.count(), 0);
    assert_eq!(h.mean(), None);
    assert_eq!(h.first(), None);
    assert_eq!(h.last(), None);
    assert_eq!(h.max(), None);
}

#[test]
fn counter_saturates_instead_of_wrapping() {
    let c = Counter::new();
    c.add(u64::MAX - 1);
    c.add(10);
    assert_eq!(c.get(), u64::MAX);
    c.inc();
    assert_eq!(c.get(), u64::MAX);
}

#[test]
fn histogram_sum_saturates() {
    let h = Histogram::new(&[10]);
    h.record(u64::MAX - 1);
    h.record(u64::MAX - 1);
    assert_eq!(h.sum(), u64::MAX);
    assert_eq!(h.count(), 2);
}

#[test]
fn registry_is_get_or_create() {
    let reg = Registry::new();
    let a = reg.counter("x_total", "help");
    let b = reg.counter("x_total", "help");
    a.add(3);
    b.add(4);
    assert_eq!(a.get(), 7);
    assert_eq!(reg.value("x_total"), Some(7));
}

#[test]
fn labeled_series_are_distinct() {
    let reg = Registry::new();
    let port = reg.counter_with(
        "changes_total",
        "per-relation changes",
        &[("relation", "Port")],
    );
    let swit = reg.counter_with(
        "changes_total",
        "per-relation changes",
        &[("relation", "Switch")],
    );
    port.add(5);
    swit.add(2);
    assert_eq!(reg.value("changes_total{relation=\"Port\"}"), Some(5));
    assert_eq!(reg.value("changes_total{relation=\"Switch\"}"), Some(2));
    assert_eq!(reg.series_names().len(), 2);
}

#[test]
#[should_panic(expected = "registered as counter")]
fn kind_mismatch_panics() {
    let reg = Registry::new();
    reg.counter("thing", "help");
    reg.gauge("thing", "help");
}

#[test]
fn publish_replaces_the_series() {
    let reg = Registry::new();
    let first = Counter::new();
    first.add(9);
    reg.publish_counter("resyncs_total", "resync count", &first);
    assert_eq!(reg.value("resyncs_total"), Some(9));
    // A second instance (e.g. a new controller) takes over exposition,
    // but the first handle still reads its own value.
    let second = Counter::new();
    second.add(1);
    reg.publish_counter("resyncs_total", "resync count", &second);
    assert_eq!(reg.value("resyncs_total"), Some(1));
    assert_eq!(first.get(), 9);
}

#[test]
fn concurrent_registration_and_updates_are_consistent() {
    let reg = Arc::new(Registry::new());
    let mut handles = Vec::new();
    for t in 0..8 {
        let reg = reg.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..1_000 {
                // All threads hammer the same counter...
                reg.counter("shared_total", "shared").inc();
                // ...and their own labeled series and histogram.
                let tid = t.to_string();
                reg.counter_with("per_thread_total", "per-thread", &[("t", &tid)])
                    .inc();
                reg.histogram("obs_us", "observations", &[10, 100, 1_000])
                    .record(i % 2_000);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(reg.value("shared_total"), Some(8_000));
    for t in 0..8 {
        assert_eq!(
            reg.value(&format!("per_thread_total{{t=\"{t}\"}}")),
            Some(1_000)
        );
    }
    let h = reg.histogram("obs_us", "observations", &[10, 100, 1_000]);
    assert_eq!(h.count(), 8_000);
    assert_eq!(h.bucket_counts().iter().sum::<u64>(), 8_000);
    validate_exposition(&reg.render_text()).unwrap();
}

/// The exposition format is a contract: scrapers and the CI gate parse
/// it. Any change must update the golden file deliberately.
#[test]
fn exposition_format_matches_golden_file() {
    let reg = Registry::new();
    reg.counter(
        "ovsdb_commits_total",
        "Committed management-plane transactions",
    )
    .add(3);
    reg.gauge("ddlog_zset_rows", "Rows across output relations")
        .set(42);
    let h = reg.histogram(
        "stack_e2e_latency_us",
        "End-to-end commit-to-dataplane latency (us)",
        &[100, 1_000, 10_000],
    );
    h.record(50);
    h.record(50);
    h.record(700);
    h.record(2_000_000);
    reg.counter_with(
        "ddlog_changes_total",
        "Output relation changes by relation",
        &[("relation", "InVlan")],
    )
    .add(5);

    let text = reg.render_text();
    validate_exposition(&text).unwrap();

    let golden = include_str!("golden_exposition.txt");
    assert_eq!(
        text, golden,
        "exposition format drifted from tests/golden_exposition.txt; \
         if the change is intentional, update the golden file"
    );

    // JSON rendering stays parseable and carries the same series.
    let json = reg.render_json();
    assert!(json.contains("\"ovsdb_commits_total\":{\"type\":\"counter\",\"value\":3}"));
    assert!(json.contains("\"ddlog_zset_rows\":{\"type\":\"gauge\",\"value\":42}"));
    assert!(json.contains("\"type\":\"histogram\",\"count\":4"));
}

#[test]
fn validate_exposition_rejects_malformed_text() {
    // No TYPE comment.
    assert!(validate_exposition("orphan_total 3\n").is_err());
    // Bad value.
    assert!(validate_exposition("# TYPE x counter\nx pancake\n").is_err());
    // Bad metric name.
    assert!(validate_exposition("# TYPE 9x counter\n9x 1\n").is_err());
    // Histogram without +Inf bucket.
    let text = "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 5\nh_count 1\n";
    assert!(validate_exposition(text).is_err());
    // Histogram where +Inf disagrees with count.
    let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 5\nh_count 1\n";
    assert!(validate_exposition(text).is_err());
    // Well-formed minimal histogram passes.
    let text =
        "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 5\nh_count 1\n";
    validate_exposition(text).unwrap();
}

#[test]
fn histogram_overflow_counts_saturated_samples() {
    let h = Histogram::new(&[10, 100]);
    assert_eq!(h.overflow(), 0);
    h.record(5);
    h.record(100); // boundary is inclusive: not overflow
    assert_eq!(h.overflow(), 0);
    h.record(101);
    h.record(u64::MAX);
    assert_eq!(h.overflow(), 2);
    assert_eq!(h.count(), 4);
}

#[test]
fn histogram_overflow_is_exported_in_both_expositions() {
    let reg = Registry::new();
    let h = reg.histogram("demo_us", "a demo histogram", &[10, 100]);
    h.record(50);
    h.record(5_000);
    let text = reg.render_text();
    validate_exposition(&text).unwrap();
    assert!(
        text.contains("# TYPE demo_us_overflow_total counter"),
        "{text}"
    );
    assert!(text.contains("demo_us_overflow_total 1"), "{text}");
    let json = reg.render_json();
    assert!(json.contains("\"overflow\":1"), "{json}");

    // Labeled series each carry their own overflow sample.
    let hl = reg.histogram_with("demo_us", "a demo histogram", &[("shard", "3")], &[10, 100]);
    hl.record(7_000);
    hl.record(8_000);
    let text = reg.render_text();
    validate_exposition(&text).unwrap();
    assert!(
        text.contains("demo_us_overflow_total{shard=\"3\"} 2"),
        "{text}"
    );
}

#[test]
fn labeled_histograms_share_family_and_validate() {
    let reg = Registry::new();
    reg.histogram("lag_ns", "per-shard lag", &[1_000]).record(5);
    for shard in 0..3 {
        let label = shard.to_string();
        reg.histogram_with("lag_ns", "per-shard lag", &[("shard", &label)], &[1_000])
            .record(shard * 700);
    }
    let text = reg.render_text();
    validate_exposition(&text).unwrap();
    assert!(
        text.contains("lag_ns_bucket{shard=\"2\",le=\"+Inf\"} 1"),
        "{text}"
    );
    // Same name+labels returns the same underlying series.
    let again = reg.histogram_with("lag_ns", "per-shard lag", &[("shard", "2")], &[1_000]);
    assert_eq!(again.count(), 1);
}
