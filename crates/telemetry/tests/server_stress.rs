//! Introspection server under pressure: concurrent scrapes must all
//! succeed while a slow/stalled client holds a connection open, the
//! commit path (metric recording) must never block on scrape traffic,
//! and connection handling stays bounded (excess connections are shed
//! with 503 instead of queuing without limit).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use telemetry::{http_get, IntrospectionServer, Telemetry};

fn bundle() -> Arc<Telemetry> {
    let tel = Arc::new(Telemetry::new());
    tel.registry
        .counter("stress_commits_total", "commit-path counter")
        .add(1);
    tel
}

#[test]
fn concurrent_scrapes_succeed_while_a_client_stalls() {
    let tel = bundle();
    let server = IntrospectionServer::start("127.0.0.1:0", tel.clone()).unwrap();
    let addr = server.local_addr();

    // A stalled client: connects, sends nothing, holds the socket.
    let stalled = TcpStream::connect(addr).unwrap();

    // While it stalls, 8 concurrent scrapes across every route must
    // all complete promptly (each connection gets its own thread; the
    // stalled one only occupies a slot until its read timeout).
    let started = Instant::now();
    let mut handles = Vec::new();
    for i in 0..8 {
        let path = ["/metrics", "/metrics.json", "/health", "/convergence"][i % 4];
        handles.push(std::thread::spawn(move || http_get(addr, path).unwrap()));
    }
    for h in handles {
        let (status, _) = h.join().unwrap();
        assert!(status.contains("200"), "{status}");
    }
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "scrapes stalled behind a dead client: {:?}",
        started.elapsed()
    );
    drop(stalled);
}

#[test]
fn slow_trickling_client_does_not_block_other_scrapes() {
    let tel = bundle();
    let server = IntrospectionServer::start("127.0.0.1:0", tel.clone()).unwrap();
    let addr = server.local_addr();

    // A client that dribbles its request one byte at a time.
    let mut slow = TcpStream::connect(addr).unwrap();
    let request = b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
    let done = Arc::new(AtomicBool::new(false));
    let done2 = done.clone();
    let dribble = std::thread::spawn(move || {
        for b in request {
            if slow.write_all(std::slice::from_ref(b)).is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut out = String::new();
        let _ = slow.read_to_string(&mut out);
        done2.store(true, Ordering::SeqCst);
        out
    });

    // Meanwhile fast scrapes keep working, unblocked.
    for _ in 0..5 {
        let (status, body) = http_get(addr, "/metrics").unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("stress_commits_total 1"), "{body}");
    }
    // The fast scrapes above completed regardless of whether the
    // dribbler has finished; its handling must not gate theirs.
    let _ = done.load(Ordering::SeqCst);
    let body = dribble.join().unwrap();
    assert!(
        body.contains("stress_commits_total"),
        "slow client eventually served: {body}"
    );
}

#[test]
fn commit_path_recording_never_blocks_on_scrapes() {
    let tel = bundle();
    let server = IntrospectionServer::start("127.0.0.1:0", tel.clone()).unwrap();
    let addr = server.local_addr();
    let counter = tel
        .registry
        .counter("stress_commits_total", "commit-path counter");
    let hist = tel.registry.histogram(
        "stress_lat_us",
        "commit-path histogram",
        &telemetry::LATENCY_BOUNDS_US,
    );

    let stop = Arc::new(AtomicBool::new(false));
    let scraper_stop = stop.clone();
    let scraper = std::thread::spawn(move || {
        while !scraper_stop.load(Ordering::SeqCst) {
            let _ = http_get(addr, "/metrics");
        }
    });

    // The "commit path": hammer the registry while scrapes run. Atomic
    // recording must stay fast — a generous wall bound catches any
    // accidental lock coupling between recording and exposition.
    let started = Instant::now();
    for i in 0..200_000u64 {
        counter.inc();
        hist.record(i % 10_000);
    }
    let elapsed = started.elapsed();
    stop.store(true, Ordering::SeqCst);
    scraper.join().unwrap();
    assert!(
        elapsed < Duration::from_secs(5),
        "commit-path recording blocked behind scrapes: {elapsed:?}"
    );
    assert_eq!(counter.get(), 200_001);
}

#[test]
fn connection_flood_is_bounded_and_recovers() {
    let tel = bundle();
    let server = IntrospectionServer::start("127.0.0.1:0", tel.clone()).unwrap();
    let addr = server.local_addr();

    // Open far more stalled connections than the server's concurrency
    // cap. The server must shed the excess (immediate 503 or reset)
    // rather than queue unboundedly.
    let mut stalled = Vec::new();
    for _ in 0..80 {
        if let Ok(s) = TcpStream::connect(addr) {
            stalled.push(s);
        }
    }
    // Shed connections are answered with an empty 503 and closed.
    let mut shed = 0;
    for s in &mut stalled {
        s.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let mut buf = [0u8; 64];
        if let Ok(n) = s.read(&mut buf) {
            if n > 0 && String::from_utf8_lossy(&buf[..n]).contains("503") {
                shed += 1;
            }
        }
    }
    assert!(shed > 0, "flood past the cap must shed connections");
    drop(stalled);

    // After the stalled sockets drain (bounded by the read timeout),
    // ordinary scrapes work again.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match http_get(addr, "/metrics") {
            Ok((status, _)) if status.contains("200") => break,
            _ if Instant::now() > deadline => panic!("server did not recover after flood"),
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}
