//! A leveled structured logger gated by `NERPA_LOG`.
//!
//! The level check is one relaxed atomic load, so disabled log sites
//! cost nothing measurable on hot paths — and at the default level
//! (`warn`) the hot paths emit nothing at all. Set `NERPA_LOG` to one
//! of `off`, `error`, `warn`, `info`, `debug`, `trace` to widen it.
//!
//! Records go to stderr as `LEVEL target: message` lines; tests can
//! install a capture sink instead.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Level {
    /// Logging disabled.
    Off = 0,
    /// Unrecoverable problems.
    Error = 1,
    /// Recoverable problems (reconnects, retries).
    Warn = 2,
    /// Lifecycle events (connects, resyncs, reconciles).
    Info = 3,
    /// Per-transaction detail (hot paths; off by default).
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// The level's display name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Off => "OFF",
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        Some(match s.to_ascii_lowercase().as_str() {
            "off" | "none" => Level::Off,
            "error" => Level::Error,
            "warn" | "warning" => Level::Warn,
            "info" => Level::Info,
            "debug" => Level::Debug,
            "trace" => Level::Trace,
            _ => return None,
        })
    }
}

/// The default maximum level when `NERPA_LOG` is unset.
pub const DEFAULT_LEVEL: Level = Level::Warn;

const UNINIT: usize = usize::MAX;
static MAX_LEVEL: AtomicUsize = AtomicUsize::new(UNINIT);
static EMITTED: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Option<Vec<String>>> = Mutex::new(None);

fn init_level() -> usize {
    let lvl = std::env::var("NERPA_LOG")
        .ok()
        .and_then(|s| Level::parse(&s))
        .unwrap_or(DEFAULT_LEVEL) as usize;
    // Another thread may have initialized (or a test may have set an
    // explicit level) in the meantime; keep whatever is there.
    match MAX_LEVEL.compare_exchange(UNINIT, lvl, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => lvl,
        Err(cur) => cur,
    }
}

/// The current maximum level.
pub fn max_level() -> Level {
    let raw = MAX_LEVEL.load(Ordering::Relaxed);
    let raw = if raw == UNINIT { init_level() } else { raw };
    match raw {
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        5 => Level::Trace,
        _ => Level::Off,
    }
}

/// Override the maximum level (takes precedence over `NERPA_LOG`).
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as usize, Ordering::Relaxed);
}

/// Whether records at `level` would be emitted. One atomic load.
#[inline]
pub fn enabled(level: Level) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    let max = if max == UNINIT { init_level() } else { max };
    (level as usize) <= max
}

/// Total records actually emitted by this process. Tests assert this
/// does not move across hot paths at the default level.
pub fn records_emitted() -> u64 {
    EMITTED.load(Ordering::Relaxed)
}

/// Emit one record (callers go through the `log_*` macros, which check
/// [`enabled`] first).
pub fn write_record(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    let line = format!("{} {}: {}", level.as_str(), target, args);
    EMITTED.fetch_add(1, Ordering::Relaxed);
    let mut sink = SINK.lock().unwrap();
    match sink.as_mut() {
        Some(buf) => buf.push(line),
        None => eprintln!("{line}"),
    }
}

/// Run `f` with records captured instead of written to stderr; returns
/// the result and the captured lines. Serializes concurrent captures
/// through the sink lock's owner (intended for tests).
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<String>) {
    {
        let mut sink = SINK.lock().unwrap();
        *sink = Some(Vec::new());
    }
    let r = f();
    let lines = SINK.lock().unwrap().take().unwrap_or_default();
    (r, lines)
}

/// Log at [`Level::Error`].
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::write_record($crate::log::Level::Error, $target, format_args!($($arg)+));
        }
    };
}

/// Log at [`Level::Warn`].
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::write_record($crate::log::Level::Warn, $target, format_args!($($arg)+));
        }
    };
}

/// Log at [`Level::Info`].
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::write_record($crate::log::Level::Info, $target, format_args!($($arg)+));
        }
    };
}

/// Log at [`Level::Debug`] (hot paths; off by default).
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::write_record($crate::log::Level::Debug, $target, format_args!($($arg)+));
        }
    };
}

/// Log at [`Level::Trace`].
#[macro_export]
macro_rules! log_trace {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($crate::log::Level::Trace) {
            $crate::log::write_record($crate::log::Level::Trace, $target, format_args!($($arg)+));
        }
    };
}
