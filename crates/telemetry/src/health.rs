//! A live health board: named components reporting free-form status.
//!
//! The controller publishes per-switch and OVSDB connection state here;
//! the introspection endpoint serves it at `/health`.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::metrics::json_string;

/// A set of named components, each with a current status string
/// (`connected`, `resyncing`, `down(io error)` ...).
#[derive(Default)]
pub struct Health {
    components: Mutex<BTreeMap<String, String>>,
}

impl Health {
    /// An empty board.
    pub fn new() -> Health {
        Health::default()
    }

    /// Set (or update) a component's status. A transition from healthy
    /// to degraded is a failure signal: the flight recorder logs it
    /// and, when armed, snapshots its rings to a dump.
    pub fn set(&self, component: impl Into<String>, status: impl Into<String>) {
        let component = component.into();
        let status = status.into();
        let healthy = |s: &str| s.starts_with("ok") || s.starts_with("connected");
        let turned_bad = {
            let mut comps = self.components.lock().unwrap();
            let was_healthy = comps.get(&component).map(|s| healthy(s)).unwrap_or(true);
            let now_healthy = healthy(&status);
            comps.insert(component.clone(), status.clone());
            was_healthy && !now_healthy
        };
        if turned_bad {
            crate::failure_signal("health", &format!("{component}: {status}"));
        }
    }

    /// Remove a component (e.g. a switch taken out of the fleet).
    pub fn remove(&self, component: &str) {
        self.components.lock().unwrap().remove(component);
    }

    /// The current status of one component.
    pub fn get(&self, component: &str) -> Option<String> {
        self.components.lock().unwrap().get(component).cloned()
    }

    /// All components and statuses, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, String)> {
        self.components
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// True when every component reports a status starting with "ok" or
    /// "connected" (an empty board is healthy).
    pub fn all_healthy(&self) -> bool {
        self.components
            .lock()
            .unwrap()
            .values()
            .all(|s| s.starts_with("ok") || s.starts_with("connected"))
    }

    /// Render as a JSON object `{"healthy":bool,"components":{...}}`.
    pub fn render_json(&self) -> String {
        let comps = self.components.lock().unwrap();
        let healthy = comps
            .values()
            .all(|s| s.starts_with("ok") || s.starts_with("connected"));
        let mut out = format!("{{\"healthy\":{healthy},\"components\":{{");
        for (i, (k, v)) in comps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(k));
            out.push(':');
            out.push_str(&json_string(v));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_board_tracks_components() {
        let h = Health::new();
        assert!(h.all_healthy());
        h.set("ovsdb", "connected");
        h.set("switch/0", "connected");
        assert!(h.all_healthy());
        h.set("switch/0", "down(io)");
        assert!(!h.all_healthy());
        assert_eq!(h.get("switch/0").as_deref(), Some("down(io)"));
        let json = h.render_json();
        assert!(json.contains("\"healthy\":false"));
        assert!(json.contains("\"switch/0\":\"down(io)\""));
        h.remove("switch/0");
        assert!(h.all_healthy());
        assert_eq!(h.snapshot().len(), 1);
    }
}
