//! The flight recorder: a bounded, always-on structured event journal
//! — the stack's black box.
//!
//! Every plane records fixed-size [`Event`]s into its own
//! fixed-capacity ring buffer: a slot is claimed with one atomic
//! `fetch_add` (writers never contend on a shared lock, only on the
//! same slot when the ring wraps), stamped with a process-wide
//! monotonic sequence number and the causal trace id the commit
//! carries, then overwritten by later events once the ring is full.
//! Memory is bounded no matter how long the process runs, and an idle
//! stack costs nothing.
//!
//! On a failure signal — an oracle invariant violation, an
//! incrementality-audit trip, a health transition to degraded, crash
//! recovery, the end of a chaos run — the recorder snapshots all rings
//! into a versioned `.nfr` dump file (NDJSON: one header line, one
//! line per event). The `nerpa-flight` CLI merges and causally orders
//! dumps into a cross-plane timeline.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::metrics::{json_string, Counter, Registry};

/// The `.nfr` dump format version written by this recorder.
pub const NFR_VERSION: u32 = 1;

/// Events kept per plane before the ring wraps.
pub const RING_CAP: usize = 4096;

/// Auto-dumps a recorder will write before going quiet (a chaos run
/// flipping health up and down must not fill the disk).
const DUMP_BUDGET: u64 = 16;

/// Which plane recorded an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Plane {
    /// OVSDB: commits, WAL appends, monitor fan-out, recovery.
    Management,
    /// DDlog and the controller: applies, audits, routing.
    Control,
    /// Switches: P4Runtime writes, digests.
    Data,
    /// Cross-plane stack machinery: supervisor, health, failures.
    Stack,
    /// Injected faults.
    Chaos,
}

/// All planes, in ring order.
pub const PLANES: [Plane; 5] = [
    Plane::Management,
    Plane::Control,
    Plane::Data,
    Plane::Stack,
    Plane::Chaos,
];

impl Plane {
    /// The plane's exposition name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Plane::Management => "management",
            Plane::Control => "control",
            Plane::Data => "data",
            Plane::Stack => "stack",
            Plane::Chaos => "chaos",
        }
    }

    fn index(&self) -> usize {
        match self {
            Plane::Management => 0,
            Plane::Control => 1,
            Plane::Data => 2,
            Plane::Stack => 3,
            Plane::Chaos => 4,
        }
    }
}

/// Maximum named fields an event can carry; extras are dropped. Inline
/// storage keeps the record hot path allocation-free — the overhead
/// gate (`report_recorder_overhead`) depends on it.
pub const MAX_EVENT_FIELDS: usize = 8;

/// An event's named numeric fields, stored inline. Dereferences to a
/// slice of the populated prefix.
#[derive(Clone, Copy, Debug)]
pub struct FieldSet {
    len: u8,
    buf: [(&'static str, u64); MAX_EVENT_FIELDS],
}

impl FieldSet {
    fn from_slice(fields: &[(&'static str, u64)]) -> FieldSet {
        let mut buf = [("", 0u64); MAX_EVENT_FIELDS];
        let len = fields.len().min(MAX_EVENT_FIELDS);
        buf[..len].copy_from_slice(&fields[..len]);
        FieldSet {
            len: len as u8,
            buf,
        }
    }
}

impl std::ops::Deref for FieldSet {
    type Target = [(&'static str, u64)];

    fn deref(&self) -> &Self::Target {
        &self.buf[..self.len as usize]
    }
}

impl PartialEq for FieldSet {
    fn eq(&self, other: &FieldSet) -> bool {
        **self == **other
    }
}

/// One recorded event. `fields` carry numeric payload (counts, ids,
/// durations); `note` is an optional free-form detail, kept off the
/// hot paths.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Process-wide monotonic sequence number: the causal order.
    pub seq: u64,
    /// Nanoseconds since the recorder started.
    pub ts_ns: u64,
    /// The recording plane.
    pub plane: Plane,
    /// Event kind (`ovsdb.commit`, `ddlog.apply`, `shard.write`, ...).
    pub kind: &'static str,
    /// The causal trace id this event belongs to; 0 = untraced.
    pub trace: u64,
    /// Named numeric payload fields.
    pub fields: FieldSet,
    /// Optional free-form detail.
    pub note: Option<String>,
}

impl Event {
    /// Render as one `.nfr` NDJSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"ts_ns\":{},\"plane\":\"{}\",\"kind\":{},\"trace\":{},\"fields\":{{",
            self.seq,
            self.ts_ns,
            self.plane.as_str(),
            json_string(self.kind),
            self.trace
        );
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json_string(k)));
        }
        out.push('}');
        if let Some(note) = &self.note {
            out.push_str(&format!(",\"note\":{}", json_string(note)));
        }
        out.push('}');
        out
    }
}

/// One plane's ring: slots claimed by an atomic cursor, each guarded by
/// its own tiny mutex (contended only when the ring wraps onto a slot
/// another thread is still filling).
struct Ring {
    slots: Vec<Mutex<Option<Event>>>,
    /// Events ever recorded into this ring (head % capacity = next slot).
    head: AtomicU64,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            slots: (0..cap).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    fn push(&self, ev: Event) {
        let slot = self.head.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        *self.slots[slot].lock().unwrap() = Some(ev);
    }

    fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    fn snapshot(&self, out: &mut Vec<Event>) {
        for slot in &self.slots {
            if let Some(ev) = slot.lock().unwrap().as_ref() {
                out.push(ev.clone());
            }
        }
    }
}

/// The flight recorder: per-plane rings plus dump machinery.
pub struct FlightRecorder {
    start: Instant,
    /// Wall-clock anchor (unix ms at `start`) so dumps from different
    /// processes can be lined up.
    start_unix_ms: u64,
    enabled: AtomicBool,
    seq: AtomicU64,
    rings: Vec<Ring>,
    /// Directory for automatic failure dumps; `None` = not armed
    /// (the `NERPA_FLIGHT_DIR` env var also arms).
    dump_dir: Mutex<Option<PathBuf>>,
    dumps_remaining: AtomicU64,
    dump_seq: AtomicU64,
    events_total: Counter,
    dumps_total: Counter,
}

impl FlightRecorder {
    /// A fresh recorder whose own counters live in `registry`.
    pub fn new(registry: &Registry) -> FlightRecorder {
        let start_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        FlightRecorder {
            start: Instant::now(),
            start_unix_ms,
            enabled: AtomicBool::new(true),
            seq: AtomicU64::new(1),
            rings: (0..PLANES.len()).map(|_| Ring::new(RING_CAP)).collect(),
            dump_dir: Mutex::new(None),
            dumps_remaining: AtomicU64::new(DUMP_BUDGET),
            dump_seq: AtomicU64::new(0),
            events_total: registry.counter(
                "nerpa_flight_events_total",
                "Events recorded by the flight recorder across all planes",
            ),
            dumps_total: registry.counter(
                "nerpa_flight_dumps_total",
                ".nfr dump files written by the flight recorder",
            ),
        }
    }

    /// Enable or disable recording (the overhead bench measures both
    /// sides of this switch). Disabled recording costs one relaxed
    /// atomic load per call site.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the recorder started (the event clock).
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Record one event.
    pub fn record(
        &self,
        plane: Plane,
        kind: &'static str,
        trace: u64,
        fields: &[(&'static str, u64)],
    ) {
        self.record_inner(plane, kind, trace, fields, None);
    }

    /// Record one event with a free-form note (keep off hot paths).
    pub fn record_note(
        &self,
        plane: Plane,
        kind: &'static str,
        trace: u64,
        fields: &[(&'static str, u64)],
        note: impl Into<String>,
    ) {
        self.record_inner(plane, kind, trace, fields, Some(note.into()));
    }

    fn record_inner(
        &self,
        plane: Plane,
        kind: &'static str,
        trace: u64,
        fields: &[(&'static str, u64)],
        note: Option<String>,
    ) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let ev = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            ts_ns: self.now_ns(),
            plane,
            kind,
            trace,
            fields: FieldSet::from_slice(fields),
            note,
        };
        self.rings[plane.index()].push(ev);
        self.events_total.inc();
    }

    /// Events ever recorded into one plane's ring (including
    /// overwritten ones).
    pub fn recorded(&self, plane: Plane) -> u64 {
        self.rings[plane.index()].recorded()
    }

    /// All currently buffered events across every plane, in causal
    /// (sequence) order.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for ring in &self.rings {
            ring.snapshot(&mut out);
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Arm automatic failure dumps into `dir`.
    pub fn arm(&self, dir: impl Into<PathBuf>) {
        *self.dump_dir.lock().unwrap() = Some(dir.into());
    }

    /// The armed dump directory, if any: an explicit [`arm`] wins,
    /// otherwise the `NERPA_FLIGHT_DIR` env var.
    ///
    /// [`arm`]: FlightRecorder::arm
    pub fn armed_dir(&self) -> Option<PathBuf> {
        if let Some(dir) = self.dump_dir.lock().unwrap().clone() {
            return Some(dir);
        }
        std::env::var_os("NERPA_FLIGHT_DIR").map(PathBuf::from)
    }

    /// Render the full `.nfr` dump: a header line followed by one line
    /// per buffered event, sequence-ordered.
    pub fn render_dump(&self, reason: &str) -> String {
        let events = self.snapshot();
        let mut planes = String::new();
        for (i, p) in PLANES.iter().enumerate() {
            if i > 0 {
                planes.push(',');
            }
            planes.push_str(&format!(
                "\"{}\":{{\"recorded\":{},\"capacity\":{}}}",
                p.as_str(),
                self.recorded(*p),
                RING_CAP
            ));
        }
        let mut out = format!(
            "{{\"nfr\":{NFR_VERSION},\"reason\":{},\"start_unix_ms\":{},\"events\":{},\"planes\":{{{planes}}}}}\n",
            json_string(reason),
            self.start_unix_ms,
            events.len()
        );
        for ev in &events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Write a `.nfr` dump to `path` (parent directories are created).
    pub fn dump_to(&self, path: &Path, reason: &str) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.render_dump(reason))?;
        self.dumps_total.inc();
        Ok(())
    }

    /// Write a uniquely-named `.nfr` dump into `dir` and return its
    /// path. Names are `<stem>-<pid>-<n>.nfr`, collision-free within
    /// and across concurrent processes.
    pub fn dump_into(&self, dir: &Path, stem: &str, reason: &str) -> std::io::Result<PathBuf> {
        let n = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("{stem}-{}-{n}.nfr", std::process::id()));
        self.dump_to(&path, reason)?;
        Ok(path)
    }

    /// A failure signal: record a `failure.signal` event, then — if a
    /// dump directory is armed and the budget allows — snapshot all
    /// rings to a dump file. Returns the dump path if one was written.
    pub fn failure_signal(&self, source: &'static str, note: &str) -> Option<PathBuf> {
        self.record_note(
            Plane::Stack,
            "failure.signal",
            0,
            &[],
            format!("{source}: {note}"),
        );
        let dir = self.armed_dir()?;
        let remaining = self
            .dumps_remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_ok();
        if !remaining {
            return None;
        }
        self.dump_into(&dir, source, note).ok()
    }
}

// -------------------------------------------------------- convergence

/// Bucket bounds (nanoseconds) for `nerpa_convergence_lag_ns`:
/// 50µs up to 2.5s, plus the implicit overflow bucket.
pub const CONVERGENCE_BOUNDS_NS: [u64; 14] = [
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    1_000_000_000,
    2_500_000_000,
];

/// Open traces tracked and recent settlements kept for `/convergence`.
const CONVERGENCE_CAP: usize = 1024;

/// One settled trace as shown on `/convergence`.
#[derive(Clone, Debug)]
pub struct Settled {
    /// The trace id.
    pub trace: u64,
    /// When the commit was acknowledged (recorder clock, ns).
    pub begin_ns: u64,
    /// Lag from ack to the most recent switch write settling it.
    pub lag_ns: u64,
    /// Switch writes that settled under this trace so far.
    pub writes: u64,
    /// Shard that performed the latest settling write, if sharded.
    pub shard: Option<usize>,
}

/// Tracks each commit's trace from OVSDB ack to the switch writes that
/// settle it; the lag is exported as `nerpa_convergence_lag_ns`
/// histograms (global and per shard) and served on `/convergence`.
#[derive(Default)]
pub struct ConvergenceTracker {
    /// Open traces: id → ack timestamp, insertion-ordered for eviction.
    open: Mutex<VecDeque<(u64, u64)>>,
    /// Recently settled traces, newest last.
    recent: Mutex<VecDeque<Settled>>,
    begun: AtomicU64,
    settled: AtomicU64,
}

impl ConvergenceTracker {
    /// Start a trace's convergence clock at OVSDB ack time. Repeat
    /// calls for the same trace keep the first (earliest) anchor.
    pub fn begin(&self, trace: u64, now_ns: u64) {
        if trace == 0 {
            return;
        }
        let mut open = self.open.lock().unwrap();
        if open.iter().any(|(t, _)| *t == trace) {
            return;
        }
        if open.len() == CONVERGENCE_CAP {
            open.pop_front();
        }
        open.push_back((trace, now_ns));
        self.begun.fetch_add(1, Ordering::Relaxed);
    }

    /// A switch write carrying `trace` completed: record the lag into
    /// the global histogram (and the shard's, if sharded) and update
    /// the recent table. Returns the lag, `None` for unknown traces
    /// (evicted, or begun before this process), which are ignored.
    pub fn settled(
        &self,
        registry: &Registry,
        trace: u64,
        shard: Option<usize>,
        now_ns: u64,
    ) -> Option<u64> {
        if trace == 0 {
            return None;
        }
        let begin_ns = {
            let open = self.open.lock().unwrap();
            match open.iter().find(|(t, _)| *t == trace) {
                Some((_, b)) => *b,
                None => return None,
            }
        };
        let lag = now_ns.saturating_sub(begin_ns);
        self.settled.fetch_add(1, Ordering::Relaxed);
        let help = "Commit-to-data-plane convergence lag: OVSDB ack to a switch write settling the trace, nanoseconds";
        registry
            .histogram("nerpa_convergence_lag_ns", help, &CONVERGENCE_BOUNDS_NS)
            .record(lag);
        if let Some(shard) = shard {
            let label = shard.to_string();
            registry
                .histogram_with(
                    "nerpa_convergence_lag_ns",
                    help,
                    &[("shard", &label)],
                    &CONVERGENCE_BOUNDS_NS,
                )
                .record(lag);
        }
        let mut recent = self.recent.lock().unwrap();
        if let Some(entry) = recent.iter_mut().rev().find(|s| s.trace == trace) {
            entry.lag_ns = entry.lag_ns.max(lag);
            entry.writes += 1;
            entry.shard = shard.or(entry.shard);
            return Some(lag);
        }
        if recent.len() == CONVERGENCE_CAP {
            recent.pop_front();
        }
        recent.push_back(Settled {
            trace,
            begin_ns,
            lag_ns: lag,
            writes: 1,
            shard,
        });
        Some(lag)
    }

    /// Traces whose convergence clock was started.
    pub fn begun(&self) -> u64 {
        self.begun.load(Ordering::Relaxed)
    }

    /// Switch-write settlements recorded (≥ one per converged trace).
    pub fn settled_total(&self) -> u64 {
        self.settled.load(Ordering::Relaxed)
    }

    /// The lag recorded for one trace, if it settled and is still in
    /// the recent table.
    pub fn lag_of(&self, trace: u64) -> Option<u64> {
        self.recent
            .lock()
            .unwrap()
            .iter()
            .rev()
            .find(|s| s.trace == trace)
            .map(|s| s.lag_ns)
    }

    /// The `/convergence` page body: counters plus the recent table,
    /// newest settlement last.
    pub fn render_json(&self) -> String {
        let recent = self.recent.lock().unwrap();
        let mut out = format!(
            "{{\"begun\":{},\"settled\":{},\"open\":{},\"recent\":[",
            self.begun(),
            self.settled_total(),
            self.open.lock().unwrap().len()
        );
        for (i, s) in recent.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"trace\":{},\"begin_ns\":{},\"lag_ns\":{},\"writes\":{}",
                s.trace, s.begin_ns, s.lag_ns, s.writes
            ));
            match s.shard {
                Some(sh) => out.push_str(&format!(",\"shard\":{sh}}}")),
                None => out.push('}'),
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder() -> (Registry, FlightRecorder) {
        let registry = Registry::new();
        let rec = FlightRecorder::new(&registry);
        (registry, rec)
    }

    #[test]
    fn events_are_sequence_ordered_across_planes() {
        let (_r, rec) = recorder();
        rec.record(Plane::Management, "ovsdb.commit", 7, &[("rows", 3)]);
        rec.record(Plane::Control, "ddlog.apply", 7, &[("work", 12)]);
        rec.record(Plane::Data, "p4.write", 7, &[("updates", 2)]);
        let events = rec.snapshot();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(events[0].kind, "ovsdb.commit");
        assert_eq!(events[2].plane, Plane::Data);
        assert!(events.iter().all(|e| e.trace == 7));
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let (_r, rec) = recorder();
        for i in 0..(RING_CAP as u64 + 50) {
            rec.record(Plane::Chaos, "chaos.fault", 0, &[("n", i)]);
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), RING_CAP);
        assert_eq!(rec.recorded(Plane::Chaos), RING_CAP as u64 + 50);
        // The oldest 50 were overwritten.
        assert_eq!(events[0].fields[0].1, 50);
        assert_eq!(events.last().unwrap().fields[0].1, RING_CAP as u64 + 49);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let (_r, rec) = recorder();
        rec.set_enabled(false);
        rec.record(Plane::Stack, "x", 0, &[]);
        assert!(rec.snapshot().is_empty());
        rec.set_enabled(true);
        rec.record(Plane::Stack, "x", 0, &[]);
        assert_eq!(rec.snapshot().len(), 1);
    }

    #[test]
    fn dump_renders_header_and_events() {
        let (_r, rec) = recorder();
        rec.record_note(
            Plane::Management,
            "ovsdb.commit",
            3,
            &[("rows", 1)],
            "hello \"world\"",
        );
        let dump = rec.render_dump("test");
        let mut lines = dump.lines();
        let header = lines.next().unwrap();
        assert!(
            header.contains(&format!("\"nfr\":{NFR_VERSION}")),
            "{header}"
        );
        assert!(header.contains("\"reason\":\"test\""));
        assert!(header.contains("\"events\":1"));
        let ev = lines.next().unwrap();
        assert!(ev.contains("\"kind\":\"ovsdb.commit\""));
        assert!(ev.contains("\"trace\":3"));
        assert!(ev.contains("\"rows\":1"));
        assert!(ev.contains("\\\"world\\\""));
        assert!(lines.next().is_none());
    }

    #[test]
    fn failure_signal_dumps_when_armed_within_budget() {
        let (_r, rec) = recorder();
        let dir = std::env::temp_dir().join(format!("nfr-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Not armed: signal records an event but writes nothing.
        assert!(rec.failure_signal("oracle", "pre-arm").is_none());
        rec.arm(&dir);
        let path = rec
            .failure_signal("oracle", "invariant")
            .expect("dump written");
        assert!(path.exists());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("failure.signal"));
        assert!(text.contains("oracle: invariant"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn convergence_tracks_lag_per_trace() {
        let registry = Registry::new();
        let tracker = ConvergenceTracker::default();
        tracker.begin(5, 1_000);
        tracker.begin(5, 2_000); // repeat keeps the first anchor
        tracker.settled(&registry, 5, None, 51_000);
        tracker.settled(&registry, 5, Some(2), 101_000);
        assert_eq!(tracker.settled_total(), 2);
        assert_eq!(tracker.lag_of(5), Some(100_000));
        // Unknown trace: ignored.
        tracker.settled(&registry, 99, None, 500);
        assert_eq!(tracker.settled_total(), 2);
        let json = tracker.render_json();
        assert!(json.contains("\"trace\":5"));
        assert!(json.contains("\"writes\":2"));
        assert!(json.contains("\"shard\":2"));
        let text = registry.render_text();
        assert!(
            text.contains("nerpa_convergence_lag_ns_count 1")
                || text.contains("nerpa_convergence_lag_ns_count{"),
            "{text}"
        );
        crate::metrics::validate_exposition(&text).unwrap();
    }

    #[test]
    fn concurrent_recording_keeps_unique_sequences() {
        let (_r, rec) = recorder();
        let rec = std::sync::Arc::new(rec);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let rec = rec.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    rec.record(Plane::Control, "ddlog.apply", 1, &[]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 1600);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 1600, "sequence numbers must be unique");
    }
}
