//! A live introspection endpoint: a tiny HTTP/1.1 server exposing the
//! metrics registry, the trace ring buffer, and the health board.
//!
//! Routes:
//! - `GET /metrics` — Prometheus-style text exposition
//! - `GET /metrics.json` — the same registry as JSON
//! - `GET /traces` — the trace ring buffer as a JSON array
//! - `GET /health` — connection health board as JSON (HTTP 503 when
//!   any component is unhealthy)
//! - `GET /convergence` — commit-to-data-plane convergence lag
//! - `GET /flight` — flight-recorder status plus its buffered events
//!
//! Each accepted connection is served on its own short-lived thread so
//! a slow or stalled client cannot delay other scrapes; concurrent
//! connections are capped (excess ones get an immediate 503), which
//! bounds both thread count and memory.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::Telemetry;

/// Concurrent connections served before new ones are turned away.
const MAX_CONNS: usize = 32;

/// A running introspection server; shuts down on drop.
pub struct IntrospectionServer {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl IntrospectionServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve
    /// `telemetry` until shutdown or drop.
    pub fn start(addr: impl ToSocketAddrs, telemetry: Arc<Telemetry>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = shutdown.clone();
        let handle = std::thread::spawn(move || {
            let active = Arc::new(AtomicUsize::new(0));
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        // Serve each connection on its own thread so a
                        // stalled client only occupies one slot; past
                        // the cap, shed load immediately.
                        if active.load(Ordering::SeqCst) >= MAX_CONNS {
                            let _ = stream.write_all(
                                b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
                            );
                            continue;
                        }
                        active.fetch_add(1, Ordering::SeqCst);
                        let tel = telemetry.clone();
                        let slots = active.clone();
                        std::thread::spawn(move || {
                            let _ = serve_conn(stream, &tel);
                            slots.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(IntrospectionServer {
            addr: local,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the server thread.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for IntrospectionServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_conn(mut stream: TcpStream, telemetry: &Telemetry) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the end of the request head; we ignore any body.
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 16 * 1024 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = route(method, path, telemetry);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn route(method: &str, path: &str, telemetry: &Telemetry) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        );
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            telemetry.registry.render_text(),
        ),
        "/metrics.json" => (
            "200 OK",
            "application/json",
            telemetry.registry.render_json(),
        ),
        "/traces" => ("200 OK", "application/json", telemetry.tracer.render_json()),
        "/convergence" => (
            "200 OK",
            "application/json",
            telemetry.convergence.render_json(),
        ),
        "/flight" => {
            let events = telemetry.recorder.snapshot();
            let mut body = String::from("{\"enabled\":");
            body.push_str(if telemetry.recorder.is_enabled() {
                "true"
            } else {
                "false"
            });
            body.push_str(",\"events\":[");
            for (i, ev) in events.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&ev.to_json());
            }
            body.push_str("]}");
            ("200 OK", "application/json", body)
        }
        "/health" => {
            let body = telemetry.health.render_json();
            if telemetry.health.all_healthy() {
                ("200 OK", "application/json", body)
            } else {
                ("503 Service Unavailable", "application/json", body)
            }
        }
        _ => match telemetry.render_page(path) {
            Some((content_type, body)) => ("200 OK", content_type, body),
            None => ("404 Not Found", "text/plain", "not found\n".to_string()),
        },
    }
}

/// Fetch `path` from an introspection server at `addr` and return
/// `(status_line, body)`. A minimal client for tests and CI probes.
pub fn http_get(addr: std::net::SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: introspect\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let status = head.lines().next().unwrap_or("").to_string();
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_serves_all_routes() {
        let tel = Arc::new(Telemetry::new());
        tel.registry.counter("demo_total", "a demo counter").add(7);
        tel.health.set("ovsdb", "connected");
        let server = IntrospectionServer::start("127.0.0.1:0", tel.clone()).unwrap();
        let addr = server.local_addr();

        let (status, body) = http_get(addr, "/metrics").unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("demo_total 7"), "{body}");
        crate::metrics::validate_exposition(&body).unwrap();

        let (status, body) = http_get(addr, "/metrics.json").unwrap();
        assert!(status.contains("200"));
        assert!(body.contains("\"demo_total\""));

        let (status, body) = http_get(addr, "/traces").unwrap();
        assert!(status.contains("200"));
        assert_eq!(body, "[]");

        let (status, body) = http_get(addr, "/health").unwrap();
        assert!(status.contains("200"));
        assert!(body.contains("\"healthy\":true"));

        tel.health.set("switch/0", "down(io)");
        let (status, _) = http_get(addr, "/health").unwrap();
        assert!(status.contains("503"));

        let (status, _) = http_get(addr, "/nope").unwrap();
        assert!(status.contains("404"));

        tel.register_page("/dataflow", "application/json", || "{\"ok\":1}".to_string());
        let (status, body) = http_get(addr, "/dataflow").unwrap();
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "{\"ok\":1}");
    }
}
