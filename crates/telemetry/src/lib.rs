//! Cross-plane observability substrate for the full-stack SDN.
//!
//! Three pieces, all std-only:
//!
//! - a **metrics registry** ([`Registry`]) of named atomic counters,
//!   gauges, and fixed-bucket histograms with Prometheus-style text and
//!   JSON exposition;
//! - **causal trace spans** ([`SpanTree`], [`Tracer`]): a trace id
//!   minted when a management-plane transaction commits is threaded
//!   through monitor delivery, engine apply, delta emission, and
//!   P4Runtime writes, yielding per-plane timing trees;
//! - a **live introspection endpoint** ([`IntrospectionServer`])
//!   serving `/metrics`, `/traces`, and `/health` over HTTP.
//!
//! Plus a leveled [`log`] gated by `NERPA_LOG` whose disabled sites
//! cost one relaxed atomic load.

#![warn(missing_docs)]

pub mod health;
pub mod log;
pub mod metrics;
pub mod server;
pub mod trace;

pub use health::Health;
pub use log::Level;
pub use metrics::{
    format_labels, validate_exposition, Counter, Gauge, Histogram, MetricKind, Registry,
    LATENCY_BOUNDS_US, SIZE_BOUNDS,
};
pub use server::{http_get, IntrospectionServer};
pub use trace::{next_trace_id, AttrValue, Span, SpanTree, Tracer};

use std::sync::{Arc, OnceLock};

/// The bundle served by one introspection endpoint: a registry, a trace
/// ring buffer, and a health board.
#[derive(Default)]
pub struct Telemetry {
    /// Named metric families.
    pub registry: Registry,
    /// Recent trace span trees.
    pub tracer: Tracer,
    /// Connection health board.
    pub health: Health,
}

impl Telemetry {
    /// A fresh, empty bundle.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }
}

/// The process-wide telemetry bundle. Components register here by
/// default so one endpoint exposes the whole stack; tests that need
/// isolation construct their own [`Telemetry`].
pub fn global() -> &'static Arc<Telemetry> {
    static GLOBAL: OnceLock<Arc<Telemetry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Telemetry::new()))
}
