//! Cross-plane observability substrate for the full-stack SDN.
//!
//! Three pieces, all std-only:
//!
//! - a **metrics registry** ([`Registry`]) of named atomic counters,
//!   gauges, and fixed-bucket histograms with Prometheus-style text and
//!   JSON exposition;
//! - **causal trace spans** ([`SpanTree`], [`Tracer`]): a trace id
//!   minted when a management-plane transaction commits is threaded
//!   through monitor delivery, engine apply, delta emission, and
//!   P4Runtime writes, yielding per-plane timing trees;
//! - a **live introspection endpoint** ([`IntrospectionServer`])
//!   serving `/metrics`, `/traces`, and `/health` over HTTP.
//!
//! Plus a leveled [`log`] gated by `NERPA_LOG` whose disabled sites
//! cost one relaxed atomic load.

#![warn(missing_docs)]

pub mod health;
pub mod log;
pub mod metrics;
pub mod recorder;
pub mod server;
pub mod trace;

pub use health::Health;
pub use log::Level;
pub use metrics::{
    format_labels, validate_exposition, Counter, Gauge, Histogram, MetricKind, Registry,
    LATENCY_BOUNDS_US, SIZE_BOUNDS,
};
pub use recorder::{
    ConvergenceTracker, Event, FlightRecorder, Plane, CONVERGENCE_BOUNDS_NS, NFR_VERSION,
};
pub use server::{http_get, IntrospectionServer};
pub use trace::{next_trace_id, AttrValue, Span, SpanTree, Tracer};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A pluggable introspection page: content type plus a render callback
/// invoked on every request.
struct Page {
    content_type: &'static str,
    render: Box<dyn Fn() -> String + Send + Sync>,
}

/// The bundle served by one introspection endpoint: a registry, a trace
/// ring buffer, a health board, and the flight recorder.
pub struct Telemetry {
    /// Named metric families.
    pub registry: Registry,
    /// Recent trace span trees.
    pub tracer: Tracer,
    /// Connection health board.
    pub health: Health,
    /// The flight recorder: per-plane event rings and `.nfr` dumps.
    pub recorder: FlightRecorder,
    /// Commit-to-data-plane convergence lag tracking.
    pub convergence: ConvergenceTracker,
    /// Extra endpoint pages registered by components (e.g. `/dataflow`).
    pages: Mutex<BTreeMap<String, Page>>,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A fresh, empty bundle.
    pub fn new() -> Telemetry {
        let registry = Registry::new();
        let recorder = FlightRecorder::new(&registry);
        Telemetry {
            registry,
            tracer: Tracer::default(),
            health: Health::default(),
            recorder,
            convergence: ConvergenceTracker::default(),
            pages: Mutex::new(BTreeMap::new()),
        }
    }

    /// Start a trace's convergence clock: the management plane
    /// acknowledged the commit carrying `trace`.
    pub fn convergence_begin(&self, trace: u64) {
        self.convergence.begin(trace, self.recorder.now_ns());
    }

    /// A switch write carrying `trace` settled: record its convergence
    /// lag into `nerpa_convergence_lag_ns` (global, plus the shard's
    /// series when `shard` is known) and into the flight recorder, so
    /// `nerpa-flight show --trace` can report the lag from a dump.
    pub fn convergence_settled(&self, trace: u64, shard: Option<usize>) {
        let lag = self
            .convergence
            .settled(&self.registry, trace, shard, self.recorder.now_ns());
        if let Some(lag_ns) = lag {
            self.recorder.record(
                Plane::Data,
                "convergence.settled",
                trace,
                &[("lag_ns", lag_ns)],
            );
        }
    }

    /// Register (or replace) an extra page at `path` (must start with
    /// `/`). The callback runs on every request to that path.
    pub fn register_page(
        &self,
        path: &str,
        content_type: &'static str,
        render: impl Fn() -> String + Send + Sync + 'static,
    ) {
        assert!(path.starts_with('/'), "page path must start with '/'");
        self.pages.lock().unwrap().insert(
            path.to_string(),
            Page {
                content_type,
                render: Box::new(render),
            },
        );
    }

    /// Render the registered page at `path`, if any.
    pub fn render_page(&self, path: &str) -> Option<(&'static str, String)> {
        let pages = self.pages.lock().unwrap();
        let page = pages.get(path)?;
        Some((page.content_type, (page.render)()))
    }

    /// Paths of all registered extra pages, sorted.
    pub fn page_paths(&self) -> Vec<String> {
        self.pages.lock().unwrap().keys().cloned().collect()
    }
}

/// The process-wide telemetry bundle. Components register here by
/// default so one endpoint exposes the whole stack; tests that need
/// isolation construct their own [`Telemetry`].
pub fn global() -> &'static Arc<Telemetry> {
    static GLOBAL: OnceLock<Arc<Telemetry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Telemetry::new()))
}

/// Record one flight-recorder event into the process-wide recorder.
pub fn record_event(plane: Plane, kind: &'static str, trace: u64, fields: &[(&'static str, u64)]) {
    global().recorder.record(plane, kind, trace, fields);
}

/// Record one flight-recorder event with a free-form note (keep off
/// hot paths).
pub fn record_event_note(
    plane: Plane,
    kind: &'static str,
    trace: u64,
    fields: &[(&'static str, u64)],
    note: impl Into<String>,
) {
    global()
        .recorder
        .record_note(plane, kind, trace, fields, note);
}

/// Raise a failure signal on the process-wide recorder: records a
/// `failure.signal` event and, when a dump directory is armed, writes
/// an `.nfr` snapshot of every ring. Returns the dump path if written.
pub fn failure_signal(source: &'static str, note: &str) -> Option<std::path::PathBuf> {
    global().recorder.failure_signal(source, note)
}
