//! Causal trace spans: follow one configuration change across the
//! management, control, and data planes.
//!
//! A [`TraceId`] is minted when a management-plane transaction commits
//! (or a digest arrives) and threaded through monitor delivery, engine
//! apply, delta emission, and P4Runtime writes. Each change yields a
//! [`SpanTree`] — per-plane timings plus delta sizes — collected in a
//! bounded ring buffer served by the introspection endpoint.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::json_string;

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// Mint a process-unique trace id (never 0, so 0 can mean "untraced").
pub fn next_trace_id() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

/// A span attribute value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    /// An integer attribute (counts, sizes, ids).
    U64(u64),
    /// A text attribute.
    Text(String),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::Text(s) => write!(f, "{s}"),
        }
    }
}

/// One timed operation within a trace, possibly with children.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Operation name (`ovsdb.commit`, `ddlog.apply`, `p4.write`).
    pub name: String,
    /// Which plane did the work: `management`, `control`, `data`, or
    /// `stack` for the root.
    pub plane: &'static str,
    /// Start offset from the trace root, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Attributes (delta sizes, switch ids, sources).
    pub attrs: Vec<(String, AttrValue)>,
    /// Child spans.
    pub children: Vec<Span>,
}

impl Span {
    /// A zero-duration span; set timings and attributes with the
    /// builder methods.
    pub fn new(name: impl Into<String>, plane: &'static str) -> Span {
        Span {
            name: name.into(),
            plane,
            start_ns: 0,
            dur_ns: 0,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Set the start offset and duration.
    pub fn timed(mut self, start_ns: u64, dur_ns: u64) -> Span {
        self.start_ns = start_ns;
        self.dur_ns = dur_ns;
        self
    }

    /// Attach an integer attribute.
    pub fn attr_u64(mut self, key: &str, v: u64) -> Span {
        self.attrs.push((key.to_string(), AttrValue::U64(v)));
        self
    }

    /// Attach a text attribute.
    pub fn attr_text(mut self, key: &str, v: impl Into<String>) -> Span {
        self.attrs
            .push((key.to_string(), AttrValue::Text(v.into())));
        self
    }

    fn to_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"name\":{},\"plane\":{},\"start_ns\":{},\"dur_ns\":{},\"attrs\":{{",
            json_string(&self.name),
            json_string(self.plane),
            self.start_ns,
            self.dur_ns
        ));
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(k));
            out.push(':');
            match v {
                AttrValue::U64(n) => out.push_str(&n.to_string()),
                AttrValue::Text(s) => out.push_str(&json_string(s)),
            }
        }
        out.push_str("},\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.to_json(out);
        }
        out.push_str("]}");
    }
}

/// A complete trace: the id plus the root span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTree {
    /// The trace id threaded across the planes.
    pub trace: u64,
    /// The root span (its children are the per-plane stages).
    pub root: Span,
}

impl SpanTree {
    /// Total time attributed to `plane` across the whole tree, in
    /// nanoseconds.
    pub fn plane_duration_ns(&self, plane: &str) -> u64 {
        fn walk(s: &Span, plane: &str) -> u64 {
            let own = if s.plane == plane { s.dur_ns } else { 0 };
            own + s.children.iter().map(|c| walk(c, plane)).sum::<u64>()
        }
        walk(&self.root, plane)
    }

    /// Find the first span (depth-first) whose name matches.
    pub fn find_span(&self, name: &str) -> Option<&Span> {
        fn walk<'a>(s: &'a Span, name: &str) -> Option<&'a Span> {
            if s.name == name {
                return Some(s);
            }
            s.children.iter().find_map(|c| walk(c, name))
        }
        walk(&self.root, name)
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"trace\":{},\"root\":", self.trace);
        self.root.to_json(&mut out);
        out.push('}');
        out
    }

    /// Render as an indented human-readable tree (for failure reports).
    pub fn render_text(&self) -> String {
        fn walk(s: &Span, depth: usize, out: &mut String) {
            let attrs: Vec<String> = s.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!(
                "{}{} [{}] {:.3}ms {}\n",
                "  ".repeat(depth),
                s.name,
                s.plane,
                s.dur_ns as f64 / 1e6,
                attrs.join(" ")
            ));
            for c in &s.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = format!("trace {}:\n", self.trace);
        walk(&self.root, 1, &mut out);
        out
    }
}

/// A bounded ring buffer of recent traces.
pub struct Tracer {
    ring: Mutex<VecDeque<SpanTree>>,
    cap: usize,
    recorded: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new(256)
    }
}

impl Tracer {
    /// A tracer keeping the most recent `cap` traces.
    pub fn new(cap: usize) -> Tracer {
        Tracer {
            ring: Mutex::new(VecDeque::with_capacity(cap)),
            cap,
            recorded: AtomicU64::new(0),
        }
    }

    /// Record a finished trace, evicting the oldest if full.
    pub fn record(&self, tree: SpanTree) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(tree);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Total traces ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// The most recent trace.
    pub fn last(&self) -> Option<SpanTree> {
        self.ring.lock().unwrap().back().cloned()
    }

    /// Find a trace by id (most recent first).
    pub fn find(&self, trace: u64) -> Option<SpanTree> {
        self.ring
            .lock()
            .unwrap()
            .iter()
            .rev()
            .find(|t| t.trace == trace)
            .cloned()
    }

    /// All buffered traces, oldest first.
    pub fn snapshot(&self) -> Vec<SpanTree> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Render the buffered traces as a JSON array.
    pub fn render_json(&self) -> String {
        let ring = self.ring.lock().unwrap();
        let mut out = String::from("[");
        for (i, t) in ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_json());
        }
        out.push(']');
        out
    }
}
