//! Metric primitives and the named registry.
//!
//! The primitives are lock-free atomics cheap enough for hot paths: a
//! saturating [`Counter`], a [`Gauge`], and a fixed-bucket [`Histogram`]
//! whose memory is bounded no matter how long the process runs. The
//! [`Registry`] names them, groups label variants into families, and
//! renders two exposition formats: Prometheus-style text and JSON.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default latency bucket upper bounds, in microseconds, with an
/// implicit overflow bucket (`+Inf`) on top.
pub const LATENCY_BOUNDS_US: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
];

/// Default size bucket upper bounds (row counts, batch sizes).
pub const SIZE_BOUNDS: [u64; 10] = [1, 2, 5, 10, 20, 50, 100, 250, 1_000, 10_000];

// ----------------------------------------------------------- primitives

/// A monotonically-increasing counter. Additions saturate at `u64::MAX`
/// instead of wrapping, so a long-lived process can never report a
/// counter that went backwards.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add (possibly negative) `n`.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger; never lowers it. For
    /// high-water marks (peak queue depth) that overload assertions can
    /// read back after a flood.
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Inclusive bucket upper bounds; an implicit overflow bucket
    /// (`+Inf`) follows the last bound.
    bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) observation counts;
    /// `bounds.len() + 1` entries.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// First observation; `u64::MAX` = none yet.
    first: AtomicU64,
    last: AtomicU64,
}

/// A fixed-bucket histogram over `u64` observations (latencies in
/// microseconds, batch sizes, delta sizes). Bounded memory: the bucket
/// array never grows.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new(&LATENCY_BOUNDS_US)
    }
}

impl Histogram {
    /// A fresh, unregistered histogram with the given inclusive bucket
    /// upper bounds (must be sorted ascending).
    pub fn new(bounds: &[u64]) -> Histogram {
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            first: AtomicU64::new(u64::MAX),
            last: AtomicU64::new(0),
        }))
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        let h = &self.0;
        let idx = h
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(h.bounds.len());
        h.buckets[idx].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        let _ = h
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        h.max.fetch_max(v, Ordering::Relaxed);
        let _ = h
            .first
            .compare_exchange(u64::MAX, v, Ordering::Relaxed, Ordering::Relaxed);
        h.last.store(v, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Mean observation, if anything was recorded.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() as f64 / n as f64)
    }

    /// Largest observation.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.0.max.load(Ordering::Relaxed))
    }

    /// First observation.
    pub fn first(&self) -> Option<u64> {
        let v = self.0.first.load(Ordering::Relaxed);
        (v != u64::MAX).then_some(v)
    }

    /// Most recent observation.
    pub fn last(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.0.last.load(Ordering::Relaxed))
    }

    /// The inclusive bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.0.bounds
    }

    /// Per-bucket (non-cumulative) counts; index `i` covers
    /// `(bounds[i-1], bounds[i]]`, with a trailing overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Observations beyond the last bucket bound — the saturation
    /// count. A non-zero value means the bounds are too tight for the
    /// workload and the tail of the distribution is unresolved.
    pub fn overflow(&self) -> u64 {
        self.0.buckets[self.0.bounds.len()].load(Ordering::Relaxed)
    }
}

// ------------------------------------------------------------- registry

/// What kind of metric a family holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Fixed-bucket histogram.
    Histogram,
}

impl MetricKind {
    fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    help: String,
    kind: MetricKind,
    /// Label string (`""` or `{k="v",...}`) → series.
    series: BTreeMap<String, Series>,
}

/// A named collection of metric families, each with zero or more
/// labeled series. Registration is get-or-create: two call sites naming
/// the same series share the same underlying atomic.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// Format a label set the way the exposition format expects:
/// `{key="value",...}`, or `""` for no labels.
pub fn format_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={:?}", v)).collect();
    format!("{{{}}}", body.join(","))
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_create(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
        kind: MetricKind,
    ) -> Series {
        let mut fams = self.families.lock().unwrap();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            fam.kind == kind,
            "metric `{name}` registered as {} but requested as {}",
            fam.kind.as_str(),
            kind.as_str()
        );
        fam.series
            .entry(format_labels(labels))
            .or_insert_with(make)
            .clone()
    }

    /// Get or create an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Get or create a labeled counter series.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_create(
            name,
            help,
            labels,
            || Series::Counter(Counter::new()),
            MetricKind::Counter,
        ) {
            Series::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Get or create an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Get or create a labeled gauge series.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_create(
            name,
            help,
            labels,
            || Series::Gauge(Gauge::new()),
            MetricKind::Gauge,
        ) {
            Series::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Get or create an unlabeled histogram with the given bucket bounds.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        self.histogram_with(name, help, &[], bounds)
    }

    /// Get or create a labeled histogram series with the given bucket
    /// bounds (e.g. per-shard convergence lag).
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Histogram {
        match self.get_or_create(
            name,
            help,
            labels,
            || Series::Histogram(Histogram::new(bounds)),
            MetricKind::Histogram,
        ) {
            Series::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Register (or replace) `handle` as the series behind `name`. Used
    /// by components that keep per-instance handles — e.g. a controller
    /// registers its own counters so the endpoint always shows the live
    /// instance, while tests read the handle they own.
    pub fn publish_counter(&self, name: &str, help: &str, handle: &Counter) {
        self.publish(
            name,
            help,
            MetricKind::Counter,
            Series::Counter(handle.clone()),
        );
    }

    /// Register (or replace) a gauge handle (see [`Registry::publish_counter`]).
    pub fn publish_gauge(&self, name: &str, help: &str, handle: &Gauge) {
        self.publish(name, help, MetricKind::Gauge, Series::Gauge(handle.clone()));
    }

    /// Register (or replace) a histogram handle (see [`Registry::publish_counter`]).
    pub fn publish_histogram(&self, name: &str, help: &str, handle: &Histogram) {
        self.publish(
            name,
            help,
            MetricKind::Histogram,
            Series::Histogram(handle.clone()),
        );
    }

    fn publish(&self, name: &str, help: &str, kind: MetricKind, series: Series) {
        let mut fams = self.families.lock().unwrap();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            fam.kind == kind,
            "metric `{name}` registered as {} but published as {}",
            fam.kind.as_str(),
            kind.as_str()
        );
        fam.series.insert(String::new(), series);
    }

    /// Every registered series name (family name + label set), sorted.
    pub fn series_names(&self) -> Vec<String> {
        let fams = self.families.lock().unwrap();
        let mut out = Vec::new();
        for (name, fam) in fams.iter() {
            for labels in fam.series.keys() {
                out.push(format!("{name}{labels}"));
            }
        }
        out
    }

    /// Read a counter or gauge series by full name (family + labels);
    /// histograms report their observation count.
    pub fn value(&self, series_name: &str) -> Option<u64> {
        let fams = self.families.lock().unwrap();
        for (name, fam) in fams.iter() {
            for (labels, series) in fam.series.iter() {
                if format!("{name}{labels}") == series_name {
                    return Some(match series {
                        Series::Counter(c) => c.get(),
                        Series::Gauge(g) => g.get().max(0) as u64,
                        Series::Histogram(h) => h.count(),
                    });
                }
            }
        }
        None
    }

    /// Render the Prometheus-style text exposition format. Families and
    /// series are emitted in sorted order, so output is deterministic
    /// for a given registry state.
    pub fn render_text(&self) -> String {
        let fams = self.families.lock().unwrap();
        let mut out = String::new();
        for (name, fam) in fams.iter() {
            out.push_str(&format!("# HELP {name} {}\n", fam.help));
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind.as_str()));
            for (labels, series) in fam.series.iter() {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", g.get()));
                    }
                    Series::Histogram(h) => {
                        render_histogram_text(&mut out, name, labels, h);
                    }
                }
            }
            // A histogram's saturation is invisible in the bucket lines
            // (+Inf always equals the count), so each histogram family
            // gets a companion counter of out-of-range observations.
            if fam.kind == MetricKind::Histogram {
                out.push_str(&format!(
                    "# HELP {name}_overflow_total Observations of {name} beyond its last bucket bound\n"
                ));
                out.push_str(&format!("# TYPE {name}_overflow_total counter\n"));
                for (labels, series) in fam.series.iter() {
                    if let Series::Histogram(h) = series {
                        out.push_str(&format!("{name}_overflow_total{labels} {}\n", h.overflow()));
                    }
                }
            }
        }
        out
    }

    /// Render the whole registry as a JSON object (deterministic order).
    pub fn render_json(&self) -> String {
        let fams = self.families.lock().unwrap();
        let mut out = String::from("{");
        let mut first_fam = true;
        for (name, fam) in fams.iter() {
            for (labels, series) in fam.series.iter() {
                if !first_fam {
                    out.push(',');
                }
                first_fam = false;
                out.push_str(&json_string(&format!("{name}{labels}")));
                out.push(':');
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!("{{\"type\":\"counter\",\"value\":{}}}", c.get()))
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!("{{\"type\":\"gauge\",\"value\":{}}}", g.get()))
                    }
                    Series::Histogram(h) => {
                        out.push_str(&format!(
                            "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"overflow\":{},\"buckets\":[",
                            h.count(),
                            h.sum(),
                            h.overflow()
                        ));
                        let counts = h.bucket_counts();
                        let mut cumulative = 0u64;
                        for (i, c) in counts.iter().enumerate() {
                            cumulative += c;
                            if i > 0 {
                                out.push(',');
                            }
                            let le = h
                                .bounds()
                                .get(i)
                                .map(|b| b.to_string())
                                .unwrap_or_else(|| "\"+Inf\"".to_string());
                            out.push_str(&format!("[{le},{cumulative}]"));
                        }
                        out.push_str("]}");
                    }
                }
            }
        }
        out.push('}');
        out
    }
}

fn render_histogram_text(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    // Buckets are cumulative in the exposition format; `le` merges into
    // an existing label set.
    let merge_le = |le: &str| -> String {
        if labels.is_empty() {
            format!("{{le=\"{le}\"}}")
        } else {
            format!("{}{},le=\"{le}\"{}", "{", &labels[1..labels.len() - 1], "}")
        }
    };
    let counts = h.bucket_counts();
    let mut cumulative = 0u64;
    for (i, c) in counts.iter().enumerate() {
        cumulative += c;
        let le = h
            .bounds()
            .get(i)
            .map(|b| b.to_string())
            .unwrap_or_else(|| "+Inf".to_string());
        out.push_str(&format!("{name}_bucket{} {cumulative}\n", merge_le(&le)));
    }
    out.push_str(&format!("{name}_sum{labels} {}\n", h.sum()));
    out.push_str(&format!("{name}_count{labels} {}\n", h.count()));
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ----------------------------------------------------------- validation

/// Validate a Prometheus-style text exposition: every sample line must
/// be `name{labels} value`, every family must carry `# TYPE`, histogram
/// families must expose `_sum`, `_count`, and a `+Inf` bucket equal to
/// the count. Returns the first problem found.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    use std::collections::HashMap;
    let mut types: HashMap<String, String> = HashMap::new();
    // family -> (saw_sum, saw_count, count_value, inf_value)
    let mut hist: HashMap<String, (bool, bool, u64, Option<u64>)> = HashMap::new();

    let name_ok = |s: &str| {
        !s.is_empty()
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            && !s.starts_with(|c: char| c.is_ascii_digit())
    };

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(kind)) = (it.next(), it.next()) else {
                return Err(format!("line {}: malformed TYPE comment", lineno + 1));
            };
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {}: unknown metric type {kind:?}", lineno + 1));
            }
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // A sample line: name[{labels}] value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: bad value {value:?}", lineno + 1))?;
        let name = series.split('{').next().unwrap_or(series);
        if !name_ok(name) {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        if series.contains('{') && !series.ends_with('}') {
            return Err(format!("line {}: unterminated label set", lineno + 1));
        }
        // Find the family this sample belongs to.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                let fam = name.strip_suffix(suf)?;
                (types.get(fam).map(String::as_str) == Some("histogram")).then_some(fam)
            })
            .unwrap_or(name);
        if !types.contains_key(family) {
            return Err(format!(
                "line {}: series {name:?} has no preceding TYPE",
                lineno + 1
            ));
        }
        if types[family] == "histogram" {
            let entry = hist.entry(family.to_string()).or_default();
            if name.ends_with("_sum") {
                entry.0 = true;
            } else if name.ends_with("_count") {
                entry.1 = true;
                entry.2 = value as u64;
            } else if name.ends_with("_bucket") {
                if !series.contains("le=") {
                    return Err(format!("line {}: bucket without le label", lineno + 1));
                }
                if series.contains("le=\"+Inf\"") {
                    entry.3 = Some(value as u64);
                }
            } else {
                return Err(format!(
                    "line {}: histogram family {family:?} has bare sample {name:?}",
                    lineno + 1
                ));
            }
        }
    }
    for (fam, (saw_sum, saw_count, count, inf)) in hist {
        if !saw_sum || !saw_count {
            return Err(format!("histogram {fam:?} is missing _sum or _count"));
        }
        match inf {
            None => return Err(format!("histogram {fam:?} has no +Inf bucket")),
            Some(v) if v != count => {
                return Err(format!(
                    "histogram {fam:?}: +Inf bucket {v} != count {count}"
                ))
            }
            Some(_) => {}
        }
    }
    Ok(())
}
