//! Property test: table matching against a naive oracle implementing the
//! P4 match semantics directly.

use p4sim::ast::{LValue, MatchKind, TableDecl, TableKey};
use p4sim::runtime::{FieldMatch, TableEntry, Update, WriteOp};
use p4sim::table::RuntimeTable;
use proptest::prelude::*;

const WIDTH: u16 = 8;

fn decl(kind: MatchKind) -> TableDecl {
    TableDecl {
        name: "T".into(),
        keys: vec![TableKey {
            field: LValue::Name("k".into()),
            kind,
            name: "k".into(),
            width: WIDTH,
        }],
        actions: vec!["act".into()],
        default_action: Some(("miss".into(), vec![])),
        size: 64,
    }
}

/// Naive reference matcher: highest (priority, specificity) wins, ties
/// broken by the entry's debug representation (same as the runtime).
fn oracle(entries: &[TableEntry], key: u128) -> Option<TableEntry> {
    let specificity = |e: &TableEntry| match &e.matches[0] {
        FieldMatch::Exact { .. } => 128u32,
        FieldMatch::Lpm { prefix_len, .. } => *prefix_len as u32,
        FieldMatch::Ternary { mask, .. } => mask.count_ones(),
    };
    let matches = |e: &TableEntry| match &e.matches[0] {
        FieldMatch::Exact { value } => *value == key,
        FieldMatch::Lpm { value, prefix_len } => {
            if *prefix_len == 0 {
                true
            } else {
                let mask = ((1u128 << WIDTH) - 1) & !((1u128 << (WIDTH - prefix_len)) - 1);
                key & mask == value & mask
            }
        }
        FieldMatch::Ternary { value, mask } => key & mask == *value,
    };
    entries
        .iter()
        .filter(|e| matches(e))
        .max_by(|a, b| {
            (a.priority, specificity(a))
                .cmp(&(b.priority, specificity(b)))
                .then_with(|| format!("{b:?}").cmp(&format!("{a:?}")))
        })
        .cloned()
}

fn entry(m: FieldMatch, priority: i32, tag: u128) -> TableEntry {
    TableEntry {
        table: "T".into(),
        matches: vec![m],
        priority,
        action: "act".into(),
        params: vec![tag],
    }
}

proptest! {
    #[test]
    fn lpm_matches_oracle(
        prefixes in proptest::collection::vec((0u128..256, 0u16..=WIDTH), 0..12),
        keys in proptest::collection::vec(0u128..256, 1..20),
    ) {
        let mut t = RuntimeTable::new(decl(MatchKind::Lpm));
        let mut installed: Vec<TableEntry> = Vec::new();
        for (v, plen) in prefixes {
            let mask = if plen == 0 { 0 } else {
                ((1u128 << WIDTH) - 1) & !((1u128 << (WIDTH - plen)) - 1)
            };
            let e = entry(FieldMatch::Lpm { value: v & mask, prefix_len: plen }, 0, v);
            if t.apply(&Update { op: WriteOp::Insert, entry: e.clone() }).is_ok() {
                installed.push(e);
            }
        }
        for k in keys {
            let got = t.lookup_with_widths(&[k]);
            let want = oracle(&installed, k);
            match (got, want) {
                (Some((a, p)), Some(e)) if a == "act" => {
                    prop_assert_eq!(p, e.params);
                }
                (Some((a, _)), None) => prop_assert_eq!(a, "miss"),
                (got, want) => prop_assert!(false, "got {:?} want {:?}", got, want),
            }
        }
    }

    #[test]
    fn ternary_matches_oracle(
        specs in proptest::collection::vec((0u128..256, 0u128..256, 0i32..4), 0..12),
        keys in proptest::collection::vec(0u128..256, 1..20),
    ) {
        let mut t = RuntimeTable::new(decl(MatchKind::Ternary));
        let mut installed: Vec<TableEntry> = Vec::new();
        for (i, (v, m, prio)) in specs.into_iter().enumerate() {
            let e = entry(
                FieldMatch::Ternary { value: v & m, mask: m },
                // Distinct priorities make the winner unambiguous.
                prio * 100 + i as i32,
                v,
            );
            if t.apply(&Update { op: WriteOp::Insert, entry: e.clone() }).is_ok() {
                installed.push(e);
            }
        }
        for k in keys {
            let got = t.lookup_with_widths(&[k]);
            let want = oracle(&installed, k);
            match (got, want) {
                (Some((a, p)), Some(e)) if a == "act" => prop_assert_eq!(p, e.params),
                (Some((a, _)), None) => prop_assert_eq!(a, "miss"),
                (got, want) => prop_assert!(false, "got {:?} want {:?}", got, want),
            }
        }
    }

    #[test]
    fn exact_insert_delete_consistency(
        ops in proptest::collection::vec((0u8..2, 0u128..32), 1..40),
        keys in proptest::collection::vec(0u128..32, 1..10),
    ) {
        let mut t = RuntimeTable::new(decl(MatchKind::Exact));
        let mut live: std::collections::BTreeSet<u128> = Default::default();
        for (kind, v) in ops {
            let e = entry(FieldMatch::Exact { value: v }, 0, v);
            if kind == 0 {
                if t.apply(&Update { op: WriteOp::Insert, entry: e }).is_ok() {
                    live.insert(v);
                }
            } else if t.apply(&Update { op: WriteOp::Delete, entry: e }).is_ok() {
                live.remove(&v);
            }
        }
        prop_assert_eq!(t.len(), live.len());
        for k in keys {
            let got = t.lookup_with_widths(&[k]).unwrap();
            if live.contains(&k) {
                prop_assert_eq!(got, ("act".to_string(), vec![k]));
            } else {
                prop_assert_eq!(got.0, "miss");
            }
        }
    }
}
