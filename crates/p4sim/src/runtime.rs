//! P4Runtime-style control messages: table entries, write requests,
//! digests, and packet-in/out. These are the wire objects the Nerpa
//! controller exchanges with switches.

use serde_json::{FromJson, ToJson, Value as Json};

/// JSON codec helpers shared by the wire types in this crate. `u128`
/// values travel as decimal strings — JSON numbers cannot carry 128-bit
/// values portably.
pub(crate) mod codec {
    use serde_json::{Error, Map, Result, Value as Json};

    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        let mut m = Map::new();
        for (k, v) in pairs {
            m.insert(k.to_string(), v);
        }
        Json::Object(m)
    }

    /// Encode a `u128` as a decimal string.
    pub fn u128_to_json(v: u128) -> Json {
        Json::String(v.to_string())
    }

    /// Required-field lookup.
    pub fn get<'a>(v: &'a Json, key: &str) -> Result<&'a Json> {
        v.get(key)
            .ok_or_else(|| Error::msg(format!("missing field `{key}`")))
    }

    /// Required string field.
    pub fn get_str(v: &Json, key: &str) -> Result<String> {
        get(v, key)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg(format!("field `{key}` is not a string")))
    }

    /// Required `u64` field.
    pub fn get_u64(v: &Json, key: &str) -> Result<u64> {
        get(v, key)?
            .as_u64()
            .ok_or_else(|| Error::msg(format!("field `{key}` is not an unsigned integer")))
    }

    /// Required array field.
    pub fn get_array<'a>(v: &'a Json, key: &str) -> Result<&'a Vec<Json>> {
        get(v, key)?
            .as_array()
            .ok_or_else(|| Error::msg(format!("field `{key}` is not an array")))
    }

    /// Decode a decimal-string-encoded `u128`.
    pub fn u128_from_json(v: &Json) -> Result<u128> {
        v.as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::msg("expected a decimal u128 string"))
    }

    /// Required decimal-`u128`-string field.
    pub fn get_u128(v: &Json, key: &str) -> Result<u128> {
        u128_from_json(get(v, key)?)
    }

    /// The `"type"`/`"kind"` style tag of a tagged-enum object.
    pub fn tag<'a>(v: &'a Json, key: &str) -> Result<&'a str> {
        get(v, key)?
            .as_str()
            .ok_or_else(|| Error::msg(format!("enum tag `{key}` is not a string")))
    }

    /// Decode each array element with `f`.
    pub fn decode_vec<T>(v: &Json, key: &str, f: impl Fn(&Json) -> Result<T>) -> Result<Vec<T>> {
        get_array(v, key)?.iter().map(f).collect()
    }

    /// Map builder used by tagged enums: `{"type": tag, ...fields}`.
    pub fn tagged(
        tag_key: &str,
        tag: &str,
        pairs: impl IntoIterator<Item = (&'static str, Json)>,
    ) -> Json {
        let mut m = Map::new();
        m.insert(tag_key.to_string(), Json::String(tag.to_string()));
        for (k, v) in pairs {
            m.insert(k.to_string(), v);
        }
        Json::Object(m)
    }
}

use codec::*;

/// A single key-field match of a table entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FieldMatch {
    /// Exact value.
    Exact {
        /// Matched value.
        value: u128,
    },
    /// Longest-prefix match.
    Lpm {
        /// Value (host order, already masked).
        value: u128,
        /// Prefix length in bits.
        prefix_len: u16,
    },
    /// Ternary value/mask.
    Ternary {
        /// Value (already masked by `mask`).
        value: u128,
        /// Care mask.
        mask: u128,
    },
}

/// A runtime table entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableEntry {
    /// Table name.
    pub table: String,
    /// One match per key field, in key order.
    pub matches: Vec<FieldMatch>,
    /// Priority (higher wins); required for ternary tables.
    pub priority: i32,
    /// Action name.
    pub action: String,
    /// Action parameters, in declaration order.
    pub params: Vec<u128>,
}

/// Write-request operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOp {
    /// Insert a new entry (error if the key exists).
    Insert,
    /// Replace an existing entry's action (error if missing).
    Modify,
    /// Remove an entry (error if missing).
    Delete,
}

/// One update of a write request.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// The operation.
    pub op: WriteOp,
    /// The entry.
    pub entry: TableEntry,
}

/// A digest message from the data plane to the controller.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Digest {
    /// The digest struct type name.
    pub name: String,
    /// Field values: (field name, value).
    pub fields: Vec<(String, u128)>,
}

impl Digest {
    /// Field lookup.
    pub fn field(&self, name: &str) -> Option<u128> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// Client → switch control messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlRequest {
    /// Apply table updates atomically (all or nothing).
    Write {
        /// The updates.
        updates: Vec<Update>,
        /// Causal trace id minted at the management-plane commit that
        /// produced these updates; `None` for untraced writes.
        trace: Option<u64>,
    },
    /// Fetch the P4Info program description.
    GetP4Info,
    /// Read back all entries of a table.
    ReadTable {
        /// Table name.
        table: String,
    },
    /// Read back the entries of every table — the one-round-trip state
    /// snapshot the controller uses to reconcile a restarted switch.
    ReadAllTables,
    /// Subscribe this connection to digest notifications.
    SubscribeDigests,
    /// Inject a packet into a port (packet-out).
    PacketOut {
        /// Ingress port to inject at.
        port: u16,
        /// Raw frame bytes.
        bytes: Vec<u8>,
    },
    /// Read switch counters.
    ReadCounters,
    /// Configure a multicast group (empty ports = remove).
    SetMcastGroup {
        /// Group id (as set in `standard_metadata.mcast_grp`).
        group: u16,
        /// Replication port list.
        ports: Vec<u16>,
    },
}

/// Switch → client control messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlResponse {
    /// Write outcome.
    WriteResult {
        /// `None` = success, `Some(msg)` = rejected (nothing applied).
        error: Option<String>,
    },
    /// The program description.
    P4Info {
        /// JSON-encoded [`crate::p4info::P4Info`].
        info: crate::p4info::P4Info,
    },
    /// Table contents.
    TableEntries {
        /// The entries.
        entries: Vec<TableEntry>,
    },
    /// Full table-state snapshot: every table with its entries, sorted
    /// by table name.
    AllTables {
        /// (table name, entries) for every table in the program.
        tables: Vec<(String, Vec<TableEntry>)>,
    },
    /// Digest notification (streamed to subscribers).
    DigestList {
        /// The digests since the previous notification.
        digests: Vec<Digest>,
    },
    /// Counter snapshot.
    Counters {
        /// (counter name, value).
        counters: Vec<(String, u64)>,
    },
    /// Generic acknowledgement.
    Ok,
    /// Request failed.
    Error {
        /// Description.
        message: String,
    },
}

// ----------------------------------------------------- JSON wire codec

impl ToJson for FieldMatch {
    fn to_json_value(&self) -> Json {
        match self {
            FieldMatch::Exact { value } => {
                tagged("kind", "exact", [("value", u128_to_json(*value))])
            }
            FieldMatch::Lpm { value, prefix_len } => tagged(
                "kind",
                "lpm",
                [
                    ("value", u128_to_json(*value)),
                    ("prefix_len", Json::from(*prefix_len)),
                ],
            ),
            FieldMatch::Ternary { value, mask } => tagged(
                "kind",
                "ternary",
                [
                    ("value", u128_to_json(*value)),
                    ("mask", u128_to_json(*mask)),
                ],
            ),
        }
    }
}

impl FromJson for FieldMatch {
    fn from_json_value(v: &Json) -> serde_json::Result<FieldMatch> {
        match tag(v, "kind")? {
            "exact" => Ok(FieldMatch::Exact {
                value: get_u128(v, "value")?,
            }),
            "lpm" => Ok(FieldMatch::Lpm {
                value: get_u128(v, "value")?,
                prefix_len: get_u64(v, "prefix_len")? as u16,
            }),
            "ternary" => Ok(FieldMatch::Ternary {
                value: get_u128(v, "value")?,
                mask: get_u128(v, "mask")?,
            }),
            other => Err(serde_json::Error::msg(format!(
                "unknown FieldMatch kind `{other}`"
            ))),
        }
    }
}

impl ToJson for TableEntry {
    fn to_json_value(&self) -> Json {
        obj([
            ("table", Json::from(&self.table)),
            (
                "matches",
                Json::Array(self.matches.iter().map(ToJson::to_json_value).collect()),
            ),
            ("priority", Json::from(self.priority)),
            ("action", Json::from(&self.action)),
            (
                "params",
                Json::Array(self.params.iter().map(|p| u128_to_json(*p)).collect()),
            ),
        ])
    }
}

impl FromJson for TableEntry {
    fn from_json_value(v: &Json) -> serde_json::Result<TableEntry> {
        Ok(TableEntry {
            table: get_str(v, "table")?,
            matches: decode_vec(v, "matches", FieldMatch::from_json_value)?,
            priority: get(v, "priority")?
                .as_i64()
                .ok_or_else(|| serde_json::Error::msg("priority is not an integer"))?
                as i32,
            action: get_str(v, "action")?,
            params: decode_vec(v, "params", u128_from_json)?,
        })
    }
}

impl WriteOp {
    fn wire_name(self) -> &'static str {
        match self {
            WriteOp::Insert => "insert",
            WriteOp::Modify => "modify",
            WriteOp::Delete => "delete",
        }
    }
}

impl ToJson for WriteOp {
    fn to_json_value(&self) -> Json {
        Json::String(self.wire_name().to_string())
    }
}

impl FromJson for WriteOp {
    fn from_json_value(v: &Json) -> serde_json::Result<WriteOp> {
        match v.as_str() {
            Some("insert") => Ok(WriteOp::Insert),
            Some("modify") => Ok(WriteOp::Modify),
            Some("delete") => Ok(WriteOp::Delete),
            _ => Err(serde_json::Error::msg("unknown WriteOp")),
        }
    }
}

impl ToJson for Update {
    fn to_json_value(&self) -> Json {
        obj([
            ("op", self.op.to_json_value()),
            ("entry", self.entry.to_json_value()),
        ])
    }
}

impl FromJson for Update {
    fn from_json_value(v: &Json) -> serde_json::Result<Update> {
        Ok(Update {
            op: WriteOp::from_json_value(get(v, "op")?)?,
            entry: TableEntry::from_json_value(get(v, "entry")?)?,
        })
    }
}

impl ToJson for Digest {
    fn to_json_value(&self) -> Json {
        obj([
            ("name", Json::from(&self.name)),
            (
                "fields",
                Json::Array(
                    self.fields
                        .iter()
                        .map(|(n, x)| Json::Array(vec![Json::from(n), u128_to_json(*x)]))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for Digest {
    fn from_json_value(v: &Json) -> serde_json::Result<Digest> {
        Ok(Digest {
            name: get_str(v, "name")?,
            fields: decode_vec(v, "fields", |pair| {
                let a = pair
                    .as_array()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| serde_json::Error::msg("digest field is not a pair"))?;
                let n = a[0]
                    .as_str()
                    .ok_or_else(|| serde_json::Error::msg("digest field name"))?;
                Ok((n.to_string(), u128_from_json(&a[1])?))
            })?,
        })
    }
}

impl ToJson for ControlRequest {
    fn to_json_value(&self) -> Json {
        match self {
            ControlRequest::Write { updates, trace } => tagged(
                "type",
                "write",
                [
                    (
                        "updates",
                        Json::Array(updates.iter().map(ToJson::to_json_value).collect()),
                    ),
                    ("trace", trace.map(Json::from).unwrap_or(Json::Null)),
                ],
            ),
            ControlRequest::GetP4Info => tagged("type", "get_p4_info", []),
            ControlRequest::ReadTable { table } => {
                tagged("type", "read_table", [("table", Json::from(table))])
            }
            ControlRequest::ReadAllTables => tagged("type", "read_all_tables", []),
            ControlRequest::SubscribeDigests => tagged("type", "subscribe_digests", []),
            ControlRequest::PacketOut { port, bytes } => tagged(
                "type",
                "packet_out",
                [("port", Json::from(*port)), ("bytes", Json::from(bytes))],
            ),
            ControlRequest::ReadCounters => tagged("type", "read_counters", []),
            ControlRequest::SetMcastGroup { group, ports } => tagged(
                "type",
                "set_mcast_group",
                [("group", Json::from(*group)), ("ports", Json::from(ports))],
            ),
        }
    }
}

impl FromJson for ControlRequest {
    fn from_json_value(v: &Json) -> serde_json::Result<ControlRequest> {
        Ok(match tag(v, "type")? {
            "write" => ControlRequest::Write {
                updates: decode_vec(v, "updates", Update::from_json_value)?,
                trace: match v.get("trace") {
                    None | Some(Json::Null) => None,
                    Some(j) => Some(
                        j.as_u64()
                            .ok_or_else(|| serde_json::Error::msg("trace is not an integer"))?,
                    ),
                },
            },
            "get_p4_info" => ControlRequest::GetP4Info,
            "read_table" => ControlRequest::ReadTable {
                table: get_str(v, "table")?,
            },
            "read_all_tables" => ControlRequest::ReadAllTables,
            "subscribe_digests" => ControlRequest::SubscribeDigests,
            "packet_out" => ControlRequest::PacketOut {
                port: get_u64(v, "port")? as u16,
                bytes: decode_vec(v, "bytes", |b| {
                    b.as_u64()
                        .map(|x| x as u8)
                        .ok_or_else(|| serde_json::Error::msg("byte"))
                })?,
            },
            "read_counters" => ControlRequest::ReadCounters,
            "set_mcast_group" => ControlRequest::SetMcastGroup {
                group: get_u64(v, "group")? as u16,
                ports: decode_vec(v, "ports", |p| {
                    p.as_u64()
                        .map(|x| x as u16)
                        .ok_or_else(|| serde_json::Error::msg("port"))
                })?,
            },
            other => {
                return Err(serde_json::Error::msg(format!(
                    "unknown ControlRequest type `{other}`"
                )))
            }
        })
    }
}

impl ToJson for ControlResponse {
    fn to_json_value(&self) -> Json {
        match self {
            ControlResponse::WriteResult { error } => tagged(
                "type",
                "write_result",
                [("error", Json::from(error.as_deref()))],
            ),
            ControlResponse::P4Info { info } => {
                tagged("type", "p4_info", [("info", info.to_json_value())])
            }
            ControlResponse::TableEntries { entries } => tagged(
                "type",
                "table_entries",
                [(
                    "entries",
                    Json::Array(entries.iter().map(ToJson::to_json_value).collect()),
                )],
            ),
            ControlResponse::AllTables { tables } => tagged(
                "type",
                "all_tables",
                [(
                    "tables",
                    Json::Array(
                        tables
                            .iter()
                            .map(|(name, entries)| {
                                Json::Array(vec![
                                    Json::from(name),
                                    Json::Array(
                                        entries.iter().map(ToJson::to_json_value).collect(),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                )],
            ),
            ControlResponse::DigestList { digests } => tagged(
                "type",
                "digest_list",
                [(
                    "digests",
                    Json::Array(digests.iter().map(ToJson::to_json_value).collect()),
                )],
            ),
            ControlResponse::Counters { counters } => tagged(
                "type",
                "counters",
                [(
                    "counters",
                    Json::Array(
                        counters
                            .iter()
                            .map(|(n, c)| Json::Array(vec![Json::from(n), Json::from(*c)]))
                            .collect(),
                    ),
                )],
            ),
            ControlResponse::Ok => tagged("type", "ok", []),
            ControlResponse::Error { message } => {
                tagged("type", "error", [("message", Json::from(message))])
            }
        }
    }
}

impl FromJson for ControlResponse {
    fn from_json_value(v: &Json) -> serde_json::Result<ControlResponse> {
        Ok(match tag(v, "type")? {
            "write_result" => ControlResponse::WriteResult {
                error: match get(v, "error")? {
                    Json::Null => None,
                    s => Some(
                        s.as_str()
                            .ok_or_else(|| serde_json::Error::msg("error message"))?
                            .to_string(),
                    ),
                },
            },
            "p4_info" => ControlResponse::P4Info {
                info: crate::p4info::P4Info::from_json_value(get(v, "info")?)?,
            },
            "table_entries" => ControlResponse::TableEntries {
                entries: decode_vec(v, "entries", TableEntry::from_json_value)?,
            },
            "all_tables" => ControlResponse::AllTables {
                tables: decode_vec(v, "tables", |pair| {
                    let a = pair
                        .as_array()
                        .filter(|a| a.len() == 2)
                        .ok_or_else(|| serde_json::Error::msg("table pair"))?;
                    let name = a[0]
                        .as_str()
                        .ok_or_else(|| serde_json::Error::msg("table name"))?;
                    let entries = a[1]
                        .as_array()
                        .ok_or_else(|| serde_json::Error::msg("table entries"))?
                        .iter()
                        .map(TableEntry::from_json_value)
                        .collect::<serde_json::Result<Vec<_>>>()?;
                    Ok((name.to_string(), entries))
                })?,
            },
            "digest_list" => ControlResponse::DigestList {
                digests: decode_vec(v, "digests", Digest::from_json_value)?,
            },
            "counters" => ControlResponse::Counters {
                counters: decode_vec(v, "counters", |pair| {
                    let a = pair
                        .as_array()
                        .filter(|a| a.len() == 2)
                        .ok_or_else(|| serde_json::Error::msg("counter pair"))?;
                    let n = a[0]
                        .as_str()
                        .ok_or_else(|| serde_json::Error::msg("counter name"))?;
                    let c = a[1]
                        .as_u64()
                        .ok_or_else(|| serde_json::Error::msg("counter value"))?;
                    Ok((n.to_string(), c))
                })?,
            },
            "ok" => ControlResponse::Ok,
            "error" => ControlResponse::Error {
                message: get_str(v, "message")?,
            },
            other => {
                return Err(serde_json::Error::msg(format!(
                    "unknown ControlResponse type `{other}`"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_roundtrip() {
        let req = ControlRequest::Write {
            updates: vec![Update {
                op: WriteOp::Insert,
                entry: TableEntry {
                    table: "InVlan".into(),
                    matches: vec![
                        FieldMatch::Exact { value: 3 },
                        FieldMatch::Ternary {
                            value: 0x10,
                            mask: 0xf0,
                        },
                        FieldMatch::Lpm {
                            value: 0x0a000000,
                            prefix_len: 8,
                        },
                    ],
                    priority: 10,
                    action: "set_vlan".into(),
                    params: vec![100],
                },
            }],
            trace: Some(77),
        };
        let s = serde_json::to_string(&req).unwrap();
        let back: ControlRequest = serde_json::from_str(&s).unwrap();
        assert_eq!(req, back);

        let resp = ControlResponse::DigestList {
            digests: vec![Digest {
                name: "mac_learn_digest_t".into(),
                fields: vec![("port".into(), 2), ("mac".into(), 0xaabb)],
            }],
        };
        let s = serde_json::to_string(&resp).unwrap();
        let back: ControlResponse = serde_json::from_str(&s).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn digest_field_lookup() {
        let d = Digest {
            name: "d".into(),
            fields: vec![("a".into(), 1), ("b".into(), 2)],
        };
        assert_eq!(d.field("b"), Some(2));
        assert_eq!(d.field("c"), None);
    }
}
