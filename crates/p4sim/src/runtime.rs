//! P4Runtime-style control messages: table entries, write requests,
//! digests, and packet-in/out. These are the wire objects the Nerpa
//! controller exchanges with switches.

use serde::{Deserialize, Serialize};

/// Serde helpers encoding `u128` as a decimal string on the wire —
/// JSON numbers cannot carry 128-bit values portably.
pub mod u128_str {
    use serde::{Deserialize, Deserializer, Serializer};

    /// Serialize as a decimal string.
    pub fn serialize<S: Serializer>(v: &u128, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&v.to_string())
    }

    /// Deserialize from a decimal string.
    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<u128, D::Error> {
        let s = String::deserialize(d)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

/// Serde helpers for `Vec<u128>` as decimal strings.
pub mod u128_vec_str {
    use serde::{Deserialize, Deserializer, Serializer};

    /// Serialize as a list of decimal strings.
    pub fn serialize<S: Serializer>(v: &[u128], s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(v.iter().map(|x| x.to_string()))
    }

    /// Deserialize from a list of decimal strings.
    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<u128>, D::Error> {
        let v: Vec<String> = Vec::deserialize(d)?;
        v.into_iter()
            .map(|s| s.parse().map_err(serde::de::Error::custom))
            .collect()
    }
}

/// Serde helpers for `Vec<(String, u128)>` (digest fields).
pub mod u128_pairs_str {
    use serde::{Deserialize, Deserializer, Serializer};

    /// Serialize as `[[name, "value"], ...]`.
    pub fn serialize<S: Serializer>(v: &[(String, u128)], s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(v.iter().map(|(n, x)| (n.clone(), x.to_string())))
    }

    /// Deserialize the paired form.
    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<(String, u128)>, D::Error> {
        let v: Vec<(String, String)> = Vec::deserialize(d)?;
        v.into_iter()
            .map(|(n, s)| Ok((n, s.parse().map_err(serde::de::Error::custom)?)))
            .collect()
    }
}

/// A single key-field match of a table entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FieldMatch {
    /// Exact value.
    Exact {
        /// Matched value.
        #[serde(with = "u128_str")]
        value: u128,
    },
    /// Longest-prefix match.
    Lpm {
        /// Value (host order, already masked).
        #[serde(with = "u128_str")]
        value: u128,
        /// Prefix length in bits.
        prefix_len: u16,
    },
    /// Ternary value/mask.
    Ternary {
        /// Value (already masked by `mask`).
        #[serde(with = "u128_str")]
        value: u128,
        /// Care mask.
        #[serde(with = "u128_str")]
        mask: u128,
    },
}

/// A runtime table entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableEntry {
    /// Table name.
    pub table: String,
    /// One match per key field, in key order.
    pub matches: Vec<FieldMatch>,
    /// Priority (higher wins); required for ternary tables.
    pub priority: i32,
    /// Action name.
    pub action: String,
    /// Action parameters, in declaration order.
    #[serde(with = "u128_vec_str")]
    pub params: Vec<u128>,
}

/// Write-request operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum WriteOp {
    /// Insert a new entry (error if the key exists).
    Insert,
    /// Replace an existing entry's action (error if missing).
    Modify,
    /// Remove an entry (error if missing).
    Delete,
}

/// One update of a write request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Update {
    /// The operation.
    pub op: WriteOp,
    /// The entry.
    pub entry: TableEntry,
}

/// A digest message from the data plane to the controller.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Digest {
    /// The digest struct type name.
    pub name: String,
    /// Field values: (field name, value).
    #[serde(with = "u128_pairs_str")]
    pub fields: Vec<(String, u128)>,
}

impl Digest {
    /// Field lookup.
    pub fn field(&self, name: &str) -> Option<u128> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// Client → switch control messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ControlRequest {
    /// Apply table updates atomically (all or nothing).
    Write {
        /// The updates.
        updates: Vec<Update>,
    },
    /// Fetch the P4Info program description.
    GetP4Info,
    /// Read back all entries of a table.
    ReadTable {
        /// Table name.
        table: String,
    },
    /// Read back the entries of every table — the one-round-trip state
    /// snapshot the controller uses to reconcile a restarted switch.
    ReadAllTables,
    /// Subscribe this connection to digest notifications.
    SubscribeDigests,
    /// Inject a packet into a port (packet-out).
    PacketOut {
        /// Ingress port to inject at.
        port: u16,
        /// Raw frame bytes.
        bytes: Vec<u8>,
    },
    /// Read switch counters.
    ReadCounters,
    /// Configure a multicast group (empty ports = remove).
    SetMcastGroup {
        /// Group id (as set in `standard_metadata.mcast_grp`).
        group: u16,
        /// Replication port list.
        ports: Vec<u16>,
    },
}

/// Switch → client control messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ControlResponse {
    /// Write outcome.
    WriteResult {
        /// `None` = success, `Some(msg)` = rejected (nothing applied).
        error: Option<String>,
    },
    /// The program description.
    P4Info {
        /// JSON-encoded [`crate::p4info::P4Info`].
        info: crate::p4info::P4Info,
    },
    /// Table contents.
    TableEntries {
        /// The entries.
        entries: Vec<TableEntry>,
    },
    /// Full table-state snapshot: every table with its entries, sorted
    /// by table name.
    AllTables {
        /// (table name, entries) for every table in the program.
        tables: Vec<(String, Vec<TableEntry>)>,
    },
    /// Digest notification (streamed to subscribers).
    DigestList {
        /// The digests since the previous notification.
        digests: Vec<Digest>,
    },
    /// Counter snapshot.
    Counters {
        /// (counter name, value).
        counters: Vec<(String, u64)>,
    },
    /// Generic acknowledgement.
    Ok,
    /// Request failed.
    Error {
        /// Description.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_roundtrip() {
        let req = ControlRequest::Write {
            updates: vec![Update {
                op: WriteOp::Insert,
                entry: TableEntry {
                    table: "InVlan".into(),
                    matches: vec![
                        FieldMatch::Exact { value: 3 },
                        FieldMatch::Ternary {
                            value: 0x10,
                            mask: 0xf0,
                        },
                        FieldMatch::Lpm {
                            value: 0x0a000000,
                            prefix_len: 8,
                        },
                    ],
                    priority: 10,
                    action: "set_vlan".into(),
                    params: vec![100],
                },
            }],
        };
        let s = serde_json::to_string(&req).unwrap();
        let back: ControlRequest = serde_json::from_str(&s).unwrap();
        assert_eq!(req, back);

        let resp = ControlResponse::DigestList {
            digests: vec![Digest {
                name: "mac_learn_digest_t".into(),
                fields: vec![("port".into(), 2), ("mac".into(), 0xaabb)],
            }],
        };
        let s = serde_json::to_string(&resp).unwrap();
        let back: ControlResponse = serde_json::from_str(&s).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn digest_field_lookup() {
        let d = Digest {
            name: "d".into(),
            fields: vec![("a".into(), 1), ("b".into(), 2)],
        };
        assert_eq!(d.field("b"), Some(2));
        assert_eq!(d.field("c"), None);
    }
}
