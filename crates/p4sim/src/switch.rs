//! The behavioral switch (BMv2-style): parse → ingress → traffic manager
//! (unicast / multicast / clone) → egress → deparse.

use std::collections::{BTreeMap, HashMap};

use crate::ast::*;
use crate::packet::ParsedPacket;
use crate::parser::{lvalue_width, P4Error};
use crate::runtime::{Digest, TableEntry, Update};
use crate::table::RuntimeTable;

/// The result of processing one packet.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProcessResult {
    /// Output frames: (egress port, bytes). Includes multicast copies and
    /// clones.
    pub outputs: Vec<(u16, Vec<u8>)>,
    /// Digests emitted during processing.
    pub digests: Vec<Digest>,
    /// True when the packet was dropped (no unicast output).
    pub dropped: bool,
}

/// Per-switch counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwitchStats {
    /// Packets received per port.
    pub rx_packets: BTreeMap<u16, u64>,
    /// Packets transmitted per port.
    pub tx_packets: BTreeMap<u16, u64>,
    /// Packets dropped.
    pub drops: u64,
    /// Parser rejects.
    pub parse_errors: u64,
    /// Digests emitted.
    pub digests: u64,
}

/// A software switch executing a compiled P4 program.
pub struct Switch {
    /// The program.
    pub program: Program,
    /// Runtime tables by name.
    tables: HashMap<String, RuntimeTable>,
    /// Multicast groups: group id → replication port list.
    pub mcast_groups: HashMap<u16, Vec<u16>>,
    /// Counters.
    pub stats: SwitchStats,
}

/// Standard metadata during execution.
#[derive(Debug, Clone, Default)]
struct StdMeta {
    ingress_port: u128,
    egress_spec: u128,
    egress_port: u128,
    mcast_grp: u128,
    instance_type: u128,
    packet_length: u128,
    drop: bool,
    clones: Vec<u16>,
    exited: bool,
}

/// A mutable execution context for one packet.
struct Ctx<'a> {
    prog: &'a Program,
    pkt: ParsedPacket,
    meta: HashMap<String, u128>,
    std: StdMeta,
    /// Action-parameter bindings while executing an action body.
    locals: HashMap<String, u128>,
    digests: Vec<Digest>,
}

impl Switch {
    /// Instantiate a switch from a program.
    pub fn new(program: Program) -> Switch {
        let mut tables = HashMap::new();
        for (_, t) in program.all_tables() {
            tables.insert(t.name.clone(), RuntimeTable::new(t.clone()));
        }
        Switch {
            program,
            tables,
            mcast_groups: HashMap::new(),
            stats: SwitchStats::default(),
        }
    }

    /// Compile source text and instantiate.
    pub fn from_source(src: &str) -> Result<Switch, P4Error> {
        Ok(Switch::new(crate::parser::parse_p4(src)?))
    }

    /// Apply a batch of table updates atomically: on any failure, the
    /// already-applied prefix is rolled back via an undo log and nothing
    /// is left behind.
    pub fn write(&mut self, updates: &[Update]) -> Result<(), String> {
        let mut undo: Vec<Update> = Vec::with_capacity(updates.len());
        for u in updates {
            let table = match self.tables.get_mut(&u.entry.table) {
                Some(t) => t,
                None => {
                    self.rollback(undo);
                    return Err(format!("no table `{}`", u.entry.table));
                }
            };
            let reverse_op = match u.op {
                crate::runtime::WriteOp::Insert => Update {
                    op: crate::runtime::WriteOp::Delete,
                    entry: u.entry.clone(),
                },
                crate::runtime::WriteOp::Delete => Update {
                    op: crate::runtime::WriteOp::Insert,
                    entry: u.entry.clone(),
                },
                crate::runtime::WriteOp::Modify => match table.get_same_key(&u.entry) {
                    Some(old) => Update {
                        op: crate::runtime::WriteOp::Modify,
                        entry: old.clone(),
                    },
                    None => {
                        self.rollback(undo);
                        return Err(format!("no such entry in `{}`", u.entry.table));
                    }
                },
            };
            match table.apply(u) {
                Ok(()) => undo.push(reverse_op),
                Err(e) => {
                    self.rollback(undo);
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    fn rollback(&mut self, undo: Vec<Update>) {
        for u in undo.into_iter().rev() {
            let table = self.tables.get_mut(&u.entry.table).expect("undo table");
            table.apply(&u).expect("undo must succeed");
        }
    }

    /// Read the entries of a table.
    pub fn read_table(&self, name: &str) -> Option<&[TableEntry]> {
        self.tables.get(name).map(|t| t.entries())
    }

    /// The names of all runtime tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Snapshot of every table's entries, sorted by table name — the
    /// read-back surface used to reconcile a restarted switch against
    /// the controller's desired state.
    pub fn read_all_tables(&self) -> Vec<(String, Vec<TableEntry>)> {
        let mut out: Vec<(String, Vec<TableEntry>)> = self
            .tables
            .iter()
            .map(|(name, t)| (name.clone(), t.entries().to_vec()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Total entries across all tables.
    pub fn total_entries(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// Configure a multicast group.
    pub fn set_mcast_group(&mut self, group: u16, ports: Vec<u16>) {
        if ports.is_empty() {
            self.mcast_groups.remove(&group);
        } else {
            self.mcast_groups.insert(group, ports);
        }
    }

    /// Process one packet arriving on `port`.
    pub fn process_packet(&mut self, port: u16, raw: &[u8]) -> ProcessResult {
        *self.stats.rx_packets.entry(port).or_insert(0) += 1;
        let mut result = ProcessResult::default();

        let Some(pkt) = ParsedPacket::parse(&self.program, raw) else {
            self.stats.parse_errors += 1;
            self.stats.drops += 1;
            result.dropped = true;
            return result;
        };

        // Metadata starts zeroed.
        let mut meta = HashMap::new();
        if let Some(ms) = self.program.meta_struct() {
            for f in &ms.fields {
                meta.insert(f.name.clone(), 0u128);
            }
        }
        let mut ctx = Ctx {
            prog: &self.program,
            pkt,
            meta,
            std: StdMeta {
                ingress_port: port as u128,
                packet_length: raw.len() as u128,
                ..Default::default()
            },
            locals: HashMap::new(),
            digests: Vec::new(),
        };

        // Ingress.
        let ingress = self.program.ingress.clone();
        run_block(&ingress.apply, &ingress, &mut ctx, &mut self.tables);

        // Traffic manager: decide the copy set.
        let mut copies: Vec<u16> = Vec::new();
        if !ctx.std.drop {
            if ctx.std.mcast_grp != 0 {
                if let Some(ports) = self.mcast_groups.get(&(ctx.std.mcast_grp as u16)) {
                    for p in ports {
                        // Standard multicast pruning: no copy to the
                        // ingress port.
                        if *p != port {
                            copies.push(*p);
                        }
                    }
                }
            } else {
                copies.push(ctx.std.egress_spec as u16);
            }
        }
        let clones = std::mem::take(&mut ctx.std.clones);

        // Egress per copy.
        let egress = self.program.egress.clone();
        for out_port in copies {
            let mut ectx = Ctx {
                prog: &self.program,
                pkt: ctx.pkt.clone(),
                meta: ctx.meta.clone(),
                std: StdMeta {
                    egress_port: out_port as u128,
                    ..clone_std(&ctx.std)
                },
                locals: HashMap::new(),
                digests: Vec::new(),
            };
            run_block(&egress.apply, &egress, &mut ectx, &mut self.tables);
            ctx.digests.append(&mut ectx.digests);
            if !ectx.std.drop {
                let bytes = ectx.pkt.deparse(&self.program);
                *self.stats.tx_packets.entry(out_port).or_insert(0) += 1;
                result.outputs.push((out_port, bytes));
            }
        }
        // Clones bypass egress tables (simplified mirroring).
        for cport in clones {
            let bytes = ctx.pkt.deparse(&self.program);
            *self.stats.tx_packets.entry(cport).or_insert(0) += 1;
            result.outputs.push((cport, bytes));
        }

        result.digests = std::mem::take(&mut ctx.digests);
        self.stats.digests += result.digests.len() as u64;
        if result.outputs.is_empty() {
            self.stats.drops += 1;
            result.dropped = true;
        }
        result
    }
}

fn clone_std(std: &StdMeta) -> StdMeta {
    StdMeta {
        ingress_port: std.ingress_port,
        egress_spec: std.egress_spec,
        egress_port: std.egress_port,
        mcast_grp: std.mcast_grp,
        instance_type: std.instance_type,
        packet_length: std.packet_length,
        drop: false,
        clones: Vec::new(),
        exited: false,
    }
}

fn run_block(
    stmts: &[Stmt],
    control: &ControlDecl,
    ctx: &mut Ctx<'_>,
    tables: &mut HashMap<String, RuntimeTable>,
) {
    for s in stmts {
        if ctx.std.exited {
            return;
        }
        match s {
            Stmt::Assign(lv, e) => {
                let v = eval(e, ctx);
                write_lvalue(lv, v, ctx);
            }
            Stmt::ApplyTable(name) => {
                let key: Vec<u128> = {
                    let t = tables.get(name).expect("validated table");
                    t.decl
                        .keys
                        .iter()
                        .map(|k| read_lvalue(&k.field, ctx))
                        .collect()
                };
                let hit = tables
                    .get_mut(name)
                    .expect("validated table")
                    .lookup_with_widths(&key);
                if let Some((action, params)) = hit {
                    if action != "NoAction" {
                        call_action(&action, &params, control, ctx, tables);
                    }
                }
            }
            Stmt::CallAction(name, args) => {
                let params: Vec<u128> = args.iter().map(|a| eval(a, ctx)).collect();
                call_action(name, &params, control, ctx, tables);
            }
            Stmt::Drop => ctx.std.drop = true,
            Stmt::Clone(e) => {
                let p = eval(e, ctx) as u16;
                ctx.std.clones.push(p);
            }
            Stmt::Digest {
                struct_name,
                fields,
            } => {
                let vals: Vec<(String, u128)> = fields
                    .iter()
                    .map(|(f, e)| (f.clone(), eval(e, ctx)))
                    .collect();
                ctx.digests.push(Digest {
                    name: struct_name.clone(),
                    fields: vals,
                });
            }
            Stmt::SetValid { member, valid } => {
                if let Some(inst) = ctx.pkt.headers.get_mut(member) {
                    inst.valid = *valid;
                    if !valid {
                        for f in inst.fields.iter_mut() {
                            *f = 0;
                        }
                    }
                }
            }
            Stmt::If(cond, then, els) => {
                if eval(cond, ctx) != 0 {
                    run_block(then, control, ctx, tables);
                } else {
                    run_block(els, control, ctx, tables);
                }
            }
            Stmt::Exit => ctx.std.exited = true,
        }
    }
}

fn call_action(
    name: &str,
    params: &[u128],
    control: &ControlDecl,
    ctx: &mut Ctx<'_>,
    tables: &mut HashMap<String, RuntimeTable>,
) {
    let Some(action) = control.actions.iter().find(|a| a.name == name) else {
        return; // validated earlier; NoAction lands here harmlessly
    };
    let saved = std::mem::take(&mut ctx.locals);
    for (p, v) in action.params.iter().zip(params) {
        ctx.locals.insert(p.name.clone(), crate::mask(*v, p.width));
    }
    run_block(&action.body, control, ctx, tables);
    ctx.locals = saved;
    // `exit` inside an action stops the action, not the control.
    ctx.std.exited = false;
}

fn read_lvalue(lv: &LValue, ctx: &Ctx<'_>) -> u128 {
    match lv {
        LValue::Field {
            root,
            member,
            field,
        } => match root.as_str() {
            "hdr" => ctx.pkt.get_field(ctx.prog, member, field).unwrap_or(0),
            "meta" => ctx.meta.get(field).copied().unwrap_or(0),
            "std" => match field.as_str() {
                "ingress_port" => ctx.std.ingress_port,
                "egress_spec" => ctx.std.egress_spec,
                "egress_port" => ctx.std.egress_port,
                "mcast_grp" => ctx.std.mcast_grp,
                "instance_type" => ctx.std.instance_type,
                "packet_length" => ctx.std.packet_length,
                _ => 0,
            },
            _ => 0,
        },
        LValue::Name(n) => ctx.locals.get(n).copied().unwrap_or(0),
    }
}

fn write_lvalue(lv: &LValue, value: u128, ctx: &mut Ctx<'_>) {
    match lv {
        LValue::Field {
            root,
            member,
            field,
        } => match root.as_str() {
            "hdr" => ctx.pkt.set_field(ctx.prog, member, field, value),
            "meta" => {
                let width = lvalue_width(ctx.prog, lv).unwrap_or(128);
                ctx.meta.insert(field.clone(), crate::mask(value, width));
            }
            "std" => {
                let masked = |w: u16| crate::mask(value, w);
                match field.as_str() {
                    "egress_spec" => ctx.std.egress_spec = masked(16),
                    "egress_port" => ctx.std.egress_port = masked(16),
                    "mcast_grp" => ctx.std.mcast_grp = masked(16),
                    _ => {}
                }
            }
            _ => {}
        },
        LValue::Name(_) => {}
    }
}

fn eval(e: &Expr, ctx: &Ctx<'_>) -> u128 {
    match e {
        Expr::Lit(v) => *v,
        Expr::Ref(lv) => read_lvalue(lv, ctx),
        Expr::Cast(w, inner) => crate::mask(eval(inner, ctx), *w),
        Expr::IsValid { member, .. } => ctx
            .pkt
            .headers
            .get(member)
            .map(|h| h.valid as u128)
            .unwrap_or(0),
        Expr::Unary(op, inner) => {
            let v = eval(inner, ctx);
            match op {
                UnOp::Not => (v == 0) as u128,
                UnOp::BitNot => !v,
                UnOp::Neg => v.wrapping_neg(),
            }
        }
        Expr::Binary(op, a, b) => {
            let x = eval(a, ctx);
            match op {
                BinOp::And => {
                    if x == 0 {
                        return 0;
                    }
                    (eval(b, ctx) != 0) as u128
                }
                BinOp::Or => {
                    if x != 0 {
                        return 1;
                    }
                    (eval(b, ctx) != 0) as u128
                }
                _ => {
                    let y = eval(b, ctx);
                    match op {
                        BinOp::Add => x.wrapping_add(y),
                        BinOp::Sub => x.wrapping_sub(y),
                        BinOp::Mul => x.wrapping_mul(y),
                        BinOp::BitAnd => x & y,
                        BinOp::BitOr => x | y,
                        BinOp::BitXor => x ^ y,
                        BinOp::Shl => x.checked_shl(y.min(128) as u32).unwrap_or(0),
                        BinOp::Shr => x.checked_shr(y.min(128) as u32).unwrap_or(0),
                        BinOp::Eq => (x == y) as u128,
                        BinOp::Ne => (x != y) as u128,
                        BinOp::Lt => (x < y) as u128,
                        BinOp::Le => (x <= y) as u128,
                        BinOp::Gt => (x > y) as u128,
                        BinOp::Ge => (x >= y) as u128,
                        BinOp::And | BinOp::Or => unreachable!(),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::DEMO;
    use crate::runtime::{FieldMatch, WriteOp};

    fn eth_frame(dst: u128, src: u128, etype: u16, payload: &[u8]) -> Vec<u8> {
        let mut f = Vec::new();
        for i in (0..6).rev() {
            f.push(((dst >> (8 * i)) & 0xff) as u8);
        }
        for i in (0..6).rev() {
            f.push(((src >> (8 * i)) & 0xff) as u8);
        }
        f.extend_from_slice(&etype.to_be_bytes());
        f.extend_from_slice(payload);
        f
    }

    fn insert(
        sw: &mut Switch,
        table: &str,
        matches: Vec<FieldMatch>,
        action: &str,
        params: Vec<u128>,
    ) {
        sw.write(&[Update {
            op: WriteOp::Insert,
            entry: TableEntry {
                table: table.into(),
                matches,
                priority: 0,
                action: action.into(),
                params,
            },
        }])
        .unwrap();
    }

    #[test]
    fn default_action_drops_unknown_port() {
        let mut sw = Switch::from_source(DEMO).unwrap();
        let r = sw.process_packet(1, &eth_frame(2, 1, 0x0800, b"x"));
        assert!(r.dropped);
        assert_eq!(sw.stats.drops, 1);
    }

    #[test]
    fn unicast_forwarding_via_learned_mac() {
        let mut sw = Switch::from_source(DEMO).unwrap();
        // Port 1 is an access port on VLAN 10.
        insert(
            &mut sw,
            "InVlan",
            vec![FieldMatch::Exact { value: 1 }],
            "set_vlan",
            vec![10],
        );
        // MAC 0xBB on VLAN 10 lives behind port 7.
        insert(
            &mut sw,
            "MacLearned",
            vec![
                FieldMatch::Exact { value: 10 },
                FieldMatch::Exact { value: 0xBB },
            ],
            "output",
            vec![7],
        );
        let r = sw.process_packet(1, &eth_frame(0xBB, 0xAA, 0x0800, b"hello"));
        assert!(!r.dropped);
        assert_eq!(r.outputs.len(), 1);
        assert_eq!(r.outputs[0].0, 7);
        // A digest describing the source MAC must have been emitted.
        assert_eq!(r.digests.len(), 1);
        assert_eq!(r.digests[0].field("mac"), Some(0xAA));
        assert_eq!(r.digests[0].field("port"), Some(1));
        assert_eq!(r.digests[0].field("vlan"), Some(10));
    }

    #[test]
    fn multicast_flood_prunes_ingress() {
        let mut sw = Switch::from_source(DEMO).unwrap();
        insert(
            &mut sw,
            "InVlan",
            vec![FieldMatch::Exact { value: 1 }],
            "set_vlan",
            vec![10],
        );
        // Unknown destination → flood() sets mcast_grp = vlan id.
        sw.set_mcast_group(10, vec![1, 2, 3]);
        let r = sw.process_packet(1, &eth_frame(0xFF, 0xAA, 0x0800, b"bcast"));
        let mut ports: Vec<u16> = r.outputs.iter().map(|(p, _)| *p).collect();
        ports.sort_unstable();
        assert_eq!(ports, vec![2, 3], "ingress port must be pruned");
    }

    #[test]
    fn vlan_tagged_packet_overrides_port_vlan() {
        let mut sw = Switch::from_source(DEMO).unwrap();
        insert(
            &mut sw,
            "InVlan",
            vec![FieldMatch::Exact { value: 1 }],
            "set_vlan",
            vec![10],
        );
        insert(
            &mut sw,
            "MacLearned",
            vec![
                FieldMatch::Exact { value: 0x64 },
                FieldMatch::Exact { value: 0xBB },
            ],
            "output",
            vec![4],
        );
        // Tagged frame on VLAN 0x64.
        let mut raw = eth_frame(0xBB, 0xAA, 0x8100, &[]);
        raw.extend_from_slice(&[0x00, 0x64]); // pcp/dei/vid = 0x064
        raw.extend_from_slice(&0x0800u16.to_be_bytes());
        raw.extend_from_slice(b"pay");
        // Fix: eth_frame already wrote ethertype; rebuild frame manually.
        let mut raw = Vec::new();
        raw.extend_from_slice(&[0, 0, 0, 0, 0, 0xBB]);
        raw.extend_from_slice(&[0, 0, 0, 0, 0, 0xAA]);
        raw.extend_from_slice(&0x8100u16.to_be_bytes());
        raw.extend_from_slice(&[0x00, 0x64]);
        raw.extend_from_slice(&0x0800u16.to_be_bytes());
        raw.extend_from_slice(b"pay");
        let r = sw.process_packet(1, &raw);
        assert_eq!(r.outputs.len(), 1);
        assert_eq!(r.outputs[0].0, 4);
        assert_eq!(r.digests[0].field("vlan"), Some(0x64));
    }

    #[test]
    fn atomic_write_batches() {
        let mut sw = Switch::from_source(DEMO).unwrap();
        // Second update is invalid (bad action); the first must not stick.
        let updates = vec![
            Update {
                op: WriteOp::Insert,
                entry: TableEntry {
                    table: "InVlan".into(),
                    matches: vec![FieldMatch::Exact { value: 1 }],
                    priority: 0,
                    action: "set_vlan".into(),
                    params: vec![10],
                },
            },
            Update {
                op: WriteOp::Insert,
                entry: TableEntry {
                    table: "InVlan".into(),
                    matches: vec![FieldMatch::Exact { value: 2 }],
                    priority: 0,
                    action: "not_an_action".into(),
                    params: vec![],
                },
            },
        ];
        assert!(sw.write(&updates).is_err());
        assert_eq!(sw.total_entries(), 0);
    }

    #[test]
    fn counters_track_activity() {
        let mut sw = Switch::from_source(DEMO).unwrap();
        insert(
            &mut sw,
            "InVlan",
            vec![FieldMatch::Exact { value: 1 }],
            "set_vlan",
            vec![10],
        );
        sw.set_mcast_group(10, vec![2]);
        sw.process_packet(1, &eth_frame(0xFF, 0xAA, 0x0800, b"x"));
        assert_eq!(sw.stats.rx_packets[&1], 1);
        assert_eq!(sw.stats.tx_packets[&2], 1);
        assert_eq!(sw.stats.digests, 1);
    }
}

#[cfg(test)]
mod exit_tests {
    use super::*;

    /// `exit` in the apply block stops the control immediately; `exit`
    /// inside an action only ends the action.
    #[test]
    fn exit_semantics() {
        let src = r#"
            header h_t { bit<8> v; }
            struct headers_t { h h_t; }
            struct meta_t { bit<8> x; }
            parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
                     inout standard_metadata_t std) {
                state start { pkt.extract(hdr.h); transition accept; }
            }
            control I(inout headers_t hdr, inout meta_t meta,
                      inout standard_metadata_t std) {
                action send(bit<16> port) { std.egress_spec = port; exit; }
                apply {
                    send(2);
                    if (hdr.h.v == 1) {
                        exit;
                    }
                    std.egress_spec = 3;
                }
            }
            control E(inout headers_t hdr, inout meta_t meta,
                      inout standard_metadata_t std) { apply { } }
            V1Switch(P(), I(), E()) main;
        "#;
        // NOTE: headers-struct members are written `type name;` in P4;
        // the subset's parser stores them as name:type pairs, so `h h_t`
        // above declares member `h_t` of type `h`... fix by using the
        // conventional order:
        let src = src.replace("struct headers_t { h h_t; }", "struct headers_t { h_t h; }");
        let mut sw = Switch::from_source(&src).unwrap();
        // v == 1: the apply block exits right after the action; egress
        // stays 2.
        let r = sw.process_packet(9, &[1]);
        assert_eq!(r.outputs[0].0, 2);
        // v != 1: execution continues past the if; egress becomes 3.
        let r = sw.process_packet(9, &[0]);
        assert_eq!(r.outputs[0].0, 3);
    }

    /// Packets rejected by a parser `reject` transition are dropped and
    /// counted.
    #[test]
    fn parser_reject_counted() {
        let src = r#"
            header h_t { bit<8> v; }
            struct headers_t { h_t h; }
            struct meta_t { bit<8> x; }
            parser P(packet_in pkt, out headers_t hdr, inout meta_t meta,
                     inout standard_metadata_t std) {
                state start {
                    pkt.extract(hdr.h);
                    transition select(hdr.h.v) {
                        1: accept;
                        default: reject;
                    }
                }
            }
            control I(inout headers_t hdr, inout meta_t meta,
                      inout standard_metadata_t std) {
                apply { std.egress_spec = 1; }
            }
            control E(inout headers_t hdr, inout meta_t meta,
                      inout standard_metadata_t std) { apply { } }
            V1Switch(P(), I(), E()) main;
        "#;
        let mut sw = Switch::from_source(src).unwrap();
        assert!(!sw.process_packet(5, &[1]).dropped);
        assert!(sw.process_packet(5, &[2]).dropped);
        assert_eq!(sw.stats.parse_errors, 1);
    }
}
