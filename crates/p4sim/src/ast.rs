//! Abstract syntax for the supported P4-16 subset.
//!
//! The subset covers what the paper's snvs data plane and typical L2/L3
//! pipelines need, targeting a V1Model-style architecture:
//!
//! * `header` and `struct` types with `bit<N>` fields (N ≤ 128);
//! * a parser with `extract` and `select` transitions;
//! * ingress/egress controls with actions, match-action tables
//!   (exact/lpm/ternary keys), `if/else`, direct action calls, and the
//!   primitives `mark_to_drop()`, `clone(port)`, `digest(Struct {..})`,
//!   `setValid()`/`setInvalid()`;
//! * a `V1Switch(Parser(), Ingress(), Egress()) main;` instantiation.
//!
//! Deparsing is synthesized: valid headers are emitted in the order they
//! appear in the headers struct, followed by the unparsed payload.

use std::collections::BTreeMap;

/// A `bit<N>` width.
pub type Width = u16;

/// A named field with a width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Bit width (1..=128).
    pub width: Width,
}

/// A `header` or plain `struct` type declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDecl {
    /// Type name (e.g. `ethernet_t`).
    pub name: String,
    /// True for `header` (parseable, has validity), false for `struct`.
    pub is_header: bool,
    /// Ordered fields.
    pub fields: Vec<Field>,
}

impl StructDecl {
    /// Total width in bits.
    pub fn total_width(&self) -> u32 {
        self.fields.iter().map(|f| f.width as u32).sum()
    }

    /// Find a field and its bit offset from the start of the struct.
    pub fn field_offset(&self, name: &str) -> Option<(u32, Width)> {
        let mut off = 0u32;
        for f in &self.fields {
            if f.name == name {
                return Some((off, f.width));
            }
            off += f.width as u32;
        }
        None
    }
}

/// A reference to a value location: `hdr.eth.dst`, `meta.vlan`,
/// `standard_metadata.ingress_port`, or an action parameter / local name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LValue {
    /// `<root>.<member>.<field>` — header or struct field access.
    Field {
        /// Top-level parameter: `hdr`, `meta`, or `standard_metadata`.
        root: String,
        /// Member within the root struct (empty for standard metadata
        /// fields, e.g. `standard_metadata.ingress_port`).
        member: String,
        /// Field name.
        field: String,
    },
    /// A bare identifier: action parameter or enum-like constant.
    Name(String),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Unsigned literal (masked to context width at evaluation).
    Lit(u128),
    /// Value reference.
    Ref(LValue),
    /// `(bit<N>) e`
    Cast(Width, Box<Expr>),
    /// `hdr.x.isValid()`
    IsValid {
        /// Root (always `hdr`).
        root: String,
        /// The header member.
        member: String,
    },
    /// Unary operators `!`, `~`, `-`.
    Unary(UnOp, Box<Expr>),
    /// Binary operators.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Boolean not.
    Not,
    /// Bitwise complement.
    BitNot,
    /// Arithmetic negation.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Statements inside actions and apply blocks.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `lvalue = expr;`
    Assign(LValue, Expr),
    /// `Table.apply();`
    ApplyTable(String),
    /// `action_name(args);` — direct action invocation.
    CallAction(String, Vec<Expr>),
    /// `mark_to_drop();`
    Drop,
    /// `clone(port_expr);` — mirror the packet to a port at end of
    /// ingress.
    Clone(Expr),
    /// `digest(StructName { field = expr, ... });`
    Digest {
        /// The digest struct type.
        struct_name: String,
        /// Field assignments.
        fields: Vec<(String, Expr)>,
    },
    /// `hdr.x.setValid();` / `hdr.x.setInvalid();`
    SetValid {
        /// The header member of `hdr`.
        member: String,
        /// true = setValid.
        valid: bool,
    },
    /// `if (cond) { .. } else { .. }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `exit;` — stop this control.
    Exit,
}

/// An action declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionDecl {
    /// Action name.
    pub name: String,
    /// Runtime parameters (action data).
    pub params: Vec<Field>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// Match kinds for table keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// Exact match.
    Exact,
    /// Longest-prefix match.
    Lpm,
    /// Ternary (value/mask) match, needs priorities.
    Ternary,
}

impl MatchKind {
    /// Name as written in P4.
    pub fn name(&self) -> &'static str {
        match self {
            MatchKind::Exact => "exact",
            MatchKind::Lpm => "lpm",
            MatchKind::Ternary => "ternary",
        }
    }
}

/// One key component of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableKey {
    /// The matched expression (restricted to a field reference).
    pub field: LValue,
    /// Its match kind.
    pub kind: MatchKind,
    /// Display name (the P4 source text of the field).
    pub name: String,
    /// Bit width, resolved during validation.
    pub width: Width,
}

/// A match-action table declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDecl {
    /// Table name.
    pub name: String,
    /// Key components (empty = default-action-only table).
    pub keys: Vec<TableKey>,
    /// Permitted action names.
    pub actions: Vec<String>,
    /// Default action and its literal arguments.
    pub default_action: Option<(String, Vec<u128>)>,
    /// Declared size hint.
    pub size: usize,
}

/// A control block (ingress or egress).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ControlDecl {
    /// Control name.
    pub name: String,
    /// Actions declared inside.
    pub actions: Vec<ActionDecl>,
    /// Tables declared inside.
    pub tables: Vec<TableDecl>,
    /// The apply block.
    pub apply: Vec<Stmt>,
}

/// One parser state.
#[derive(Debug, Clone, PartialEq)]
pub struct ParserState {
    /// State name.
    pub name: String,
    /// Headers to extract, in order (`hdr.<member>`).
    pub extracts: Vec<String>,
    /// The transition.
    pub transition: Transition,
}

/// A parser transition.
#[derive(Debug, Clone, PartialEq)]
pub enum Transition {
    /// Unconditional jump to a state (or `accept`/`reject`).
    Direct(String),
    /// `select(expr) { value: state; ... default: state; }`
    Select {
        /// The selected expression.
        on: Expr,
        /// (value, state) arms.
        arms: Vec<(u128, String)>,
        /// The default state.
        default: String,
    },
}

/// The parser declaration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParserDecl {
    /// Parser name.
    pub name: String,
    /// States by name.
    pub states: Vec<ParserState>,
}

/// A complete program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// All `header`/`struct` declarations by name.
    pub types: BTreeMap<String, StructDecl>,
    /// The headers struct type name (first parameter of the parser).
    pub headers_type: String,
    /// The user metadata struct type name.
    pub meta_type: String,
    /// Headers-struct members: member name → header type name, in
    /// declaration order (this order defines deparsing).
    pub headers_members: Vec<(String, String)>,
    /// The parser.
    pub parser: ParserDecl,
    /// Ingress control.
    pub ingress: ControlDecl,
    /// Egress control.
    pub egress: ControlDecl,
    /// Digest struct names actually used by `digest()` statements.
    pub digests: Vec<String>,
}

impl Program {
    /// The type declaration of a header member of the headers struct.
    pub fn header_member_type(&self, member: &str) -> Option<&StructDecl> {
        let tname = self
            .headers_members
            .iter()
            .find(|(m, _)| m == member)
            .map(|(_, t)| t)?;
        self.types.get(tname)
    }

    /// The metadata struct declaration.
    pub fn meta_struct(&self) -> Option<&StructDecl> {
        self.types.get(&self.meta_type)
    }

    /// Find an action in a control.
    pub fn find_action<'a>(&self, control: &'a ControlDecl, name: &str) -> Option<&'a ActionDecl> {
        control.actions.iter().find(|a| a.name == name)
    }

    /// Find a table in either control, with its owning control.
    pub fn find_table(&self, name: &str) -> Option<(&ControlDecl, &TableDecl)> {
        for c in [&self.ingress, &self.egress] {
            if let Some(t) = c.tables.iter().find(|t| t.name == name) {
                return Some((c, t));
            }
        }
        None
    }

    /// All tables across both controls.
    pub fn all_tables(&self) -> impl Iterator<Item = (&ControlDecl, &TableDecl)> {
        self.ingress
            .tables
            .iter()
            .map(move |t| (&self.ingress, t))
            .chain(self.egress.tables.iter().map(move |t| (&self.egress, t)))
    }
}
