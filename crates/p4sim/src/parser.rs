//! Parser for the P4-16 subset described in [`crate::ast`].

use std::collections::BTreeMap;

use crate::ast::*;

/// A parse or validation error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct P4Error {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for P4Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P4 error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for P4Error {}

type PResult<T> = Result<T, P4Error>;

// ---------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(u128),
    Sym(&'static str),
    Eof,
}

struct Lexer {
    toks: Vec<(Tok, u32)>,
    i: usize,
}

const SYMBOLS2: &[&str] = &["==", "!=", "<=", ">=", "<<", ">>", "&&", "||"];
const SYMBOLS1: &[&str] = &[
    "{", "}", "(", ")", "<", ">", ";", ":", ",", "=", ".", "!", "~", "&", "|", "^", "+", "-", "*",
    "/",
];

fn lex(src: &str) -> PResult<Vec<(Tok, u32)>> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1u32;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '/' {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
            i += 2;
            while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                if chars[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 2).min(chars.len());
            continue;
        }
        // Annotations like @name("...") are skipped to the end of the
        // parenthesized group (or the identifier).
        if c == '@' {
            i += 1;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            if i < chars.len() && chars[i] == '(' {
                let mut depth = 0;
                while i < chars.len() {
                    if chars[i] == '(' {
                        depth += 1;
                    }
                    if chars[i] == ')' {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push((Tok::Ident(chars[start..i].iter().collect()), line));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut radix = 10;
            if c == '0' && i + 1 < chars.len() && (chars[i + 1] == 'x' || chars[i + 1] == 'b') {
                radix = if chars[i + 1] == 'x' { 16 } else { 2 };
                i += 2;
            }
            let dstart = if radix == 10 { start } else { i };
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let text: String = chars[dstart..i].iter().filter(|c| **c != '_').collect();
            // Width-prefixed literals like `9w1` or `48w0xff`: the `w`
            // splits width and value; the width is discarded (context
            // masks values anyway).
            let value = if let Some(wpos) = text.find('w') {
                let (_, rest) = text.split_at(wpos);
                let rest = &rest[1..];
                let (r2, digits) = if let Some(h) = rest.strip_prefix("0x") {
                    (16, h)
                } else if let Some(b) = rest.strip_prefix("0b") {
                    (2, b)
                } else {
                    (10, rest)
                };
                u128::from_str_radix(digits, r2)
            } else {
                u128::from_str_radix(&text, radix)
            };
            match value {
                Ok(v) => toks.push((Tok::Int(v), line)),
                Err(_) => {
                    return Err(P4Error {
                        line,
                        msg: format!("bad integer literal `{text}`"),
                    })
                }
            }
            continue;
        }
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        if let Some(s) = SYMBOLS2.iter().find(|s| **s == two) {
            toks.push((Tok::Sym(s), line));
            i += 2;
            continue;
        }
        let one: String = chars[i..i + 1].iter().collect();
        if let Some(s) = SYMBOLS1.iter().find(|s| **s == one) {
            toks.push((Tok::Sym(s), line));
            i += 1;
            continue;
        }
        return Err(P4Error {
            line,
            msg: format!("unexpected character `{c}`"),
        });
    }
    toks.push((Tok::Eof, line));
    Ok(toks)
}

// ---------------------------------------------------------------- parser

/// Parse and validate a P4 program.
pub fn parse_p4(src: &str) -> PResult<Program> {
    let toks = lex(src)?;
    let mut p = Parser {
        lx: Lexer { toks, i: 0 },
        prog: Program::default(),
        roles: BTreeMap::new(),
    };
    p.program()?;
    validate(&mut p.prog)?;
    Ok(p.prog)
}

struct Parser {
    lx: Lexer,
    prog: Program,
    /// parameter name → canonical role ("hdr"/"meta"/"std"/"pkt") for the
    /// declaration currently being parsed.
    roles: BTreeMap<String, String>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.lx.toks[self.lx.i].0
    }
    fn line(&self) -> u32 {
        self.lx.toks[self.lx.i].1
    }
    fn bump(&mut self) -> Tok {
        let t = self.lx.toks[self.lx.i].0.clone();
        if self.lx.i + 1 < self.lx.toks.len() {
            self.lx.i += 1;
        }
        t
    }
    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(P4Error {
            line: self.line(),
            msg: msg.into(),
        })
    }
    fn expect_sym(&mut self, s: &str) -> PResult<()> {
        match self.peek() {
            Tok::Sym(x) if *x == s => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{s}`, found {other:?}")),
        }
    }
    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Tok::Sym(x) if *x == s) {
            self.bump();
            return true;
        }
        false
    }
    fn ident(&mut self) -> PResult<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }
    fn peek_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Tok::Ident(x) if x == s)
    }
    fn eat_ident(&mut self, s: &str) -> bool {
        if self.peek_ident(s) {
            self.bump();
            return true;
        }
        false
    }
    fn int(&mut self) -> PResult<u128> {
        match self.bump() {
            Tok::Int(v) => Ok(v),
            other => self.err(format!("expected integer, found {other:?}")),
        }
    }

    fn bit_width(&mut self) -> PResult<Width> {
        // `bit < N >`
        if !self.eat_ident("bit") {
            return self.err("expected `bit<N>`");
        }
        self.expect_sym("<")?;
        let n = self.int()?;
        if !(1..=128).contains(&n) {
            return self.err("bit width must be 1..=128");
        }
        self.expect_sym(">")?;
        Ok(n as Width)
    }

    fn program(&mut self) -> PResult<()> {
        let mut saw_main = false;
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Ident(kw) if kw == "header" || kw == "struct" => {
                    self.type_decl(kw == "header")?;
                }
                Tok::Ident(kw) if kw == "parser" => {
                    self.parser_decl()?;
                }
                Tok::Ident(kw) if kw == "control" => {
                    self.control_decl()?;
                }
                Tok::Ident(kw) if kw == "V1Switch" => {
                    self.instantiation()?;
                    saw_main = true;
                }
                Tok::Ident(kw) if kw == "typedef" || kw == "const" || kw == "include" => {
                    // Skip to the next `;` — typedefs/consts are tolerated
                    // but not modeled.
                    while !matches!(self.peek(), Tok::Sym(";") | Tok::Eof) {
                        self.bump();
                    }
                    self.eat_sym(";");
                }
                other => return self.err(format!("unexpected top-level token {other:?}")),
            }
        }
        if !saw_main {
            return self.err("program needs a `V1Switch(P(), I(), E()) main;` instantiation");
        }
        Ok(())
    }

    fn type_decl(&mut self, is_header: bool) -> PResult<()> {
        self.bump(); // header/struct
        let name = self.ident()?;
        self.expect_sym("{")?;
        let mut fields = Vec::new();
        while !self.eat_sym("}") {
            if self.peek_ident("bit") {
                let width = self.bit_width()?;
                let fname = self.ident()?;
                self.expect_sym(";")?;
                fields.push(Field { name: fname, width });
            } else {
                // A struct member typed by another struct/header, e.g.
                // `ethernet_t eth;` inside the headers struct.
                let tname = self.ident()?;
                let fname = self.ident()?;
                self.expect_sym(";")?;
                // Encode typed members with width 0 and remember the
                // type name in a parallel map once this struct becomes
                // the headers struct.
                fields.push(Field {
                    name: format!("{fname}:{tname}"),
                    width: 0,
                });
            }
        }
        self.prog.types.insert(
            name.clone(),
            StructDecl {
                name,
                is_header,
                fields,
            },
        );
        Ok(())
    }

    /// `(dir type name, ...)` → record canonical roles.
    fn params(&mut self, is_parser: bool) -> PResult<()> {
        self.roles.clear();
        self.expect_sym("(")?;
        let mut position = 0usize;
        while !self.eat_sym(")") {
            // Optional direction keyword.
            let mut word = self.ident()?;
            if word == "in" || word == "out" || word == "inout" {
                word = self.ident()?;
            }
            let tname = word;
            let pname = self.ident()?;
            let role = if tname == "packet_in" || tname == "packet_out" {
                "pkt"
            } else if tname == "standard_metadata_t" {
                "std"
            } else {
                // Positional: parser = (pkt, hdr, meta, std); control =
                // (hdr, meta, std).
                let logical = if is_parser { position } else { position + 1 };
                match logical {
                    1 => {
                        if is_parser {
                            self.prog.headers_type = tname.clone();
                        }
                        "hdr"
                    }
                    2 => {
                        if is_parser {
                            self.prog.meta_type = tname.clone();
                        }
                        "meta"
                    }
                    _ => "other",
                }
            };
            self.roles.insert(pname, role.to_string());
            position += 1;
            self.eat_sym(",");
        }
        Ok(())
    }

    fn canonical_root(&self, name: &str) -> String {
        self.roles
            .get(name)
            .cloned()
            .unwrap_or_else(|| name.to_string())
    }

    fn parser_decl(&mut self) -> PResult<()> {
        self.bump(); // parser
        let name = self.ident()?;
        self.params(true)?;
        self.expect_sym("{")?;
        let mut states = Vec::new();
        while !self.eat_sym("}") {
            if !self.eat_ident("state") {
                return self.err("expected `state`");
            }
            let sname = self.ident()?;
            self.expect_sym("{")?;
            let mut extracts = Vec::new();
            let mut transition = Transition::Direct("accept".to_string());
            while !self.eat_sym("}") {
                if self.eat_ident("transition") {
                    transition = self.transition()?;
                } else {
                    // pkt.extract(hdr.member);
                    let pkt = self.ident()?;
                    if self.canonical_root(&pkt) != "pkt" {
                        return self.err(format!("expected packet parameter, found `{pkt}`"));
                    }
                    self.expect_sym(".")?;
                    let m = self.ident()?;
                    if m != "extract" {
                        return self.err(format!("only `extract` is supported, found `{m}`"));
                    }
                    self.expect_sym("(")?;
                    let root = self.ident()?;
                    if self.canonical_root(&root) != "hdr" {
                        return self.err("extract target must be a headers member");
                    }
                    self.expect_sym(".")?;
                    let member = self.ident()?;
                    self.expect_sym(")")?;
                    self.expect_sym(";")?;
                    extracts.push(member);
                }
            }
            states.push(ParserState {
                name: sname,
                extracts,
                transition,
            });
        }
        self.prog.parser = ParserDecl { name, states };
        Ok(())
    }

    fn transition(&mut self) -> PResult<Transition> {
        if self.eat_ident("select") {
            self.expect_sym("(")?;
            let on = self.expr()?;
            self.expect_sym(")")?;
            self.expect_sym("{")?;
            let mut arms = Vec::new();
            let mut default = "reject".to_string();
            while !self.eat_sym("}") {
                if self.eat_ident("default") {
                    self.expect_sym(":")?;
                    default = self.ident()?;
                    self.expect_sym(";")?;
                } else {
                    let v = self.int()?;
                    self.expect_sym(":")?;
                    let state = self.ident()?;
                    self.expect_sym(";")?;
                    arms.push((v, state));
                }
            }
            self.expect_sym(";").ok(); // tolerate trailing `;`
            Ok(Transition::Select { on, arms, default })
        } else {
            let target = self.ident()?;
            self.expect_sym(";")?;
            Ok(Transition::Direct(target))
        }
    }

    fn control_decl(&mut self) -> PResult<()> {
        self.bump(); // control
        let name = self.ident()?;
        self.params(false)?;
        self.expect_sym("{")?;
        let mut actions = Vec::new();
        let mut tables = Vec::new();
        let mut apply = Vec::new();
        while !self.eat_sym("}") {
            if self.peek_ident("action") {
                actions.push(self.action_decl()?);
            } else if self.peek_ident("table") {
                tables.push(self.table_decl()?);
            } else if self.eat_ident("apply") {
                apply = self.block()?;
            } else {
                return self.err(format!(
                    "expected `action`, `table`, or `apply`, found {:?}",
                    self.peek()
                ));
            }
        }
        let decl = ControlDecl {
            name,
            actions,
            tables,
            apply,
        };
        // First control = ingress, second = egress (confirmed by the
        // V1Switch instantiation in validate()).
        if self.prog.ingress.name.is_empty() {
            self.prog.ingress = decl;
        } else {
            self.prog.egress = decl;
        }
        Ok(())
    }

    fn action_decl(&mut self) -> PResult<ActionDecl> {
        self.bump(); // action
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut params = Vec::new();
        while !self.eat_sym(")") {
            let width = self.bit_width()?;
            let pname = self.ident()?;
            params.push(Field { name: pname, width });
            self.eat_sym(",");
        }
        let body = self.block()?;
        Ok(ActionDecl { name, params, body })
    }

    fn table_decl(&mut self) -> PResult<TableDecl> {
        self.bump(); // table
        let name = self.ident()?;
        self.expect_sym("{")?;
        let mut keys = Vec::new();
        let mut actions = Vec::new();
        let mut default_action = None;
        let mut size = 1024usize;
        while !self.eat_sym("}") {
            if self.eat_ident("key") {
                self.expect_sym("=")?;
                self.expect_sym("{")?;
                while !self.eat_sym("}") {
                    let (lv, text) = self.lvalue_with_text()?;
                    self.expect_sym(":")?;
                    let kind = match self.ident()?.as_str() {
                        "exact" => MatchKind::Exact,
                        "lpm" => MatchKind::Lpm,
                        "ternary" => MatchKind::Ternary,
                        other => return self.err(format!("unknown match kind `{other}`")),
                    };
                    self.expect_sym(";")?;
                    keys.push(TableKey {
                        field: lv,
                        kind,
                        name: text,
                        width: 0,
                    });
                }
            } else if self.eat_ident("actions") {
                self.expect_sym("=")?;
                self.expect_sym("{")?;
                while !self.eat_sym("}") {
                    // NoAction and friends allowed.
                    let a = self.ident()?;
                    actions.push(a);
                    self.expect_sym(";")?;
                }
            } else if self.eat_ident("default_action") {
                self.expect_sym("=")?;
                let a = self.ident()?;
                let mut args = Vec::new();
                if self.eat_sym("(") {
                    while !self.eat_sym(")") {
                        args.push(self.int()?);
                        self.eat_sym(",");
                    }
                }
                self.expect_sym(";")?;
                default_action = Some((a, args));
            } else if self.eat_ident("size") {
                self.expect_sym("=")?;
                size = self.int()? as usize;
                self.expect_sym(";")?;
            } else {
                return self.err(format!("unexpected table property {:?}", self.peek()));
            }
        }
        Ok(TableDecl {
            name,
            keys,
            actions,
            default_action,
            size,
        })
    }

    fn block(&mut self) -> PResult<Vec<Stmt>> {
        self.expect_sym("{")?;
        let mut stmts = Vec::new();
        while !self.eat_sym("}") {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        // if
        if self.eat_ident("if") {
            self.expect_sym("(")?;
            let cond = self.expr()?;
            self.expect_sym(")")?;
            let then = self.block()?;
            let els = if self.eat_ident("else") {
                if self.peek_ident("if") {
                    vec![self.stmt()?]
                } else {
                    self.block()?
                }
            } else {
                vec![]
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.eat_ident("exit") {
            self.expect_sym(";")?;
            return Ok(Stmt::Exit);
        }
        if self.eat_ident("mark_to_drop") {
            self.expect_sym("(")?;
            // optional standard_metadata argument
            if !self.eat_sym(")") {
                self.ident()?;
                self.expect_sym(")")?;
            }
            self.expect_sym(";")?;
            return Ok(Stmt::Drop);
        }
        if self.eat_ident("clone") {
            self.expect_sym("(")?;
            let e = self.expr()?;
            self.expect_sym(")")?;
            self.expect_sym(";")?;
            return Ok(Stmt::Clone(e));
        }
        if self.eat_ident("digest") {
            self.expect_sym("(")?;
            let sname = self.ident()?;
            self.expect_sym("{")?;
            let mut fields = Vec::new();
            while !self.eat_sym("}") {
                let f = self.ident()?;
                self.expect_sym("=")?;
                let e = self.expr()?;
                fields.push((f, e));
                self.eat_sym(",");
            }
            self.expect_sym(")")?;
            self.expect_sym(";")?;
            if !self.prog.digests.contains(&sname) {
                self.prog.digests.push(sname.clone());
            }
            return Ok(Stmt::Digest {
                struct_name: sname,
                fields,
            });
        }
        // Starts with an identifier: assignment, table apply, method
        // call, or action call.
        let first = self.ident()?;
        if self.eat_sym("(") {
            // action call
            let mut args = Vec::new();
            while !self.eat_sym(")") {
                args.push(self.expr()?);
                self.eat_sym(",");
            }
            self.expect_sym(";")?;
            return Ok(Stmt::CallAction(first, args));
        }
        if self.eat_sym(".") {
            let second = self.ident()?;
            if second == "apply" {
                self.expect_sym("(")?;
                self.expect_sym(")")?;
                self.expect_sym(";")?;
                return Ok(Stmt::ApplyTable(first));
            }
            // hdr.member.setValid() / field assignment hdr.m.f = e;
            if self.eat_sym(".") {
                let third = self.ident()?;
                if third == "setValid" || third == "setInvalid" {
                    self.expect_sym("(")?;
                    self.expect_sym(")")?;
                    self.expect_sym(";")?;
                    return Ok(Stmt::SetValid {
                        member: second,
                        valid: third == "setValid",
                    });
                }
                // hdr.member.field = expr;
                self.expect_sym("=")?;
                let e = self.expr()?;
                self.expect_sym(";")?;
                return Ok(Stmt::Assign(
                    LValue::Field {
                        root: self.canonical_root(&first),
                        member: second,
                        field: third,
                    },
                    e,
                ));
            }
            if second == "setValid" || second == "setInvalid" {
                // Unusual direct form hdr_member.setValid(); unsupported.
                return self.err("setValid must be called as hdr.<member>.setValid()");
            }
            // meta.field = expr; or std.field = expr;
            self.expect_sym("=")?;
            let e = self.expr()?;
            self.expect_sym(";")?;
            return Ok(Stmt::Assign(
                LValue::Field {
                    root: self.canonical_root(&first),
                    member: String::new(),
                    field: second,
                },
                e,
            ));
        }
        // bare name = expr; (action param assignment is illegal in P4,
        // but local variables are not supported either)
        self.err(format!("unsupported statement starting with `{first}`"))
    }

    fn lvalue_with_text(&mut self) -> PResult<(LValue, String)> {
        let first = self.ident()?;
        self.expect_sym(".")?;
        let second = self.ident()?;
        if self.eat_sym(".") {
            let third = self.ident()?;
            let root = self.canonical_root(&first);
            let text = format!("{root}.{second}.{third}");
            Ok((
                LValue::Field {
                    root,
                    member: second,
                    field: third,
                },
                text,
            ))
        } else {
            let root = self.canonical_root(&first);
            let text = format!("{root}.{second}");
            Ok((
                LValue::Field {
                    root,
                    member: String::new(),
                    field: second,
                },
                text,
            ))
        }
    }

    // Expressions, precedence climbing.
    fn expr(&mut self) -> PResult<Expr> {
        self.expr_or()
    }
    fn expr_or(&mut self) -> PResult<Expr> {
        let mut l = self.expr_and()?;
        while matches!(self.peek(), Tok::Sym("||")) {
            self.bump();
            let r = self.expr_and()?;
            l = Expr::Binary(BinOp::Or, Box::new(l), Box::new(r));
        }
        Ok(l)
    }
    fn expr_and(&mut self) -> PResult<Expr> {
        let mut l = self.expr_cmp()?;
        while matches!(self.peek(), Tok::Sym("&&")) {
            self.bump();
            let r = self.expr_cmp()?;
            l = Expr::Binary(BinOp::And, Box::new(l), Box::new(r));
        }
        Ok(l)
    }
    fn expr_cmp(&mut self) -> PResult<Expr> {
        let l = self.expr_bits()?;
        let op = match self.peek() {
            Tok::Sym("==") => Some(BinOp::Eq),
            Tok::Sym("!=") => Some(BinOp::Ne),
            Tok::Sym("<") => Some(BinOp::Lt),
            Tok::Sym("<=") => Some(BinOp::Le),
            Tok::Sym(">") => Some(BinOp::Gt),
            Tok::Sym(">=") => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let r = self.expr_bits()?;
            return Ok(Expr::Binary(op, Box::new(l), Box::new(r)));
        }
        Ok(l)
    }
    fn expr_bits(&mut self) -> PResult<Expr> {
        let mut l = self.expr_shift()?;
        loop {
            let op = match self.peek() {
                Tok::Sym("&") => BinOp::BitAnd,
                Tok::Sym("|") => BinOp::BitOr,
                Tok::Sym("^") => BinOp::BitXor,
                _ => break,
            };
            self.bump();
            let r = self.expr_shift()?;
            l = Expr::Binary(op, Box::new(l), Box::new(r));
        }
        Ok(l)
    }
    fn expr_shift(&mut self) -> PResult<Expr> {
        let mut l = self.expr_add()?;
        loop {
            let op = match self.peek() {
                Tok::Sym("<<") => BinOp::Shl,
                Tok::Sym(">>") => BinOp::Shr,
                _ => break,
            };
            self.bump();
            let r = self.expr_add()?;
            l = Expr::Binary(op, Box::new(l), Box::new(r));
        }
        Ok(l)
    }
    fn expr_add(&mut self) -> PResult<Expr> {
        let mut l = self.expr_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Sym("+") => BinOp::Add,
                Tok::Sym("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.expr_mul()?;
            l = Expr::Binary(op, Box::new(l), Box::new(r));
        }
        Ok(l)
    }
    fn expr_mul(&mut self) -> PResult<Expr> {
        let mut l = self.expr_unary()?;
        while matches!(self.peek(), Tok::Sym("*")) {
            self.bump();
            let r = self.expr_unary()?;
            l = Expr::Binary(BinOp::Mul, Box::new(l), Box::new(r));
        }
        Ok(l)
    }
    fn expr_unary(&mut self) -> PResult<Expr> {
        match self.peek() {
            Tok::Sym("!") => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.expr_unary()?)))
            }
            Tok::Sym("~") => {
                self.bump();
                Ok(Expr::Unary(UnOp::BitNot, Box::new(self.expr_unary()?)))
            }
            Tok::Sym("-") => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.expr_unary()?)))
            }
            _ => self.expr_primary(),
        }
    }
    fn expr_primary(&mut self) -> PResult<Expr> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Lit(v))
            }
            Tok::Sym("(") => {
                self.bump();
                // Cast `(bit<N>) e` or parenthesized expression.
                if self.peek_ident("bit") {
                    let w = self.bit_width()?;
                    self.expect_sym(")")?;
                    let e = self.expr_unary()?;
                    return Ok(Expr::Cast(w, Box::new(e)));
                }
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if name == "true" {
                    self.bump();
                    return Ok(Expr::Lit(1));
                }
                if name == "false" {
                    self.bump();
                    return Ok(Expr::Lit(0));
                }
                self.bump();
                if self.eat_sym(".") {
                    let second = self.ident()?;
                    if self.eat_sym(".") {
                        let third = self.ident()?;
                        if third == "isValid" {
                            self.expect_sym("(")?;
                            self.expect_sym(")")?;
                            return Ok(Expr::IsValid {
                                root: self.canonical_root(&name),
                                member: second,
                            });
                        }
                        return Ok(Expr::Ref(LValue::Field {
                            root: self.canonical_root(&name),
                            member: second,
                            field: third,
                        }));
                    }
                    return Ok(Expr::Ref(LValue::Field {
                        root: self.canonical_root(&name),
                        member: String::new(),
                        field: second,
                    }));
                }
                Ok(Expr::Ref(LValue::Name(name)))
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }

    fn instantiation(&mut self) -> PResult<()> {
        self.bump(); // V1Switch
        self.expect_sym("(")?;
        let mut names = Vec::new();
        while !self.eat_sym(")") {
            let n = self.ident()?;
            self.expect_sym("(")?;
            self.expect_sym(")")?;
            names.push(n);
            self.eat_sym(",");
        }
        let main = self.ident()?;
        if main != "main" {
            return self.err("expected `main`");
        }
        self.expect_sym(";")?;
        if names.len() != 3 {
            return self.err("V1Switch needs (Parser(), Ingress(), Egress())");
        }
        // Reorder controls if the instantiation order differs from the
        // declaration order.
        if self.prog.ingress.name == names[2] && self.prog.egress.name == names[1] {
            std::mem::swap(&mut self.prog.ingress, &mut self.prog.egress);
        }
        Ok(())
    }
}

// ---------------------------------------------------------- validation

/// The built-in standard metadata fields and widths.
pub const STANDARD_METADATA: &[(&str, Width)] = &[
    ("ingress_port", 16),
    ("egress_spec", 16),
    ("egress_port", 16),
    ("mcast_grp", 16),
    ("instance_type", 32),
    ("packet_length", 32),
];

/// Resolve the width of a field reference.
pub fn lvalue_width(prog: &Program, lv: &LValue) -> Option<Width> {
    match lv {
        LValue::Field {
            root,
            member,
            field,
        } => match root.as_str() {
            "std" => STANDARD_METADATA
                .iter()
                .find(|(n, _)| n == field)
                .map(|(_, w)| *w),
            "hdr" => {
                let ty = prog.header_member_type(member)?;
                ty.field_offset(field).map(|(_, w)| w)
            }
            "meta" => {
                let ty = prog.meta_struct()?;
                ty.field_offset(field).map(|(_, w)| w)
            }
            _ => None,
        },
        LValue::Name(_) => None,
    }
}

fn validate(prog: &mut Program) -> PResult<()> {
    let fail = |msg: String| P4Error { line: 0, msg };
    // Decode the typed members of the headers struct (stored as
    // `name:type` with width 0 by the parser).
    let headers = prog
        .types
        .get(&prog.headers_type)
        .ok_or_else(|| fail(format!("headers type `{}` not declared", prog.headers_type)))?
        .clone();
    let mut members = Vec::new();
    for f in &headers.fields {
        let Some((mname, tname)) = f.name.split_once(':') else {
            return Err(fail(format!(
                "headers struct field `{}` must be a header-typed member",
                f.name
            )));
        };
        let t = prog
            .types
            .get(tname)
            .ok_or_else(|| fail(format!("unknown header type `{tname}`")))?;
        if !t.is_header {
            return Err(fail(format!("member `{mname}` must be of header type")));
        }
        members.push((mname.to_string(), tname.to_string()));
    }
    prog.headers_members = members;

    if prog.meta_struct().is_none() {
        return Err(fail(format!(
            "metadata type `{}` not declared",
            prog.meta_type
        )));
    }

    // Parser states: extracts reference declared members; transitions
    // reference declared states or accept/reject.
    let state_names: Vec<&str> = prog.parser.states.iter().map(|s| s.name.as_str()).collect();
    if !state_names.contains(&"start") {
        return Err(fail("parser needs a `start` state".to_string()));
    }
    for st in &prog.parser.states {
        for ex in &st.extracts {
            if prog.header_member_type(ex).is_none() {
                return Err(fail(format!("extract of unknown header member `{ex}`")));
            }
        }
        let targets: Vec<&str> = match &st.transition {
            Transition::Direct(t) => vec![t.as_str()],
            Transition::Select { arms, default, .. } => arms
                .iter()
                .map(|(_, s)| s.as_str())
                .chain(std::iter::once(default.as_str()))
                .collect(),
        };
        for t in targets {
            if t != "accept" && t != "reject" && !state_names.contains(&t) {
                return Err(fail(format!("transition to unknown state `{t}`")));
            }
        }
    }

    // Tables: keys resolve, actions exist in the same control.
    let controls = [prog.ingress.clone(), prog.egress.clone()];
    let mut resolved: Vec<ControlDecl> = Vec::new();
    for mut c in controls {
        for t in &mut c.tables {
            for k in &mut t.keys {
                k.width = lvalue_width(prog, &k.field)
                    .ok_or_else(|| fail(format!("cannot resolve table key `{}`", k.name)))?;
            }
            for a in &t.actions {
                if a != "NoAction" && !c.actions.iter().any(|ad| ad.name == *a) {
                    return Err(fail(format!(
                        "table `{}` lists unknown action `{a}`",
                        t.name
                    )));
                }
            }
            if let Some((da, _)) = &t.default_action {
                if da != "NoAction" && !c.actions.iter().any(|ad| ad.name == *da) {
                    return Err(fail(format!(
                        "table `{}` has unknown default action `{da}`",
                        t.name
                    )));
                }
            }
        }
        resolved.push(c);
    }
    let mut it = resolved.into_iter();
    prog.ingress = it.next().unwrap();
    prog.egress = it.next().unwrap();

    // Digest structs exist.
    for d in &prog.digests {
        if !prog.types.contains_key(d) {
            return Err(fail(format!("digest struct `{d}` not declared")));
        }
    }
    Ok(())
}

/// A minimal but representative demo program (VLAN tagging, MAC
/// learning digests, flooding) used by tests and examples throughout the
/// workspace.
pub const DEMO: &str = r#"
        header ethernet_t {
            bit<48> dst;
            bit<48> src;
            bit<16> ether_type;
        }
        header vlan_t {
            bit<3> pcp;
            bit<1> dei;
            bit<12> vid;
            bit<16> ether_type;
        }
        struct headers_t {
            ethernet_t eth;
            vlan_t vlan;
        }
        struct metadata_t {
            bit<12> vlan_id;
            bit<1> flood;
        }
        struct mac_learn_digest_t {
            bit<16> port;
            bit<48> mac;
            bit<12> vlan;
        }

        parser SnvsParser(packet_in pkt, out headers_t hdr,
                          inout metadata_t meta,
                          inout standard_metadata_t std_meta) {
            state start {
                pkt.extract(hdr.eth);
                transition select(hdr.eth.ether_type) {
                    0x8100: parse_vlan;
                    default: accept;
                }
            }
            state parse_vlan {
                pkt.extract(hdr.vlan);
                transition accept;
            }
        }

        control SnvsIngress(inout headers_t hdr, inout metadata_t meta,
                            inout standard_metadata_t std_meta) {
            action set_vlan(bit<12> vid) { meta.vlan_id = vid; }
            action drop_packet() { mark_to_drop(); }
            action output(bit<16> port) { std_meta.egress_spec = port; }
            action flood() { std_meta.mcast_grp = (bit<16>) meta.vlan_id; }

            table InVlan {
                key = { std_meta.ingress_port: exact; }
                actions = { set_vlan; drop_packet; }
                default_action = drop_packet();
                size = 1024;
            }
            table MacLearned {
                key = { meta.vlan_id: exact; hdr.eth.dst: exact; }
                actions = { output; flood; }
                default_action = flood();
            }
            apply {
                InVlan.apply();
                if (hdr.vlan.isValid()) {
                    meta.vlan_id = hdr.vlan.vid;
                }
                digest(mac_learn_digest_t { port = std_meta.ingress_port,
                                            mac = hdr.eth.src,
                                            vlan = meta.vlan_id });
                MacLearned.apply();
            }
        }

        control SnvsEgress(inout headers_t hdr, inout metadata_t meta,
                           inout standard_metadata_t std_meta) {
            apply { }
        }

        V1Switch(SnvsParser(), SnvsIngress(), SnvsEgress()) main;
    "#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_demo_program() {
        let p = parse_p4(DEMO).unwrap();
        assert_eq!(p.headers_type, "headers_t");
        assert_eq!(p.meta_type, "metadata_t");
        assert_eq!(
            p.headers_members,
            vec![
                ("eth".to_string(), "ethernet_t".to_string()),
                ("vlan".to_string(), "vlan_t".to_string())
            ]
        );
        assert_eq!(p.parser.states.len(), 2);
        assert_eq!(p.ingress.tables.len(), 2);
        assert_eq!(p.ingress.tables[0].keys[0].width, 16);
        assert_eq!(p.ingress.tables[1].keys[1].width, 48);
        assert_eq!(p.digests, vec!["mac_learn_digest_t"]);
        assert_eq!(p.ingress.name, "SnvsIngress");
        assert_eq!(p.egress.name, "SnvsEgress");
    }

    #[test]
    fn header_field_offsets() {
        let p = parse_p4(DEMO).unwrap();
        let vlan = p.header_member_type("vlan").unwrap();
        assert_eq!(vlan.field_offset("vid"), Some((4, 12)));
        assert_eq!(vlan.total_width(), 32);
    }

    #[test]
    fn rejects_bad_programs() {
        // unknown state
        let bad = DEMO.replace("parse_vlan;", "no_such_state;");
        assert!(parse_p4(&bad).is_err());
        // unknown action in table
        let bad = DEMO.replace("actions = { set_vlan; drop_packet; }", "actions = { zap; }");
        assert!(parse_p4(&bad).is_err());
        // missing main
        let bad = DEMO.replace(
            "V1Switch(SnvsParser(), SnvsIngress(), SnvsEgress()) main;",
            "",
        );
        assert!(parse_p4(&bad).is_err());
        // unknown digest struct
        let bad = DEMO.replace("digest(mac_learn_digest_t", "digest(nope_t");
        assert!(parse_p4(&bad).is_err());
    }

    #[test]
    fn width_prefixed_literals_and_annotations() {
        let src = DEMO.replace(
            "default_action = drop_packet();",
            "default_action = drop_packet(); size = 2048;",
        );
        assert!(parse_p4(&src).is_ok());
        let toks = lex("9w1 48w0xffffffffffff @name(\"x.y\") foo").unwrap();
        assert_eq!(toks[0].0, Tok::Int(1));
        assert_eq!(toks[1].0, Tok::Int(0xffff_ffff_ffff));
        assert!(matches!(&toks[2].0, Tok::Ident(s) if s == "foo"));
    }

    #[test]
    fn swapped_instantiation_order() {
        let src = DEMO.replace(
            "V1Switch(SnvsParser(), SnvsIngress(), SnvsEgress()) main;",
            "V1Switch(SnvsParser(), SnvsEgress(), SnvsIngress()) main;",
        );
        // Declared SnvsIngress first but instantiated as egress: the
        // program must follow the instantiation.
        let p = parse_p4(&src).unwrap();
        assert_eq!(p.ingress.name, "SnvsEgress");
        assert_eq!(p.egress.name, "SnvsIngress");
    }
}
