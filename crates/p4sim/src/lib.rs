//! A P4-subset compiler and BMv2-style behavioral switch.
//!
//! This crate provides the data plane of the Full-Stack SDN (Nerpa)
//! stack: P4-16-subset programs ([`parser`]) compiled into a behavioral
//! pipeline ([`switch`]) with runtime match-action tables ([`table`]),
//! controlled through a P4Runtime-style protocol ([`runtime`],
//! [`service`]) that supports table writes, reads, digests, and
//! packet-out. [`p4info`] exposes the control surface for Nerpa's code
//! generation.
#![warn(missing_docs)]

pub mod ast;
pub mod p4info;
pub mod packet;
pub mod parser;
pub mod runtime;
pub mod service;
pub mod switch;
pub mod table;

pub use p4info::P4Info;
pub use parser::{parse_p4, P4Error};
pub use runtime::{
    ControlRequest, ControlResponse, Digest, FieldMatch, TableEntry, Update, WriteOp,
};
pub use service::{ControlClient, ControlService, SwitchDevice};
pub use switch::{ProcessResult, Switch};

/// Mask a value to `width` bits (width 0 or ≥128 returns the value).
pub fn mask(value: u128, width: u16) -> u128 {
    if width == 0 || width >= 128 {
        value
    } else {
        value & ((1u128 << width) - 1)
    }
}
