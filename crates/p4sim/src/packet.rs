//! Bit-level packet access and parsed-header representation.
//!
//! Packets arrive as byte buffers; the parser extracts header instances
//! (fields are `u128` values, MSB-first on the wire like real P4
//! targets), and the synthesized deparser reassembles valid headers in
//! headers-struct order followed by the unparsed payload.

use bytes::Bytes;
use std::collections::BTreeMap;

use crate::ast::{Program, StructDecl};

/// Read `width` bits starting at absolute bit offset `bit_off` (MSB
/// first). Returns `None` if the range exceeds the buffer.
pub fn get_bits(data: &[u8], bit_off: u32, width: u16) -> Option<u128> {
    let end = bit_off as u64 + width as u64;
    if end > (data.len() as u64) * 8 {
        return None;
    }
    let mut v: u128 = 0;
    for i in 0..width as u32 {
        let b = bit_off + i;
        let byte = data[(b / 8) as usize];
        let bit = (byte >> (7 - (b % 8))) & 1;
        v = (v << 1) | bit as u128;
    }
    Some(v)
}

/// Write `width` bits of `value` at absolute bit offset `bit_off`
/// (MSB first). The buffer must be large enough.
pub fn set_bits(data: &mut [u8], bit_off: u32, width: u16, value: u128) {
    for i in 0..width as u32 {
        let b = bit_off + i;
        let bit = ((value >> (width as u32 - 1 - i)) & 1) as u8;
        let byte = &mut data[(b / 8) as usize];
        let mask = 1u8 << (7 - (b % 8));
        if bit == 1 {
            *byte |= mask;
        } else {
            *byte &= !mask;
        }
    }
}

/// One parsed header instance.
#[derive(Debug, Clone, PartialEq)]
pub struct HeaderInstance {
    /// The header type name.
    pub type_name: String,
    /// Validity bit.
    pub valid: bool,
    /// Field values, in declaration order.
    pub fields: Vec<u128>,
}

impl HeaderInstance {
    /// An invalid (absent) instance of a type.
    pub fn invalid(ty: &StructDecl) -> HeaderInstance {
        HeaderInstance {
            type_name: ty.name.clone(),
            valid: false,
            fields: vec![0; ty.fields.len()],
        }
    }
}

/// A packet in flight through the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedPacket {
    /// Parsed header instances by member name.
    pub headers: BTreeMap<String, HeaderInstance>,
    /// The unparsed remainder of the original packet.
    pub payload: Bytes,
}

impl ParsedPacket {
    /// Run the program's parser over raw bytes. Transitioning to
    /// `reject` or running out of bytes returns `None` (packet dropped).
    pub fn parse(prog: &Program, raw: &[u8]) -> Option<ParsedPacket> {
        use crate::ast::Transition;
        let mut headers = BTreeMap::new();
        for (member, tname) in &prog.headers_members {
            let ty = &prog.types[tname];
            headers.insert(member.clone(), HeaderInstance::invalid(ty));
        }
        let mut bit_off: u32 = 0;
        let mut state = "start".to_string();
        // Bound the state walk to avoid loops in adversarial programs.
        for _ in 0..64 {
            if state == "accept" {
                let byte_off = bit_off.div_ceil(8) as usize;
                return Some(ParsedPacket {
                    headers,
                    payload: Bytes::copy_from_slice(&raw[byte_off.min(raw.len())..]),
                });
            }
            if state == "reject" {
                return None;
            }
            let st = prog.parser.states.iter().find(|s| s.name == state)?;
            for member in &st.extracts {
                let ty = prog.header_member_type(member)?;
                let inst = headers.get_mut(member)?;
                inst.valid = true;
                for (i, f) in ty.fields.iter().enumerate() {
                    inst.fields[i] = get_bits(raw, bit_off, f.width)?;
                    bit_off += f.width as u32;
                }
            }
            state = match &st.transition {
                Transition::Direct(t) => t.clone(),
                Transition::Select { on, arms, default } => {
                    let v = eval_parser_expr(prog, on, &headers)?;
                    arms.iter()
                        .find(|(val, _)| *val == v)
                        .map(|(_, s)| s.clone())
                        .unwrap_or_else(|| default.clone())
                }
            };
        }
        None
    }

    /// Reassemble the packet: valid headers in headers-struct order, then
    /// the payload.
    pub fn deparse(&self, prog: &Program) -> Vec<u8> {
        let mut total_bits: u32 = 0;
        for (member, tname) in &prog.headers_members {
            if self.headers.get(member).map(|h| h.valid).unwrap_or(false) {
                total_bits += prog.types[tname].total_width();
            }
        }
        let header_bytes = total_bits.div_ceil(8) as usize;
        let mut out = vec![0u8; header_bytes];
        let mut bit_off = 0u32;
        for (member, tname) in &prog.headers_members {
            let inst = &self.headers[member];
            if !inst.valid {
                continue;
            }
            let ty = &prog.types[tname];
            for (i, f) in ty.fields.iter().enumerate() {
                set_bits(&mut out, bit_off, f.width, inst.fields[i]);
                bit_off += f.width as u32;
            }
        }
        out.extend_from_slice(&self.payload);
        out
    }

    /// Read a header field (member, field name); `None` when the header
    /// is invalid or unknown.
    pub fn get_field(&self, prog: &Program, member: &str, field: &str) -> Option<u128> {
        let inst = self.headers.get(member)?;
        if !inst.valid {
            return None;
        }
        let ty = prog.types.get(&inst.type_name)?;
        let idx = ty.fields.iter().position(|f| f.name == field)?;
        Some(inst.fields[idx])
    }

    /// Write a header field; silently ignored when invalid/unknown (P4
    /// semantics: writes to invalid headers have no effect).
    pub fn set_field(&mut self, prog: &Program, member: &str, field: &str, value: u128) {
        let Some(inst) = self.headers.get_mut(member) else {
            return;
        };
        let Some(ty) = prog.types.get(&inst.type_name) else {
            return;
        };
        let Some(idx) = ty.fields.iter().position(|f| f.name == field) else {
            return;
        };
        let width = ty.fields[idx].width;
        inst.fields[idx] = crate::mask(value, width);
    }
}

fn eval_parser_expr(
    prog: &Program,
    e: &crate::ast::Expr,
    headers: &BTreeMap<String, HeaderInstance>,
) -> Option<u128> {
    use crate::ast::{Expr, LValue};
    match e {
        Expr::Lit(v) => Some(*v),
        Expr::Ref(LValue::Field {
            root,
            member,
            field,
        }) if root == "hdr" => {
            let inst = headers.get(member)?;
            let ty = prog.types.get(&inst.type_name)?;
            let idx = ty.fields.iter().position(|f| f.name == *field)?;
            Some(inst.fields[idx])
        }
        _ => None, // parser selects are restricted to header fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_accessors_roundtrip() {
        let mut buf = vec![0u8; 8];
        set_bits(&mut buf, 3, 12, 0xABC);
        assert_eq!(get_bits(&buf, 3, 12), Some(0xABC));
        // Neighbouring bits untouched.
        assert_eq!(get_bits(&buf, 0, 3), Some(0));
        assert_eq!(get_bits(&buf, 15, 8), Some(0));
        // Out of range read fails.
        assert_eq!(get_bits(&buf, 60, 8), None);
    }

    #[test]
    fn msb_first_layout() {
        let mut buf = vec![0u8; 2];
        set_bits(&mut buf, 0, 16, 0x1234);
        assert_eq!(buf, vec![0x12, 0x34]);
        assert_eq!(get_bits(&buf, 0, 8), Some(0x12));
        assert_eq!(get_bits(&buf, 8, 8), Some(0x34));
    }

    #[test]
    fn parse_and_deparse_demo() {
        let prog = crate::parser::parse_p4(crate::parser::DEMO).unwrap();
        // Ethernet frame with a VLAN tag: dst, src, 0x8100, pcp/dei/vid,
        // inner ethertype 0x0800, payload.
        let mut raw = Vec::new();
        raw.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]); // dst
        raw.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]); // src
        raw.extend_from_slice(&[0x81, 0x00]); // tpid
        raw.extend_from_slice(&[0x20, 0x64]); // pcp=1 dei=0 vid=0x064
        raw.extend_from_slice(&[0x08, 0x00]); // inner type
        raw.extend_from_slice(b"payload!");

        let pkt = ParsedPacket::parse(&prog, &raw).unwrap();
        assert!(pkt.headers["eth"].valid);
        assert!(pkt.headers["vlan"].valid);
        assert_eq!(pkt.get_field(&prog, "eth", "dst"), Some(0x020000000001));
        assert_eq!(pkt.get_field(&prog, "vlan", "vid"), Some(0x064));
        assert_eq!(pkt.get_field(&prog, "vlan", "pcp"), Some(1));
        assert_eq!(&pkt.payload[..], b"payload!");

        // Identity deparse.
        assert_eq!(pkt.deparse(&prog), raw);

        // Untagged frame: vlan stays invalid and deparse skips it.
        let mut raw2 = Vec::new();
        raw2.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]);
        raw2.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]);
        raw2.extend_from_slice(&[0x08, 0x00]);
        raw2.extend_from_slice(b"xyz");
        let pkt2 = ParsedPacket::parse(&prog, &raw2).unwrap();
        assert!(!pkt2.headers["vlan"].valid);
        assert_eq!(pkt2.deparse(&prog), raw2);
    }

    #[test]
    fn vlan_push_via_set_valid() {
        let prog = crate::parser::parse_p4(crate::parser::DEMO).unwrap();
        let mut raw = Vec::new();
        raw.extend_from_slice(&[0; 12]);
        raw.extend_from_slice(&[0x08, 0x00]);
        raw.extend_from_slice(b"pp");
        let mut pkt = ParsedPacket::parse(&prog, &raw).unwrap();
        // Simulate tag push: validate the vlan header and set fields.
        pkt.headers.get_mut("vlan").unwrap().valid = true;
        pkt.set_field(&prog, "vlan", "vid", 42);
        pkt.set_field(&prog, "vlan", "ether_type", 0x0800);
        pkt.set_field(&prog, "eth", "ether_type", 0x8100);
        let out = pkt.deparse(&prog);
        assert_eq!(out.len(), raw.len() + 4);
        let reparsed = ParsedPacket::parse(&prog, &out).unwrap();
        assert_eq!(reparsed.get_field(&prog, "vlan", "vid"), Some(42));
    }

    #[test]
    fn truncated_packet_rejected() {
        let prog = crate::parser::parse_p4(crate::parser::DEMO).unwrap();
        assert!(ParsedPacket::parse(&prog, &[0x02, 0x00]).is_none());
    }

    #[test]
    fn field_mask_on_set() {
        let prog = crate::parser::parse_p4(crate::parser::DEMO).unwrap();
        let mut raw = vec![0u8; 14];
        raw[12] = 0x08;
        let mut pkt = ParsedPacket::parse(&prog, &raw).unwrap();
        pkt.headers.get_mut("vlan").unwrap().valid = true;
        pkt.set_field(&prog, "vlan", "vid", 0xFFFF); // 12-bit field
        assert_eq!(pkt.get_field(&prog, "vlan", "vid"), Some(0xFFF));
    }
}
