//! The switch control service: a P4Runtime-style protocol over TCP with
//! length-prefixed JSON framing, plus the in-process device wrapper that
//! the packet substrate drives.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::{Buf, BufMut, BytesMut};
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::p4info::P4Info;
use crate::runtime::{ControlRequest, ControlResponse, Digest, Update};
use crate::switch::{ProcessResult, Switch};

struct DeviceMetrics {
    write_batches: telemetry::Counter,
    write_updates: telemetry::Counter,
    write_errors: telemetry::Counter,
    write_batch_size: telemetry::Histogram,
    digests: telemetry::Counter,
}

fn device_metrics() -> &'static DeviceMetrics {
    static M: std::sync::OnceLock<DeviceMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let reg = &telemetry::global().registry;
        DeviceMetrics {
            write_batches: reg.counter(
                "p4_write_batches_total",
                "P4Runtime write batches applied to switch devices",
            ),
            write_updates: reg.counter(
                "p4_write_updates_total",
                "Individual table updates applied to switch devices",
            ),
            write_errors: reg.counter(
                "p4_write_errors_total",
                "P4Runtime write batches rejected by switch devices",
            ),
            write_batch_size: reg.histogram(
                "p4_write_batch_size",
                "Updates per P4Runtime write batch",
                &telemetry::SIZE_BOUNDS,
            ),
            digests: reg.counter(
                "p4_digests_total",
                "Digest messages fanned out to subscribers",
            ),
        }
    })
}

/// An in-process switch device: the switch plus digest fan-out. The
/// packet substrate calls [`SwitchDevice::inject`]; controllers subscribe
/// to digests either in-process or over TCP.
#[derive(Clone)]
pub struct SwitchDevice {
    inner: Arc<Mutex<Switch>>,
    digest_subs: Arc<Mutex<Vec<Sender<Vec<Digest>>>>>,
    /// Trace id of the most recent successful write (0 = none yet).
    last_write_trace: Arc<AtomicU64>,
}

impl SwitchDevice {
    /// Wrap a switch.
    pub fn new(switch: Switch) -> SwitchDevice {
        SwitchDevice {
            inner: Arc::new(Mutex::new(switch)),
            digest_subs: Arc::new(Mutex::new(Vec::new())),
            last_write_trace: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Process a packet; digests are also fanned out to subscribers.
    pub fn inject(&self, port: u16, bytes: &[u8]) -> ProcessResult {
        let result = self.inner.lock().process_packet(port, bytes);
        if !result.digests.is_empty() {
            device_metrics().digests.add(result.digests.len() as u64);
            telemetry::record_event(
                telemetry::Plane::Data,
                "p4.digest",
                0,
                &[
                    ("digests", result.digests.len() as u64),
                    ("port", port as u64),
                ],
            );
            let subs = self.digest_subs.lock();
            for s in subs.iter() {
                let _ = s.send(result.digests.clone());
            }
        }
        result
    }

    /// Subscribe to digests in-process.
    pub fn subscribe_digests(&self) -> Receiver<Vec<Digest>> {
        let (tx, rx) = unbounded();
        self.digest_subs.lock().push(tx);
        rx
    }

    /// Apply table updates.
    pub fn write(&self, updates: &[Update]) -> Result<(), String> {
        self.write_traced(updates, None)
    }

    /// Apply table updates, noting the causal trace that produced them.
    pub fn write_traced(&self, updates: &[Update], trace: Option<u64>) -> Result<(), String> {
        let m = device_metrics();
        m.write_batches.inc();
        m.write_updates.add(updates.len() as u64);
        m.write_batch_size.record(updates.len() as u64);
        let res = self.inner.lock().write(updates);
        match &res {
            Ok(()) => {
                if let Some(t) = trace {
                    self.last_write_trace.store(t, Ordering::Relaxed);
                }
                telemetry::record_event(
                    telemetry::Plane::Data,
                    "p4.write",
                    trace.unwrap_or(0),
                    &[("updates", updates.len() as u64)],
                );
            }
            Err(_) => {
                m.write_errors.inc();
                telemetry::record_event(
                    telemetry::Plane::Data,
                    "p4.write_error",
                    trace.unwrap_or(0),
                    &[("updates", updates.len() as u64)],
                );
            }
        }
        res
    }

    /// Trace id of the most recent successful traced write, if any.
    pub fn last_write_trace(&self) -> Option<u64> {
        match self.last_write_trace.load(Ordering::Relaxed) {
            0 => None,
            t => Some(t),
        }
    }

    /// Read a table's entries (`None` if the table doesn't exist).
    pub fn read_table(&self, table: &str) -> Option<Vec<crate::runtime::TableEntry>> {
        self.inner.lock().read_table(table).map(|e| e.to_vec())
    }

    /// Snapshot every table's entries, sorted by table name.
    pub fn read_all_tables(&self) -> Vec<(String, Vec<crate::runtime::TableEntry>)> {
        self.inner.lock().read_all_tables()
    }

    /// Configure a multicast group.
    pub fn set_mcast_group(&self, group: u16, ports: Vec<u16>) {
        self.inner.lock().set_mcast_group(group, ports);
    }

    /// The configured multicast groups, order-normalized (group id →
    /// sorted member set). The installed-state read used by the
    /// differential oracle; empty groups are never stored.
    pub fn mcast_snapshot(
        &self,
    ) -> std::collections::BTreeMap<u16, std::collections::BTreeSet<u16>> {
        self.inner
            .lock()
            .mcast_groups
            .iter()
            .map(|(g, ports)| (*g, ports.iter().copied().collect()))
            .collect()
    }

    /// Access the underlying switch.
    pub fn with_switch<T>(&self, f: impl FnOnce(&mut Switch) -> T) -> T {
        f(&mut self.inner.lock())
    }

    /// The program's P4Info.
    pub fn p4info(&self) -> P4Info {
        P4Info::from_program(&self.inner.lock().program)
    }
}

// ------------------------------------------------------------- framing

/// Write one length-prefixed JSON message.
pub fn write_frame<T: serde_json::ToJson>(w: &mut impl Write, msg: &T) -> std::io::Result<()> {
    let body = serde_json::to_vec(msg)?;
    let mut buf = BytesMut::with_capacity(4 + body.len());
    buf.put_u32(body.len() as u32);
    buf.put_slice(&body);
    w.write_all(&buf)?;
    w.flush()
}

/// Read one length-prefixed JSON message; `Ok(None)` on clean EOF.
pub fn read_frame<T: serde_json::FromJson>(r: &mut impl Read) -> std::io::Result<Option<T>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > 64 * 1024 * 1024 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let mut buf = &body[..];
    let msg = serde_json::from_slice(buf.copy_to_bytes(buf.remaining()).as_ref())
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(Some(msg))
}

// ------------------------------------------------------------- service

/// A running control service for one switch device. Shutting it down
/// (or dropping it) severs live control connections, so a service
/// restart looks exactly like a switch restart from the controller's
/// side: connections die, state must be reconciled on reconnect.
pub struct ControlService {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ControlService {
    /// Serve `device` on `addr` (port 0 = ephemeral).
    pub fn start(
        device: SwitchDevice,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<ControlService> {
        ControlService::start_with_write_delay(device, addr, Duration::ZERO)
    }

    /// Serve `device` on `addr`, stalling each table write by
    /// `per_entry` per update before applying it — an emulation of real
    /// switch-ASIC programming latency (hardware tables take on the
    /// order of 0.1–1 ms per entry), so that benchmarks exercising the
    /// async write pipeline see device pushes that actually cost time.
    pub fn start_with_write_delay(
        device: SwitchDevice,
        addr: impl ToSocketAddrs,
        per_entry: Duration,
    ) -> std::io::Result<ControlService> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let sd = shutdown.clone();
        let cn = conns.clone();
        let accept_thread = std::thread::spawn(move || loop {
            if sd.load(Ordering::Relaxed) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let dev = device.clone();
                    if let Ok(handle) = stream.try_clone() {
                        cn.lock().push(handle);
                    }
                    std::thread::spawn(move || serve_conn(dev, stream, per_entry));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        });
        Ok(ControlService {
            addr,
            shutdown,
            conns,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sever every live control connection without stopping the
    /// listener (a transient switch-channel failure).
    pub fn disconnect_all(&self) {
        let mut conns = self.conns.lock();
        for stream in conns.iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        conns.clear();
    }

    /// Stop accepting connections and sever the live ones.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        self.disconnect_all();
    }
}

impl Drop for ControlService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_conn(device: SwitchDevice, stream: TcpStream, write_delay_per_entry: Duration) {
    let _ = stream.set_nodelay(true);
    let mut read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let write_half = Arc::new(Mutex::new(stream));
    while let Ok(Some(req)) = read_frame::<ControlRequest>(&mut read_half) {
        let resp = match req {
            ControlRequest::Write { updates, trace } => {
                if !write_delay_per_entry.is_zero() {
                    std::thread::sleep(write_delay_per_entry * updates.len() as u32);
                }
                match device.write_traced(&updates, trace) {
                    Ok(()) => ControlResponse::WriteResult { error: None },
                    Err(e) => ControlResponse::WriteResult { error: Some(e) },
                }
            }
            ControlRequest::GetP4Info => ControlResponse::P4Info {
                info: device.p4info(),
            },
            ControlRequest::ReadTable { table } => {
                device.with_switch(|sw| match sw.read_table(&table) {
                    Some(entries) => ControlResponse::TableEntries {
                        entries: entries.to_vec(),
                    },
                    None => ControlResponse::Error {
                        message: format!("no table `{table}`"),
                    },
                })
            }
            ControlRequest::ReadAllTables => device.with_switch(|sw| ControlResponse::AllTables {
                tables: sw.read_all_tables(),
            }),
            ControlRequest::SubscribeDigests => {
                let rx = device.subscribe_digests();
                let w = write_half.clone();
                std::thread::spawn(move || {
                    for digests in rx.iter() {
                        let msg = ControlResponse::DigestList { digests };
                        if write_frame(&mut *w.lock(), &msg).is_err() {
                            break;
                        }
                    }
                });
                ControlResponse::Ok
            }
            ControlRequest::PacketOut { port, bytes } => {
                device.inject(port, &bytes);
                ControlResponse::Ok
            }
            ControlRequest::SetMcastGroup { group, ports } => {
                device.set_mcast_group(group, ports);
                ControlResponse::Ok
            }
            ControlRequest::ReadCounters => device.with_switch(|sw| {
                let mut counters = vec![
                    ("drops".to_string(), sw.stats.drops),
                    ("parse_errors".to_string(), sw.stats.parse_errors),
                    ("digests".to_string(), sw.stats.digests),
                ];
                for (p, n) in &sw.stats.rx_packets {
                    counters.push((format!("rx[{p}]"), *n));
                }
                for (p, n) in &sw.stats.tx_packets {
                    counters.push((format!("tx[{p}]"), *n));
                }
                ControlResponse::Counters { counters }
            }),
        };
        if write_frame(&mut *write_half.lock(), &resp).is_err() {
            break;
        }
    }
}

/// A blocking control client for a remote switch.
pub struct ControlClient {
    stream: Mutex<TcpStream>,
    digest_rx: Option<Receiver<Vec<Digest>>>,
}

impl ControlClient {
    /// Connect to a switch control service.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ControlClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ControlClient {
            stream: Mutex::new(stream),
            digest_rx: None,
        })
    }

    fn roundtrip(&self, req: &ControlRequest) -> Result<ControlResponse, String> {
        let mut s = self.stream.lock();
        write_frame(&mut *s, req).map_err(|e| e.to_string())?;
        loop {
            match read_frame::<ControlResponse>(&mut *s) {
                Ok(Some(ControlResponse::DigestList { .. })) => {
                    // Digests are handled by subscribe(); a synchronous
                    // caller skips any interleaved notification.
                    continue;
                }
                Ok(Some(resp)) => return Ok(resp),
                Ok(None) => return Err("connection closed".to_string()),
                Err(e) => return Err(e.to_string()),
            }
        }
    }

    /// Apply table updates atomically.
    pub fn write(&self, updates: Vec<Update>) -> Result<(), String> {
        self.write_traced(updates, None)
    }

    /// Apply table updates atomically, carrying the causal trace id
    /// across the wire so the switch can attribute the write.
    pub fn write_traced(&self, updates: Vec<Update>, trace: Option<u64>) -> Result<(), String> {
        match self.roundtrip(&ControlRequest::Write { updates, trace })? {
            ControlResponse::WriteResult { error: None } => Ok(()),
            ControlResponse::WriteResult { error: Some(e) } => Err(e),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// Fetch the P4Info.
    pub fn p4info(&self) -> Result<P4Info, String> {
        match self.roundtrip(&ControlRequest::GetP4Info)? {
            ControlResponse::P4Info { info } => Ok(info),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// Read a table's entries.
    pub fn read_table(&self, table: &str) -> Result<Vec<crate::runtime::TableEntry>, String> {
        match self.roundtrip(&ControlRequest::ReadTable {
            table: table.to_string(),
        })? {
            ControlResponse::TableEntries { entries } => Ok(entries),
            ControlResponse::Error { message } => Err(message),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// Read every table's entries in one round trip (sorted by table
    /// name) — the reconciliation snapshot for a restarted switch.
    pub fn read_all_tables(
        &self,
    ) -> Result<Vec<(String, Vec<crate::runtime::TableEntry>)>, String> {
        match self.roundtrip(&ControlRequest::ReadAllTables)? {
            ControlResponse::AllTables { tables } => Ok(tables),
            ControlResponse::Error { message } => Err(message),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// Configure a multicast group on the remote switch.
    pub fn set_mcast_group(&self, group: u16, ports: Vec<u16>) -> Result<(), String> {
        match self.roundtrip(&ControlRequest::SetMcastGroup { group, ports })? {
            ControlResponse::Ok => Ok(()),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// Inject a packet (packet-out).
    pub fn packet_out(&self, port: u16, bytes: Vec<u8>) -> Result<(), String> {
        match self.roundtrip(&ControlRequest::PacketOut { port, bytes })? {
            ControlResponse::Ok => Ok(()),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// Subscribe to digest notifications. After this call the connection
    /// is dedicated to the digest stream; use a separate client for
    /// synchronous requests.
    pub fn subscribe_digests(mut self) -> Result<Receiver<Vec<Digest>>, String> {
        {
            let mut s = self.stream.lock();
            write_frame(&mut *s, &ControlRequest::SubscribeDigests).map_err(|e| e.to_string())?;
            // Consume the Ok ack.
            match read_frame::<ControlResponse>(&mut *s) {
                Ok(Some(ControlResponse::Ok)) => {}
                other => return Err(format!("unexpected subscribe response {other:?}")),
            }
        }
        let (tx, rx) = unbounded();
        let stream = self
            .stream
            .get_mut()
            .try_clone()
            .map_err(|e| e.to_string())?;
        std::thread::spawn(move || {
            let mut s = stream;
            loop {
                match read_frame::<ControlResponse>(&mut s) {
                    Ok(Some(ControlResponse::DigestList { digests })) => {
                        if tx.send(digests).is_err() {
                            break;
                        }
                    }
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
        });
        self.digest_rx = Some(rx.clone());
        Ok(rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::DEMO;
    use crate::runtime::{FieldMatch, TableEntry, WriteOp};

    fn demo_device() -> SwitchDevice {
        SwitchDevice::new(Switch::from_source(DEMO).unwrap())
    }

    #[test]
    fn control_over_tcp() {
        let device = demo_device();
        let svc = ControlService::start(device.clone(), "127.0.0.1:0").unwrap();
        let client = ControlClient::connect(svc.local_addr()).unwrap();

        let info = client.p4info().unwrap();
        assert_eq!(info.tables.len(), 2);

        client
            .write(vec![Update {
                op: WriteOp::Insert,
                entry: TableEntry {
                    table: "InVlan".into(),
                    matches: vec![FieldMatch::Exact { value: 1 }],
                    priority: 0,
                    action: "set_vlan".into(),
                    params: vec![10],
                },
            }])
            .unwrap();
        let entries = client.read_table("InVlan").unwrap();
        assert_eq!(entries.len(), 1);
        assert!(client.read_table("NoSuch").is_err());

        // Full-state read-back: every table, sorted, in one round trip.
        let all = client.read_all_tables().unwrap();
        assert_eq!(all.len(), 2);
        let mut names: Vec<&str> = all.iter().map(|(n, _)| n.as_str()).collect();
        let sorted = names.clone();
        names.sort();
        assert_eq!(names, sorted);
        let invlan = all.iter().find(|(n, _)| n == "InVlan").unwrap();
        assert_eq!(invlan.1.len(), 1);

        // Invalid write reports the error without closing the stream.
        let err = client
            .write(vec![Update {
                op: WriteOp::Insert,
                entry: TableEntry {
                    table: "InVlan".into(),
                    matches: vec![],
                    priority: 0,
                    action: "set_vlan".into(),
                    params: vec![],
                },
            }])
            .unwrap_err();
        assert!(err.contains("key field"));
        assert_eq!(client.read_table("InVlan").unwrap().len(), 1);
    }

    #[test]
    fn digest_stream_over_tcp() {
        let device = demo_device();
        device
            .write(&[Update {
                op: WriteOp::Insert,
                entry: TableEntry {
                    table: "InVlan".into(),
                    matches: vec![FieldMatch::Exact { value: 1 }],
                    priority: 0,
                    action: "set_vlan".into(),
                    params: vec![10],
                },
            }])
            .unwrap();
        let svc = ControlService::start(device.clone(), "127.0.0.1:0").unwrap();
        let digest_client = ControlClient::connect(svc.local_addr()).unwrap();
        let rx = digest_client.subscribe_digests().unwrap();

        // Inject a packet in-process; the digest must arrive over TCP.
        let mut frame = vec![0u8; 14];
        frame[5] = 0xBB;
        frame[11] = 0xAA;
        frame[12] = 0x08;
        device.inject(1, &frame);

        let digests = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(digests.len(), 1);
        assert_eq!(digests[0].field("mac"), Some(0xAA));
    }

    #[test]
    fn frame_codec_roundtrip() {
        let mut buf = Vec::new();
        let req = ControlRequest::ReadTable { table: "T".into() };
        write_frame(&mut buf, &req).unwrap();
        let mut r = buf.as_slice();
        let back: ControlRequest = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(req, back);
        let eof: Option<ControlRequest> = read_frame(&mut r).unwrap();
        assert!(eof.is_none());
    }
}
