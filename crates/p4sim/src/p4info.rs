//! P4Info: a serializable description of a program's control surface —
//! tables, keys, actions, and digests. This is what Nerpa's
//! `p4info2ddlog` codegen consumes to generate control-plane relations
//! (§4.2 of the paper).

use serde::{Deserialize, Serialize};

use crate::ast::{MatchKind, Program};

/// One table key field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyInfo {
    /// Display name (e.g. `std.ingress_port`).
    pub name: String,
    /// Bit width.
    pub width: u16,
    /// Match kind name: `exact` / `lpm` / `ternary`.
    pub match_kind: String,
}

/// One action parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamInfo {
    /// Parameter name.
    pub name: String,
    /// Bit width.
    pub width: u16,
}

/// One action usable by a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionInfo {
    /// Action name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<ParamInfo>,
}

/// One match-action table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableInfo {
    /// Table name.
    pub name: String,
    /// The control containing it (`ingress`/`egress`).
    pub control: String,
    /// Key fields in order.
    pub keys: Vec<KeyInfo>,
    /// Usable actions.
    pub actions: Vec<ActionInfo>,
    /// Declared size.
    pub size: usize,
}

/// One digest type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DigestInfo {
    /// The digest struct name.
    pub name: String,
    /// Fields in order.
    pub fields: Vec<ParamInfo>,
}

/// The full program description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct P4Info {
    /// Program (parser) name.
    pub program: String,
    /// All tables.
    pub tables: Vec<TableInfo>,
    /// All digests.
    pub digests: Vec<DigestInfo>,
}

impl P4Info {
    /// Extract the control surface from a validated program.
    pub fn from_program(prog: &Program) -> P4Info {
        let mut tables = Vec::new();
        for (control, t) in prog.all_tables() {
            let control_name = if std::ptr::eq(control, &prog.ingress) {
                "ingress"
            } else {
                "egress"
            };
            let keys = t
                .keys
                .iter()
                .map(|k| KeyInfo {
                    name: k.name.clone(),
                    width: k.width,
                    match_kind: k.kind.name().to_string(),
                })
                .collect();
            let actions = t
                .actions
                .iter()
                .filter(|a| *a != "NoAction")
                .map(|aname| {
                    let decl = control
                        .actions
                        .iter()
                        .find(|ad| ad.name == *aname)
                        .expect("validated action");
                    ActionInfo {
                        name: aname.clone(),
                        params: decl
                            .params
                            .iter()
                            .map(|p| ParamInfo {
                                name: p.name.clone(),
                                width: p.width,
                            })
                            .collect(),
                    }
                })
                .collect();
            tables.push(TableInfo {
                name: t.name.clone(),
                control: control_name.to_string(),
                keys,
                actions,
                size: t.size,
            });
        }
        let digests = prog
            .digests
            .iter()
            .map(|d| {
                let ty = &prog.types[d];
                DigestInfo {
                    name: d.clone(),
                    fields: ty
                        .fields
                        .iter()
                        .map(|f| ParamInfo {
                            name: f.name.clone(),
                            width: f.width,
                        })
                        .collect(),
                }
            })
            .collect();
        P4Info {
            program: prog.parser.name.clone(),
            tables,
            digests,
        }
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&TableInfo> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// True if any table key uses `kind`.
    pub fn uses_match_kind(&self, kind: MatchKind) -> bool {
        self.tables
            .iter()
            .any(|t| t.keys.iter().any(|k| k.match_kind == kind.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_p4;

    #[test]
    fn extract_from_demo() {
        let prog = parse_p4(crate::parser::DEMO).unwrap();
        let info = P4Info::from_program(&prog);
        assert_eq!(info.program, "SnvsParser");
        assert_eq!(info.tables.len(), 2);
        let invlan = info.table("InVlan").unwrap();
        assert_eq!(invlan.control, "ingress");
        assert_eq!(invlan.keys[0].width, 16);
        assert_eq!(invlan.keys[0].match_kind, "exact");
        let set_vlan = invlan
            .actions
            .iter()
            .find(|a| a.name == "set_vlan")
            .unwrap();
        assert_eq!(
            set_vlan.params,
            vec![ParamInfo {
                name: "vid".into(),
                width: 12
            }]
        );
        assert_eq!(info.digests.len(), 1);
        assert_eq!(info.digests[0].fields.len(), 3);

        // Serde round trip (it travels over the control protocol).
        let s = serde_json::to_string(&info).unwrap();
        let back: P4Info = serde_json::from_str(&s).unwrap();
        assert_eq!(info, back);
    }
}
