//! P4Info: a serializable description of a program's control surface —
//! tables, keys, actions, and digests. This is what Nerpa's
//! `p4info2ddlog` codegen consumes to generate control-plane relations
//! (§4.2 of the paper).

use crate::ast::{MatchKind, Program};

/// One table key field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyInfo {
    /// Display name (e.g. `std.ingress_port`).
    pub name: String,
    /// Bit width.
    pub width: u16,
    /// Match kind name: `exact` / `lpm` / `ternary`.
    pub match_kind: String,
}

/// One action parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamInfo {
    /// Parameter name.
    pub name: String,
    /// Bit width.
    pub width: u16,
}

/// One action usable by a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionInfo {
    /// Action name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<ParamInfo>,
}

/// One match-action table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableInfo {
    /// Table name.
    pub name: String,
    /// The control containing it (`ingress`/`egress`).
    pub control: String,
    /// Key fields in order.
    pub keys: Vec<KeyInfo>,
    /// Usable actions.
    pub actions: Vec<ActionInfo>,
    /// Declared size.
    pub size: usize,
}

/// One digest type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestInfo {
    /// The digest struct name.
    pub name: String,
    /// Fields in order.
    pub fields: Vec<ParamInfo>,
}

/// The full program description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct P4Info {
    /// Program (parser) name.
    pub program: String,
    /// All tables.
    pub tables: Vec<TableInfo>,
    /// All digests.
    pub digests: Vec<DigestInfo>,
}

impl P4Info {
    /// Extract the control surface from a validated program.
    pub fn from_program(prog: &Program) -> P4Info {
        let mut tables = Vec::new();
        for (control, t) in prog.all_tables() {
            let control_name = if std::ptr::eq(control, &prog.ingress) {
                "ingress"
            } else {
                "egress"
            };
            let keys = t
                .keys
                .iter()
                .map(|k| KeyInfo {
                    name: k.name.clone(),
                    width: k.width,
                    match_kind: k.kind.name().to_string(),
                })
                .collect();
            let actions = t
                .actions
                .iter()
                .filter(|a| *a != "NoAction")
                .map(|aname| {
                    let decl = control
                        .actions
                        .iter()
                        .find(|ad| ad.name == *aname)
                        .expect("validated action");
                    ActionInfo {
                        name: aname.clone(),
                        params: decl
                            .params
                            .iter()
                            .map(|p| ParamInfo {
                                name: p.name.clone(),
                                width: p.width,
                            })
                            .collect(),
                    }
                })
                .collect();
            tables.push(TableInfo {
                name: t.name.clone(),
                control: control_name.to_string(),
                keys,
                actions,
                size: t.size,
            });
        }
        let digests = prog
            .digests
            .iter()
            .map(|d| {
                let ty = &prog.types[d];
                DigestInfo {
                    name: d.clone(),
                    fields: ty
                        .fields
                        .iter()
                        .map(|f| ParamInfo {
                            name: f.name.clone(),
                            width: f.width,
                        })
                        .collect(),
                }
            })
            .collect();
        P4Info {
            program: prog.parser.name.clone(),
            tables,
            digests,
        }
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&TableInfo> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// True if any table key uses `kind`.
    pub fn uses_match_kind(&self, kind: MatchKind) -> bool {
        self.tables
            .iter()
            .any(|t| t.keys.iter().any(|k| k.match_kind == kind.name()))
    }
}

// ----------------------------------------------------- JSON wire codec

use crate::runtime::codec::{decode_vec, get_str, get_u64, obj};
use serde_json::{FromJson, ToJson, Value as Json};

impl ToJson for ParamInfo {
    fn to_json_value(&self) -> Json {
        obj([
            ("name", Json::from(&self.name)),
            ("width", Json::from(self.width)),
        ])
    }
}
impl FromJson for ParamInfo {
    fn from_json_value(v: &Json) -> serde_json::Result<ParamInfo> {
        Ok(ParamInfo {
            name: get_str(v, "name")?,
            width: get_u64(v, "width")? as u16,
        })
    }
}

impl ToJson for KeyInfo {
    fn to_json_value(&self) -> Json {
        obj([
            ("name", Json::from(&self.name)),
            ("width", Json::from(self.width)),
            ("match_kind", Json::from(&self.match_kind)),
        ])
    }
}
impl FromJson for KeyInfo {
    fn from_json_value(v: &Json) -> serde_json::Result<KeyInfo> {
        Ok(KeyInfo {
            name: get_str(v, "name")?,
            width: get_u64(v, "width")? as u16,
            match_kind: get_str(v, "match_kind")?,
        })
    }
}

impl ToJson for ActionInfo {
    fn to_json_value(&self) -> Json {
        obj([
            ("name", Json::from(&self.name)),
            (
                "params",
                Json::Array(self.params.iter().map(ToJson::to_json_value).collect()),
            ),
        ])
    }
}
impl FromJson for ActionInfo {
    fn from_json_value(v: &Json) -> serde_json::Result<ActionInfo> {
        Ok(ActionInfo {
            name: get_str(v, "name")?,
            params: decode_vec(v, "params", ParamInfo::from_json_value)?,
        })
    }
}

impl ToJson for TableInfo {
    fn to_json_value(&self) -> Json {
        obj([
            ("name", Json::from(&self.name)),
            ("control", Json::from(&self.control)),
            (
                "keys",
                Json::Array(self.keys.iter().map(ToJson::to_json_value).collect()),
            ),
            (
                "actions",
                Json::Array(self.actions.iter().map(ToJson::to_json_value).collect()),
            ),
            ("size", Json::from(self.size)),
        ])
    }
}
impl FromJson for TableInfo {
    fn from_json_value(v: &Json) -> serde_json::Result<TableInfo> {
        Ok(TableInfo {
            name: get_str(v, "name")?,
            control: get_str(v, "control")?,
            keys: decode_vec(v, "keys", KeyInfo::from_json_value)?,
            actions: decode_vec(v, "actions", ActionInfo::from_json_value)?,
            size: get_u64(v, "size")? as usize,
        })
    }
}

impl ToJson for DigestInfo {
    fn to_json_value(&self) -> Json {
        obj([
            ("name", Json::from(&self.name)),
            (
                "fields",
                Json::Array(self.fields.iter().map(ToJson::to_json_value).collect()),
            ),
        ])
    }
}
impl FromJson for DigestInfo {
    fn from_json_value(v: &Json) -> serde_json::Result<DigestInfo> {
        Ok(DigestInfo {
            name: get_str(v, "name")?,
            fields: decode_vec(v, "fields", ParamInfo::from_json_value)?,
        })
    }
}

impl ToJson for P4Info {
    fn to_json_value(&self) -> Json {
        obj([
            ("program", Json::from(&self.program)),
            (
                "tables",
                Json::Array(self.tables.iter().map(ToJson::to_json_value).collect()),
            ),
            (
                "digests",
                Json::Array(self.digests.iter().map(ToJson::to_json_value).collect()),
            ),
        ])
    }
}
impl FromJson for P4Info {
    fn from_json_value(v: &Json) -> serde_json::Result<P4Info> {
        Ok(P4Info {
            program: get_str(v, "program")?,
            tables: decode_vec(v, "tables", TableInfo::from_json_value)?,
            digests: decode_vec(v, "digests", DigestInfo::from_json_value)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_p4;

    #[test]
    fn extract_from_demo() {
        let prog = parse_p4(crate::parser::DEMO).unwrap();
        let info = P4Info::from_program(&prog);
        assert_eq!(info.program, "SnvsParser");
        assert_eq!(info.tables.len(), 2);
        let invlan = info.table("InVlan").unwrap();
        assert_eq!(invlan.control, "ingress");
        assert_eq!(invlan.keys[0].width, 16);
        assert_eq!(invlan.keys[0].match_kind, "exact");
        let set_vlan = invlan
            .actions
            .iter()
            .find(|a| a.name == "set_vlan")
            .unwrap();
        assert_eq!(
            set_vlan.params,
            vec![ParamInfo {
                name: "vid".into(),
                width: 12
            }]
        );
        assert_eq!(info.digests.len(), 1);
        assert_eq!(info.digests[0].fields.len(), 3);

        // Serde round trip (it travels over the control protocol).
        let s = serde_json::to_string(&info).unwrap();
        let back: P4Info = serde_json::from_str(&s).unwrap();
        assert_eq!(info, back);
    }
}
