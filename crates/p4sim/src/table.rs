//! Runtime match-action tables: storage, matching, and updates.
//!
//! Exact-only tables match via a hash map; tables with LPM or ternary
//! components scan entries in (priority, prefix-length) order — adequate
//! for the table sizes SDN control planes install in software switches.

use std::collections::HashMap;

use crate::ast::{MatchKind, TableDecl};
use crate::runtime::{FieldMatch, TableEntry, Update, WriteOp};

/// A populated runtime table.
#[derive(Debug, Clone)]
pub struct RuntimeTable {
    /// Static declaration (keys, actions, default action).
    pub decl: TableDecl,
    /// True when every key is exact (enables hash matching).
    all_exact: bool,
    /// Hash index for all-exact tables: key values → entry index.
    exact_index: HashMap<Vec<u128>, usize>,
    /// All entries. Order is maintained sorted for scan matching:
    /// descending priority, then descending total prefix length.
    entries: Vec<TableEntry>,
    /// Lookup counter (table hits + misses), for the stats surface.
    pub lookups: u64,
    /// Hit counter.
    pub hits: u64,
}

impl RuntimeTable {
    /// Create an empty table for a declaration.
    pub fn new(decl: TableDecl) -> RuntimeTable {
        let all_exact = decl.keys.iter().all(|k| k.kind == MatchKind::Exact);
        RuntimeTable {
            decl,
            all_exact,
            exact_index: HashMap::new(),
            entries: Vec::new(),
            lookups: 0,
            hits: 0,
        }
    }

    /// Current entries (arbitrary but deterministic order).
    pub fn entries(&self) -> &[TableEntry] {
        &self.entries
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Validate an entry against the declaration.
    pub fn validate(&self, entry: &TableEntry) -> Result<(), String> {
        if entry.matches.len() != self.decl.keys.len() {
            return Err(format!(
                "table `{}` has {} key field(s), entry has {}",
                self.decl.name,
                self.decl.keys.len(),
                entry.matches.len()
            ));
        }
        for (m, k) in entry.matches.iter().zip(&self.decl.keys) {
            let ok = matches!(
                (m, k.kind),
                (FieldMatch::Exact { .. }, MatchKind::Exact)
                    | (FieldMatch::Lpm { .. }, MatchKind::Lpm)
                    | (FieldMatch::Ternary { .. }, MatchKind::Ternary)
            );
            if !ok {
                return Err(format!(
                    "match kind mismatch on `{}` key `{}` ({})",
                    self.decl.name,
                    k.name,
                    k.kind.name()
                ));
            }
            let max = crate::mask(u128::MAX, k.width);
            let value_ok = match m {
                FieldMatch::Exact { value } => *value <= max,
                FieldMatch::Lpm { value, prefix_len } => *value <= max && *prefix_len <= k.width,
                FieldMatch::Ternary { value, mask } => *value <= max && *mask <= max,
            };
            if !value_ok {
                return Err(format!(
                    "value out of range for `{}` key `{}` (bit<{}>)",
                    self.decl.name, k.name, k.width
                ));
            }
        }
        if entry.action != "NoAction" && !self.decl.actions.contains(&entry.action) {
            return Err(format!(
                "table `{}` does not allow action `{}`",
                self.decl.name, entry.action
            ));
        }
        Ok(())
    }

    fn exact_key(entry: &TableEntry) -> Vec<u128> {
        entry
            .matches
            .iter()
            .map(|m| match m {
                FieldMatch::Exact { value } => *value,
                _ => unreachable!("exact_key on non-exact table"),
            })
            .collect()
    }

    /// Two entries conflict (same match space identity) when their match
    /// fields and priority are equal.
    fn same_key(a: &TableEntry, b: &TableEntry) -> bool {
        a.matches == b.matches && a.priority == b.priority
    }

    fn resort(&mut self) {
        self.entries.sort_by(|a, b| {
            let pa = (b.priority, total_prefix(b));
            let pb = (a.priority, total_prefix(a));
            pa.cmp(&pb)
                .then_with(|| format!("{a:?}").cmp(&format!("{b:?}")))
        });
    }

    /// The installed entry with the same match key and priority, if any.
    pub fn get_same_key(&self, entry: &TableEntry) -> Option<&TableEntry> {
        if self.all_exact {
            // Exact tables can use the hash index when the kinds line up.
            let ok = entry
                .matches
                .iter()
                .all(|m| matches!(m, FieldMatch::Exact { .. }))
                && entry.matches.len() == self.decl.keys.len();
            if ok {
                return self
                    .exact_index
                    .get(&Self::exact_key(entry))
                    .map(|i| &self.entries[*i])
                    .filter(|e| Self::same_key(e, entry));
            }
            return None;
        }
        self.entries.iter().find(|e| Self::same_key(e, entry))
    }

    /// Apply one update. Exact-only tables are maintained in O(1) via the
    /// hash index; scan tables (lpm/ternary) re-sort, which is fine at
    /// their typical sizes.
    pub fn apply(&mut self, update: &Update) -> Result<(), String> {
        self.validate(&update.entry)?;
        if self.all_exact {
            let key = Self::exact_key(&update.entry);
            let pos = self
                .exact_index
                .get(&key)
                .copied()
                .filter(|i| Self::same_key(&self.entries[*i], &update.entry));
            match (update.op, pos) {
                (WriteOp::Insert, None) => {
                    self.entries.push(update.entry.clone());
                    self.exact_index.insert(key, self.entries.len() - 1);
                }
                (WriteOp::Insert, Some(_)) => {
                    return Err(format!("duplicate entry in `{}`", self.decl.name))
                }
                (WriteOp::Modify, Some(i)) => self.entries[i] = update.entry.clone(),
                (WriteOp::Modify, None) | (WriteOp::Delete, None) => {
                    return Err(format!("no such entry in `{}`", self.decl.name))
                }
                (WriteOp::Delete, Some(i)) => {
                    self.entries.swap_remove(i);
                    self.exact_index.remove(&key);
                    if i < self.entries.len() {
                        // Fix the index of the entry that moved into slot i.
                        let moved = Self::exact_key(&self.entries[i]);
                        self.exact_index.insert(moved, i);
                    }
                }
            }
            return Ok(());
        }
        let pos = self
            .entries
            .iter()
            .position(|e| Self::same_key(e, &update.entry));
        match (update.op, pos) {
            (WriteOp::Insert, None) => self.entries.push(update.entry.clone()),
            (WriteOp::Insert, Some(_)) => {
                return Err(format!("duplicate entry in `{}`", self.decl.name))
            }
            (WriteOp::Modify, Some(i)) => self.entries[i] = update.entry.clone(),
            (WriteOp::Modify, None) | (WriteOp::Delete, None) => {
                return Err(format!("no such entry in `{}`", self.decl.name))
            }
            (WriteOp::Delete, Some(i)) => {
                self.entries.remove(i);
            }
        }
        self.resort();
        Ok(())
    }
}

fn total_prefix(e: &TableEntry) -> u32 {
    e.matches
        .iter()
        .map(|m| match m {
            FieldMatch::Lpm { prefix_len, .. } => *prefix_len as u32,
            FieldMatch::Exact { .. } => 128,
            FieldMatch::Ternary { mask, .. } => mask.count_ones(),
        })
        .sum()
}

impl RuntimeTable {
    /// Width-aware matching for tables with LPM keys: `widths` gives the
    /// bit width of each key field.
    pub fn lookup_with_widths(&mut self, key: &[u128]) -> Option<(String, Vec<u128>)> {
        self.lookups += 1;
        if self.all_exact && !self.entries.is_empty() {
            if let Some(&i) = self.exact_index.get(key) {
                self.hits += 1;
                let e = &self.entries[i];
                return Some((e.action.clone(), e.params.clone()));
            }
            return self
                .decl
                .default_action
                .as_ref()
                .map(|(a, args)| (a.clone(), args.clone()));
        }
        let widths: Vec<u16> = self.decl.keys.iter().map(|k| k.width).collect();
        for e in &self.entries {
            let ok = e
                .matches
                .iter()
                .zip(key)
                .zip(&widths)
                .all(|((m, v), w)| match m {
                    FieldMatch::Exact { value } => value == v,
                    FieldMatch::Lpm { value, prefix_len } => {
                        if *prefix_len == 0 {
                            return true;
                        }
                        let host_bits = w - prefix_len.min(w);
                        let host = if host_bits == 0 {
                            0
                        } else {
                            crate::mask(u128::MAX, host_bits)
                        };
                        let mask = crate::mask(u128::MAX, *w) & !host;
                        (v & mask) == (value & mask)
                    }
                    FieldMatch::Ternary { value, mask } => (v & mask) == *value,
                });
            if ok {
                self.hits += 1;
                return Some((e.action.clone(), e.params.clone()));
            }
        }
        self.decl
            .default_action
            .as_ref()
            .map(|(a, args)| (a.clone(), args.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{LValue, TableKey};

    fn decl(kinds: &[(MatchKind, u16)]) -> TableDecl {
        TableDecl {
            name: "T".into(),
            keys: kinds
                .iter()
                .enumerate()
                .map(|(i, (k, w))| TableKey {
                    field: LValue::Name(format!("k{i}")),
                    kind: *k,
                    name: format!("k{i}"),
                    width: *w,
                })
                .collect(),
            actions: vec!["act".into()],
            default_action: Some(("miss".into(), vec![])),
            size: 16,
        }
    }

    fn entry(matches: Vec<FieldMatch>, priority: i32, param: u128) -> TableEntry {
        TableEntry {
            table: "T".into(),
            matches,
            priority,
            action: "act".into(),
            params: vec![param],
        }
    }

    #[test]
    fn exact_match_and_default() {
        let mut t = RuntimeTable::new(decl(&[(MatchKind::Exact, 9)]));
        t.apply(&Update {
            op: WriteOp::Insert,
            entry: entry(vec![FieldMatch::Exact { value: 5 }], 0, 100),
        })
        .unwrap();
        assert_eq!(t.lookup_with_widths(&[5]), Some(("act".into(), vec![100])));
        assert_eq!(t.lookup_with_widths(&[6]), Some(("miss".into(), vec![])));
        assert_eq!(t.lookups, 2);
        assert_eq!(t.hits, 1);
    }

    #[test]
    fn insert_modify_delete_semantics() {
        let mut t = RuntimeTable::new(decl(&[(MatchKind::Exact, 9)]));
        let e = entry(vec![FieldMatch::Exact { value: 1 }], 0, 7);
        t.apply(&Update {
            op: WriteOp::Insert,
            entry: e.clone(),
        })
        .unwrap();
        // Duplicate insert rejected.
        assert!(t
            .apply(&Update {
                op: WriteOp::Insert,
                entry: e.clone()
            })
            .is_err());
        // Modify changes the action data.
        let mut e2 = e.clone();
        e2.params = vec![9];
        t.apply(&Update {
            op: WriteOp::Modify,
            entry: e2,
        })
        .unwrap();
        assert_eq!(t.lookup_with_widths(&[1]), Some(("act".into(), vec![9])));
        // Delete removes; second delete errors.
        t.apply(&Update {
            op: WriteOp::Delete,
            entry: e.clone(),
        })
        .unwrap();
        assert!(t
            .apply(&Update {
                op: WriteOp::Delete,
                entry: e
            })
            .is_err());
        assert!(t.is_empty());
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let mut t = RuntimeTable::new(decl(&[(MatchKind::Lpm, 32)]));
        // 10.0.0.0/8 → 1, 10.1.0.0/16 → 2
        t.apply(&Update {
            op: WriteOp::Insert,
            entry: entry(
                vec![FieldMatch::Lpm {
                    value: 0x0a000000,
                    prefix_len: 8,
                }],
                0,
                1,
            ),
        })
        .unwrap();
        t.apply(&Update {
            op: WriteOp::Insert,
            entry: entry(
                vec![FieldMatch::Lpm {
                    value: 0x0a010000,
                    prefix_len: 16,
                }],
                0,
                2,
            ),
        })
        .unwrap();
        assert_eq!(t.lookup_with_widths(&[0x0a010203]).unwrap().1, vec![2]);
        assert_eq!(t.lookup_with_widths(&[0x0a990203]).unwrap().1, vec![1]);
        assert_eq!(t.lookup_with_widths(&[0x0b000001]).unwrap().0, "miss");
        // /0 default route matches everything.
        t.apply(&Update {
            op: WriteOp::Insert,
            entry: entry(
                vec![FieldMatch::Lpm {
                    value: 0,
                    prefix_len: 0,
                }],
                0,
                3,
            ),
        })
        .unwrap();
        assert_eq!(t.lookup_with_widths(&[0x0b000001]).unwrap().1, vec![3]);
    }

    #[test]
    fn ternary_priority() {
        let mut t = RuntimeTable::new(decl(&[(MatchKind::Ternary, 16)]));
        t.apply(&Update {
            op: WriteOp::Insert,
            entry: entry(
                vec![FieldMatch::Ternary {
                    value: 0x0100,
                    mask: 0xff00,
                }],
                10,
                1,
            ),
        })
        .unwrap();
        t.apply(&Update {
            op: WriteOp::Insert,
            entry: entry(
                vec![FieldMatch::Ternary {
                    value: 0x0101,
                    mask: 0xffff,
                }],
                20,
                2,
            ),
        })
        .unwrap();
        // Both match 0x0101; priority 20 wins.
        assert_eq!(t.lookup_with_widths(&[0x0101]).unwrap().1, vec![2]);
        assert_eq!(t.lookup_with_widths(&[0x0102]).unwrap().1, vec![1]);
    }

    #[test]
    fn validation_errors() {
        let mut t = RuntimeTable::new(decl(&[(MatchKind::Exact, 9)]));
        // wrong arity
        assert!(t
            .apply(&Update {
                op: WriteOp::Insert,
                entry: entry(vec![], 0, 0)
            })
            .is_err());
        // wrong kind
        assert!(t
            .apply(&Update {
                op: WriteOp::Insert,
                entry: entry(vec![FieldMatch::Ternary { value: 0, mask: 0 }], 0, 0),
            })
            .is_err());
        // value exceeds bit<9>
        assert!(t
            .apply(&Update {
                op: WriteOp::Insert,
                entry: entry(vec![FieldMatch::Exact { value: 512 }], 0, 0),
            })
            .is_err());
        // unknown action
        let mut e = entry(vec![FieldMatch::Exact { value: 1 }], 0, 0);
        e.action = "zap".into();
        assert!(t
            .apply(&Update {
                op: WriteOp::Insert,
                entry: e
            })
            .is_err());
    }
}
