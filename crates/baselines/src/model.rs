//! The shared configuration model the comparator controllers consume:
//! a plain-Rust view of the snvs management state.

/// VLAN mode of a port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mode {
    /// Access port with its VLAN tag.
    Access(u16),
    /// Trunk port with its allowed VLANs.
    Trunk(Vec<u16>),
}

/// One configured port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortConfig {
    /// Port number.
    pub id: u16,
    /// VLAN mode.
    pub mode: Mode,
    /// Mirror destination, if ingress traffic is mirrored.
    pub mirror: Option<u16>,
}

/// One learned MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LearnedMac {
    /// The port behind which the MAC was seen.
    pub port: u16,
    /// The 48-bit MAC.
    pub mac: u64,
    /// The VLAN it was learned on.
    pub vlan: u16,
}

impl PortConfig {
    /// Access-port shorthand.
    pub fn access(id: u16, vlan: u16) -> PortConfig {
        PortConfig {
            id,
            mode: Mode::Access(vlan),
            mirror: None,
        }
    }

    /// Trunk-port shorthand.
    pub fn trunk(id: u16, vlans: Vec<u16>) -> PortConfig {
        PortConfig {
            id,
            mode: Mode::Trunk(vlans),
            mirror: None,
        }
    }

    /// The VLANs this port belongs to.
    pub fn vlans(&self) -> Vec<u16> {
        match &self.mode {
            Mode::Access(v) => vec![*v],
            Mode::Trunk(vs) => vs.clone(),
        }
    }
}
