//! The OpenFlow-fragment backend: reproduces the phenomenon of the
//! paper's Fig. 3 — in a conventional SDN controller, every feature
//! scatters OpenFlow program fragments across the codebase, and both the
//! controller size and the number of fragments grow together.
//!
//! Each [`Feature`] here plays the role of a controller subsystem: it
//! emits flow fragments (from several *emission sites*, standing in for
//! the scattered `ofctl_add_flow` call sites of a real controller) and
//! also carries the equivalent declarative rules, so the unified
//! approach's growth can be measured from the same artifact.

use std::collections::BTreeSet;

use crate::model::{Mode, PortConfig};

/// One OpenFlow-style flow.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Flow {
    /// OpenFlow table id.
    pub table: u8,
    /// Priority.
    pub priority: u16,
    /// Match expression (textual, as in `ovs-ofctl` dumps).
    pub matches: String,
    /// Action list.
    pub actions: String,
}

/// A flow program under construction, tracking fragment emission sites.
#[derive(Debug, Default)]
pub struct FlowProgram {
    /// All flows.
    pub flows: Vec<Flow>,
    sites: BTreeSet<&'static str>,
}

impl FlowProgram {
    /// Emit a flow fragment from a named site.
    pub fn frag(
        &mut self,
        site: &'static str,
        table: u8,
        priority: u16,
        matches: impl Into<String>,
        actions: impl Into<String>,
    ) {
        self.sites.insert(site);
        self.flows.push(Flow {
            table,
            priority,
            matches: matches.into(),
            actions: actions.into(),
        });
    }

    /// Number of distinct emission sites used so far.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }
}

/// The network model features compile against.
#[derive(Debug, Clone, Default)]
pub struct NetModel {
    /// Configured ports.
    pub ports: Vec<PortConfig>,
    /// (vip, backend) pairs for the load-balancer feature.
    pub lb_pairs: Vec<(u32, u32)>,
    /// L4 ACL rules: (dst port, allow).
    pub acls: Vec<(u16, bool)>,
}

impl NetModel {
    /// A model with `n` ports (mostly access, every 8th a trunk, a few
    /// mirrored), ACLs, and LB pairs — scale is proportional to `n`.
    pub fn sized(n: u16) -> NetModel {
        NetModel {
            ports: (1..=n)
                .map(|i| {
                    if i % 8 == 0 {
                        PortConfig::trunk(i, vec![10, 11, 12, 13])
                    } else {
                        PortConfig {
                            id: i,
                            mode: Mode::Access(10 + (i % 4)),
                            mirror: if i % 16 == 1 { Some(n + 1) } else { None },
                        }
                    }
                })
                .collect(),
            lb_pairs: (0..n as u32 / 4).map(|i| (i, i * 7)).collect(),
            acls: (0..n / 8).map(|i| (1000 + i, i % 2 == 0)).collect(),
        }
    }
}

/// A controller feature: emits OpenFlow fragments *and* knows its
/// declarative equivalent.
pub trait Feature {
    /// Feature name.
    fn name(&self) -> &'static str;
    /// Emit the feature's flows for a network model.
    fn emit(&self, net: &NetModel, prog: &mut FlowProgram);
    /// The equivalent DDlog rules (one string of `Head :- body.` rules).
    fn ddlog_rules(&self) -> &'static str;
}

/// Count the rules in a DDlog snippet.
pub fn rule_count(rules: &str) -> usize {
    rules.matches(":-").count()
}

macro_rules! feature {
    ($struct_name:ident, $name:literal, $rules:literal, |$net:ident, $prog:ident| $body:block) => {
        /// Auto-generated feature module (see the trait implementation).
        #[derive(Debug, Default)]
        pub struct $struct_name;
        impl Feature for $struct_name {
            fn name(&self) -> &'static str {
                $name
            }
            fn ddlog_rules(&self) -> &'static str {
                $rules
            }
            fn emit(&self, $net: &NetModel, $prog: &mut FlowProgram) $body
        }
    };
}

feature!(
    PortClassify,
    "port-classify",
    "PortUp(p) :- Port(p, _, _).\n",
    |net, prog| {
        for p in &net.ports {
            prog.frag(
                "classify/admit",
                0,
                100,
                format!("in_port={}", p.id),
                "goto_table:1",
            );
        }
        prog.frag("classify/default-drop", 0, 0, "*", "drop");
    }
);

feature!(
    VlanAccess,
    "vlan-access",
    "InVlan(p, 0, \"set_port_vlan\", t) :- Port(p, \"access\", t).\n",
    |net, prog| {
        for p in &net.ports {
            if let Mode::Access(v) = &p.mode {
                prog.frag(
                    "vlan/access-in",
                    1,
                    90,
                    format!("in_port={},vlan_tci=0", p.id),
                    format!("set_field:{v}->vlan_vid,goto_table:2"),
                );
                prog.frag(
                    "vlan/access-out",
                    7,
                    90,
                    format!("reg_out_port={}", p.id),
                    "pop_vlan,output",
                );
            }
        }
    }
);

feature!(
    VlanTrunk,
    "vlan-trunk",
    "InVlan(p, 1, \"use_tag\", 0) :- Port(p, \"trunk\", _).\n\
     OutVlan(p, \"mark_tagged\") :- Port(p, \"trunk\", _).\n",
    |net, prog| {
        for p in &net.ports {
            if let Mode::Trunk(vs) = &p.mode {
                for v in vs {
                    prog.frag(
                        "vlan/trunk-in",
                        1,
                        80,
                        format!("in_port={},dl_vlan={v}", p.id),
                        "goto_table:2",
                    );
                }
                prog.frag(
                    "vlan/trunk-out",
                    7,
                    80,
                    format!("reg_out_port={}", p.id),
                    "output",
                );
            }
        }
    }
);

feature!(
    MacLearning,
    "mac-learning",
    "MacLearned(v, m, \"output\", p) :- mac_learn_t(p, m, v), var p = max(p) group_by (m, v).\n",
    |net, prog| {
        // The learn-action fragment plus the resubmit plumbing.
        prog.frag(
            "l2/learn",
            2,
            50,
            "*",
            "learn(table=3,hard_timeout=300,dl_dst=dl_src,output:in_port),goto_table:3",
        );
        prog.frag("l2/lookup-miss", 3, 0, "*", "goto_table:4");
        let _ = net;
    }
);

feature!(
    Flooding,
    "flooding",
    "MulticastGroup(v, p) :- PortVlan(p, v).\n",
    |net, prog| {
        let vlans: BTreeSet<u16> = net.ports.iter().flat_map(|p| p.vlans()).collect();
        for v in vlans {
            let members: Vec<String> = net
                .ports
                .iter()
                .filter(|p| p.vlans().contains(&v))
                .map(|p| format!("output:{}", p.id))
                .collect();
            prog.frag(
                "flood/per-vlan",
                4,
                10,
                format!("dl_vlan={v},dl_dst=ff:ff:ff:ff:ff:ff"),
                members.join(","),
            );
        }
        prog.frag("flood/unknown-unicast", 4, 5, "*", "resubmit(,5)");
    }
);

feature!(
    AclL4,
    "acl-l4",
    "AclVerdict(dport, allow) :- Acl(dport, allow).\n\
     Drop(f) :- Flow(f, dport), AclVerdict(dport, false).\n",
    |net, prog| {
        for (dport, allow) in &net.acls {
            prog.frag(
                "acl/l4",
                5,
                60,
                format!("tcp,tp_dst={dport}"),
                if *allow { "goto_table:6" } else { "drop" },
            );
        }
        prog.frag("acl/default", 5, 0, "*", "goto_table:6");
    }
);

feature!(
    PortMirror,
    "port-mirror",
    "Mirror(p, \"mirror_to\", d) :- Port(p, _, _), MirrorCfg(p, d).\n",
    |net, prog| {
        for p in &net.ports {
            if let Some(d) = p.mirror {
                prog.frag(
                    "mirror/ingress",
                    1,
                    95,
                    format!("in_port={}", p.id),
                    format!("output:{d},resubmit(,2)"),
                );
            }
        }
    }
);

feature!(
    TunnelEncap,
    "tunnel-encap",
    "TunnelFlow(vni, rip) :- RemoteChassis(vni, rip).\n",
    |net, prog| {
        // One tunnel mesh entry per remote chassis (model: one per 16
        // ports).
        for i in 0..(net.ports.len() / 16 + 1) {
            prog.frag(
                "tunnel/encap",
                6,
                40,
                format!("reg_dst_chassis={i}"),
                format!("set_field:{i}->tun_id,output:vxlan0"),
            );
            prog.frag(
                "tunnel/decap",
                0,
                110,
                format!("in_port=vxlan0,tun_id={i}"),
                "goto_table:2",
            );
        }
    }
);

feature!(
    L3Gateway,
    "l3-gateway",
    "RouterFlow(prefix, len, nh) :- Route(prefix, len, nh).\n\
     RouterArp(ip, mac) :- ArpBinding(ip, mac).\n",
    |net, prog| {
        let routes = net.ports.len() / 8 + 1;
        for i in 0..routes {
            prog.frag(
                "l3/route",
                6,
                30,
                format!("ip,nw_dst=10.{i}.0.0/16"),
                format!("dec_ttl,set_field:router{i}->eth_src,goto_table:7"),
            );
        }
        prog.frag(
            "l3/arp-responder",
            2,
            70,
            "arp,arp_op=1",
            "move:arp_sha->arp_tha,load:2->arp_op,in_port",
        );
    }
);

feature!(
    LoadBalancerF,
    "load-balancer",
    "LbFlow(vip, b) :- LoadBalancer(lb, vip), Backend(lb, b).\n",
    |net, prog| {
        for (vip, backend) in &net.lb_pairs {
            prog.frag(
                "lb/dnat",
                5,
                70,
                format!("ip,nw_dst=172.16.0.{vip}"),
                format!("ct(nat(dst=10.0.0.{backend})),goto_table:6"),
            );
            prog.frag(
                "lb/undnat",
                6,
                70,
                format!("ip,nw_src=10.0.0.{backend}"),
                format!("ct(nat(src=172.16.0.{vip})),goto_table:7"),
            );
        }
    }
);

feature!(
    QosPolice,
    "qos-police",
    "QosQueue(p, q) :- Port(p, _, _), QosCfg(p, q).\n",
    |net, prog| {
        for p in &net.ports {
            if p.id % 4 == 0 {
                prog.frag(
                    "qos/set-queue",
                    7,
                    95,
                    format!("reg_out_port={}", p.id),
                    "set_queue:1,output",
                );
            }
        }
    }
);

/// The full feature catalogue, in the order a product would have grown.
pub fn all_features() -> Vec<Box<dyn Feature>> {
    vec![
        Box::new(PortClassify),
        Box::new(VlanAccess),
        Box::new(VlanTrunk),
        Box::new(MacLearning),
        Box::new(Flooding),
        Box::new(AclL4),
        Box::new(PortMirror),
        Box::new(TunnelEncap),
        Box::new(L3Gateway),
        Box::new(LoadBalancerF),
        Box::new(QosPolice),
    ]
}

/// One data point of the Fig. 3 reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrowthPoint {
    /// Number of features enabled.
    pub features: usize,
    /// Scattered OpenFlow fragments emitted.
    pub fragments: usize,
    /// Distinct fragment emission sites (≈ controller code locations).
    pub sites: usize,
    /// Equivalent declarative rules in the unified approach.
    pub ddlog_rules: usize,
}

/// Compute the growth series: enable features one at a time over a fixed
/// network and record fragments/sites vs unified rules.
pub fn growth_series(net: &NetModel) -> Vec<GrowthPoint> {
    let features = all_features();
    let mut out = Vec::new();
    for k in 1..=features.len() {
        let mut prog = FlowProgram::default();
        let mut rules = 0;
        for f in &features[..k] {
            f.emit(net, &mut prog);
            rules += rule_count(f.ddlog_rules());
        }
        out.push(GrowthPoint {
            features: k,
            fragments: prog.flows.len(),
            sites: prog.site_count(),
            ddlog_rules: rules,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragments_and_sites_grow_with_features() {
        let net = NetModel::sized(64);
        let series = growth_series(&net);
        assert_eq!(series.len(), 11);
        for w in series.windows(2) {
            assert!(w[1].fragments > w[0].fragments, "{w:?}");
            assert!(w[1].sites >= w[0].sites);
            assert!(w[1].ddlog_rules >= w[0].ddlog_rules);
        }
        // The paper's point: fragments vastly outnumber declarative
        // rules, and sites scatter across the codebase.
        let last = series.last().unwrap();
        assert!(last.fragments > 10 * last.ddlog_rules);
        assert!(last.sites > 15);
    }

    #[test]
    fn fragments_scale_with_network_size_rules_do_not() {
        let small = growth_series(&NetModel::sized(16));
        let large = growth_series(&NetModel::sized(256));
        let (s, l) = (small.last().unwrap(), large.last().unwrap());
        assert!(l.fragments > 4 * s.fragments);
        assert_eq!(l.ddlog_rules, s.ddlog_rules, "rules are size-independent");
    }

    #[test]
    fn rule_counting() {
        assert_eq!(rule_count("A(x) :- B(x).\nC(y) :- D(y), E(y).\n"), 2);
        assert_eq!(rule_count(""), 0);
    }
}
