//! The load-balancer worst case of §2.2: "OVN's load balancer benchmark
//! cold starts ovn-controller with large load balancers and then deletes
//! each. ... On this benchmark, a DDlog controller took 2× the CPU time
//! and 5× the RAM as the C implementation."
//!
//! Both sides of that comparison are implemented here: the declarative
//! program (run by our incremental engine, paying for its arrangements)
//! and a hand-written struct-of-hashmaps equivalent.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use ddlog::{Engine, Transaction, Value};

/// The declarative side: two input relations joined into per-backend
/// flows, exactly the shape of OVN's load-balancer logic.
pub const LB_DDLOG: &str = "
input relation LoadBalancer(lb: bigint, vip: bigint)
input relation Backend(lb: bigint, backend: bigint)
output relation LbFlow(vip: bigint, backend: bigint)
LbFlow(vip, b) :- LoadBalancer(lb, vip), Backend(lb, b).
";

/// Result of one benchmark run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LbRunStats {
    /// Wall time of the cold start (all inserts, one transaction).
    pub cold_start: Duration,
    /// Wall time of deleting every load balancer, one per transaction.
    pub delete_all: Duration,
    /// Approximate peak resident bytes of controller state.
    pub peak_bytes: usize,
    /// Total output flow changes observed.
    pub flow_changes: usize,
}

/// Run the workload through the incremental engine.
pub fn run_ddlog(n_lbs: usize, backends_per_lb: usize) -> LbRunStats {
    let mut stats = LbRunStats::default();
    let mut engine = Engine::from_source(LB_DDLOG).expect("valid program");

    let t0 = Instant::now();
    let mut txn = Transaction::new();
    for lb in 0..n_lbs {
        txn.insert(
            "LoadBalancer",
            vec![Value::Int(lb as i128), Value::Int(10_000 + lb as i128)],
        );
        for b in 0..backends_per_lb {
            txn.insert(
                "Backend",
                vec![Value::Int(lb as i128), Value::Int((lb * 1000 + b) as i128)],
            );
        }
    }
    let delta = engine.commit(txn).expect("cold start");
    stats.flow_changes += delta.len();
    stats.cold_start = t0.elapsed();
    stats.peak_bytes = engine.approx_bytes();

    let t1 = Instant::now();
    for lb in 0..n_lbs {
        let mut txn = Transaction::new();
        txn.delete(
            "LoadBalancer",
            vec![Value::Int(lb as i128), Value::Int(10_000 + lb as i128)],
        );
        for b in 0..backends_per_lb {
            txn.delete(
                "Backend",
                vec![Value::Int(lb as i128), Value::Int((lb * 1000 + b) as i128)],
            );
        }
        let delta = engine.commit(txn).expect("delete");
        stats.flow_changes += delta.len();
    }
    stats.delete_all = t1.elapsed();
    stats
}

/// The hand-written equivalent: plain hash maps, no generic machinery.
#[derive(Debug, Default)]
pub struct HandwrittenLb {
    vips: HashMap<u64, u64>,
    backends: HashMap<u64, HashSet<u64>>,
    flows: HashSet<(u64, u64)>,
}

impl HandwrittenLb {
    /// Add a load balancer; returns the flow insertions.
    pub fn add_lb(&mut self, lb: u64, vip: u64) -> usize {
        self.vips.insert(lb, vip);
        let mut added = 0;
        if let Some(bs) = self.backends.get(&lb) {
            for b in bs {
                if self.flows.insert((vip, *b)) {
                    added += 1;
                }
            }
        }
        added
    }

    /// Add a backend; returns the flow insertions.
    pub fn add_backend(&mut self, lb: u64, backend: u64) -> usize {
        self.backends.entry(lb).or_default().insert(backend);
        if let Some(vip) = self.vips.get(&lb) {
            usize::from(self.flows.insert((*vip, backend)))
        } else {
            0
        }
    }

    /// Delete a load balancer and its backends; returns flow removals.
    pub fn delete_lb(&mut self, lb: u64) -> usize {
        let mut removed = 0;
        if let Some(vip) = self.vips.remove(&lb) {
            if let Some(bs) = self.backends.remove(&lb) {
                for b in bs {
                    if self.flows.remove(&(vip, b)) {
                        removed += 1;
                    }
                }
            }
        }
        removed
    }

    /// Approximate resident bytes.
    pub fn approx_bytes(&self) -> usize {
        self.vips.len() * 16
            + self
                .backends
                .values()
                .map(|s| 16 + s.len() * 8)
                .sum::<usize>()
            + self.flows.len() * 16
    }

    /// Current flow count.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }
}

/// Run the same workload through the hand-written controller.
pub fn run_handwritten(n_lbs: usize, backends_per_lb: usize) -> LbRunStats {
    let mut stats = LbRunStats::default();
    let mut c = HandwrittenLb::default();

    let t0 = Instant::now();
    for lb in 0..n_lbs {
        stats.flow_changes += c.add_lb(lb as u64, 10_000 + lb as u64);
        for b in 0..backends_per_lb {
            stats.flow_changes += c.add_backend(lb as u64, (lb * 1000 + b) as u64);
        }
    }
    stats.cold_start = t0.elapsed();
    stats.peak_bytes = c.approx_bytes();

    let t1 = Instant::now();
    for lb in 0..n_lbs {
        stats.flow_changes += c.delete_lb(lb as u64);
    }
    stats.delete_all = t1.elapsed();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sides_agree_on_flow_counts() {
        let d = run_ddlog(10, 20);
        let h = run_handwritten(10, 20);
        // Cold start creates 200 flows, deletion removes them: 400 each.
        assert_eq!(d.flow_changes, 400);
        assert_eq!(h.flow_changes, 400);
    }

    #[test]
    fn ddlog_uses_more_memory() {
        // The paper's observation: automatic incrementalization pays in
        // RAM for its indexes.
        let d = run_ddlog(20, 50);
        let h = run_handwritten(20, 50);
        assert!(
            d.peak_bytes > h.peak_bytes,
            "ddlog {} bytes vs handwritten {} bytes",
            d.peak_bytes,
            h.peak_bytes
        );
    }

    #[test]
    fn handwritten_incremental_semantics() {
        let mut c = HandwrittenLb::default();
        assert_eq!(c.add_backend(1, 100), 0); // no LB yet
        assert_eq!(c.add_lb(1, 9999), 1); // flow appears when LB arrives
        assert_eq!(c.add_backend(1, 101), 1);
        assert_eq!(c.flow_count(), 2);
        assert_eq!(c.delete_lb(1), 2);
        assert_eq!(c.flow_count(), 0);
    }
}
