//! Comparator controllers for the Full-Stack SDN evaluation.
//!
//! * [`fullrecompute`] — the conventional non-incremental controller
//!   (work ∝ network size per change);
//! * [`handwritten`] — an ovn-controller-style hand-written incremental
//!   engine (work ∝ change, but at a large code-size and fragility
//!   cost);
//! * [`ofgen`] — an OpenFlow-fragment backend whose scattered flow
//!   fragments reproduce the growth phenomenon of the paper's Fig. 3;
//! * [`lb`] — the load-balancer worst-case workload of §2.2, with both a
//!   DDlog program and a hand-written equivalent.
#![warn(missing_docs)]

pub mod fullrecompute;
pub mod handwritten;
pub mod lb;
pub mod model;
pub mod ofgen;

pub use fullrecompute::FullRecompute;
pub use handwritten::{Event, EventOutput, HandwrittenIncremental};
pub use model::{LearnedMac, Mode, PortConfig};
