//! The hand-written incremental controller — the style of code the paper
//! says teams are forced to write today (§2.2: ovn-controller's
//! incremental-processing engine, "an engine based on C callbacks ...
//! the developer must explicitly identify incremental changes").
//!
//! Functionally equivalent to the ~30 DDlog rules in
//! `snvs::assets::SNVS_RULES`, but every delta is tracked by hand:
//! per-port installed entries, VLAN membership reference counts, learned
//! MAC multimaps with move resolution, mirror bookkeeping. The volume and
//! fragility of this module versus the declarative rules *is* the
//! experiment (E3/E7); a property test asserts output equivalence with
//! the Nerpa controller.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use p4sim::runtime::{FieldMatch, TableEntry, Update, WriteOp};

use crate::model::{LearnedMac, Mode, PortConfig};

/// Events the controller reacts to.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A port appeared (or was reconfigured — the controller diffs).
    PortUpserted(PortConfig),
    /// A port disappeared.
    PortRemoved(u16),
    /// A learning digest arrived.
    MacLearned(LearnedMac),
}

/// Outputs of one event: data-plane updates plus multicast reprogramming.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventOutput {
    /// Table updates, deletes first.
    pub updates: Vec<Update>,
    /// Multicast group changes: (group, full new member list).
    pub mcast: Vec<(u16, Vec<u16>)>,
}

/// The incremental-processing controller state.
#[derive(Debug, Default)]
pub struct HandwrittenIncremental {
    /// Current port configurations.
    ports: HashMap<u16, PortConfig>,
    /// VLAN membership: vlan → ports (derived, maintained incrementally).
    vlan_members: BTreeMap<u16, BTreeSet<u16>>,
    /// All learning observations: (mac, vlan) → set of ports that
    /// reported it. Observations persist (like digest rows); whether they
    /// are *eligible* depends on live VLAN membership at resolve time.
    observations: HashMap<(u64, u16), BTreeSet<u16>>,
    /// The winning port per (mac, vlan) currently installed.
    installed_macs: HashMap<(u64, u16), u16>,
    /// Events processed (work metric).
    pub events: u64,
    /// Entries pushed (work metric).
    pub entries_pushed: u64,
}

impl HandwrittenIncremental {
    /// Fresh controller.
    pub fn new() -> HandwrittenIncremental {
        HandwrittenIncremental::default()
    }

    /// Handle one event, producing exactly the deltas it implies.
    pub fn handle(&mut self, event: Event) -> EventOutput {
        self.events += 1;
        let mut out = EventOutput::default();
        match event {
            Event::PortUpserted(cfg) => self.port_upserted(cfg, &mut out),
            Event::PortRemoved(id) => self.port_removed(id, &mut out),
            Event::MacLearned(m) => self.mac_learned(m, &mut out),
        }
        // Deletes before inserts so key replacement is valid.
        out.updates
            .sort_by_key(|u| (matches!(u.op, WriteOp::Insert), format!("{:?}", u.entry)));
        self.entries_pushed += out.updates.len() as u64;
        out
    }

    // ---- port configuration ------------------------------------------

    fn port_upserted(&mut self, cfg: PortConfig, out: &mut EventOutput) {
        let old = self.ports.insert(cfg.id, cfg.clone());
        // Retract entries of the previous configuration that no longer
        // apply. Each table is considered separately — exactly the kind
        // of case analysis the paper complains about.
        if let Some(old_cfg) = &old {
            if old_cfg.mode != cfg.mode {
                self.retract_mode_entries(old_cfg, out);
            }
            if old_cfg.mirror != cfg.mirror {
                if let Some(d) = old_cfg.mirror {
                    out.updates.push(Update {
                        op: WriteOp::Delete,
                        entry: mirror_entry(old_cfg.id, d),
                    });
                }
            }
        }
        // Install entries for the new configuration.
        if old.as_ref().map(|o| &o.mode) != Some(&cfg.mode) {
            self.install_mode_entries(&cfg, out);
        }
        if old.as_ref().and_then(|o| o.mirror) != cfg.mirror {
            if let Some(d) = cfg.mirror {
                out.updates.push(Update {
                    op: WriteOp::Insert,
                    entry: mirror_entry(cfg.id, d),
                });
            }
        }
        // VLAN membership deltas drive the flood groups.
        let old_vlans: BTreeSet<u16> = old
            .as_ref()
            .map(|o| o.vlans().into_iter().collect())
            .unwrap_or_default();
        let new_vlans: BTreeSet<u16> = cfg.vlans().into_iter().collect();
        for v in old_vlans.difference(&new_vlans) {
            self.leave_vlan(cfg.id, *v, out);
        }
        for v in new_vlans.difference(&old_vlans) {
            self.join_vlan(cfg.id, *v, out);
        }
    }

    fn port_removed(&mut self, id: u16, out: &mut EventOutput) {
        let Some(cfg) = self.ports.remove(&id) else {
            return;
        };
        self.retract_mode_entries(&cfg, out);
        if let Some(d) = cfg.mirror {
            out.updates.push(Update {
                op: WriteOp::Delete,
                entry: mirror_entry(id, d),
            });
        }
        for v in cfg.vlans() {
            self.leave_vlan(id, v, out);
        }
    }

    fn install_mode_entries(&mut self, cfg: &PortConfig, out: &mut EventOutput) {
        match &cfg.mode {
            Mode::Access(vlan) => out.updates.push(Update {
                op: WriteOp::Insert,
                entry: invlan_access(cfg.id, *vlan),
            }),
            Mode::Trunk(_) => {
                out.updates.push(Update {
                    op: WriteOp::Insert,
                    entry: invlan_trunk(cfg.id),
                });
                out.updates.push(Update {
                    op: WriteOp::Insert,
                    entry: outvlan_tagged(cfg.id),
                });
            }
        }
    }

    fn retract_mode_entries(&mut self, cfg: &PortConfig, out: &mut EventOutput) {
        match &cfg.mode {
            Mode::Access(vlan) => out.updates.push(Update {
                op: WriteOp::Delete,
                entry: invlan_access(cfg.id, *vlan),
            }),
            Mode::Trunk(_) => {
                out.updates.push(Update {
                    op: WriteOp::Delete,
                    entry: invlan_trunk(cfg.id),
                });
                out.updates.push(Update {
                    op: WriteOp::Delete,
                    entry: outvlan_tagged(cfg.id),
                });
            }
        }
    }

    // ---- VLAN membership ----------------------------------------------

    fn join_vlan(&mut self, port: u16, vlan: u16, out: &mut EventOutput) {
        let members = self.vlan_members.entry(vlan).or_default();
        if members.insert(port) {
            out.mcast.push((vlan, members.iter().copied().collect()));
            self.reresolve_port_vlan(port, vlan, out);
        }
    }

    fn leave_vlan(&mut self, port: u16, vlan: u16, out: &mut EventOutput) {
        let mut left = false;
        if let Some(members) = self.vlan_members.get_mut(&vlan) {
            if members.remove(&port) {
                left = true;
                out.mcast.push((vlan, members.iter().copied().collect()));
                if members.is_empty() {
                    self.vlan_members.remove(&vlan);
                }
            }
        }
        if left {
            self.reresolve_port_vlan(port, vlan, out);
        }
    }

    /// A port joined or left a VLAN: every (mac, vlan) it ever reported
    /// on that VLAN may change winners.
    fn reresolve_port_vlan(&mut self, port: u16, vlan: u16, out: &mut EventOutput) {
        let affected: Vec<(u64, u16)> = self
            .observations
            .iter()
            .filter(|((_, v), ports)| *v == vlan && ports.contains(&port))
            .map(|(k, _)| *k)
            .collect();
        for key in affected {
            self.resolve_mac(key, out);
        }
    }

    // ---- MAC learning ---------------------------------------------------

    fn mac_learned(&mut self, m: LearnedMac, out: &mut EventOutput) {
        let key = (m.mac, m.vlan);
        let inserted = self.observations.entry(key).or_default().insert(m.port);
        if inserted {
            self.resolve_mac(key, out);
        }
    }

    /// Recompute the winning port for a (mac, vlan) pair — highest
    /// *eligible* observer, where eligible means the port is currently a
    /// member of the VLAN — and emit the install/retract deltas.
    fn resolve_mac(&mut self, key: (u64, u16), out: &mut EventOutput) {
        let members = self.vlan_members.get(&key.1);
        let winner = self.observations.get(&key).and_then(|s| {
            s.iter()
                .filter(|p| members.is_some_and(|m| m.contains(p)))
                .max()
                .copied()
        });
        let current = self.installed_macs.get(&key).copied();
        if winner == current {
            return;
        }
        if let Some(old) = current {
            out.updates.push(Update {
                op: WriteOp::Delete,
                entry: mac_entry(key.1, key.0, old),
            });
            self.installed_macs.remove(&key);
        }
        if let Some(new) = winner {
            out.updates.push(Update {
                op: WriteOp::Insert,
                entry: mac_entry(key.1, key.0, new),
            });
            self.installed_macs.insert(key, new);
        }
    }

    /// The complete currently-installed entry set (for equivalence
    /// checking against other controllers).
    pub fn installed_snapshot(&self) -> BTreeSet<TableEntry> {
        let mut set = BTreeSet::new();
        for cfg in self.ports.values() {
            match &cfg.mode {
                Mode::Access(v) => {
                    set.insert(invlan_access(cfg.id, *v));
                }
                Mode::Trunk(_) => {
                    set.insert(invlan_trunk(cfg.id));
                    set.insert(outvlan_tagged(cfg.id));
                }
            }
            if let Some(d) = cfg.mirror {
                set.insert(mirror_entry(cfg.id, d));
            }
        }
        for ((mac, vlan), port) in &self.installed_macs {
            set.insert(mac_entry(*vlan, *mac, *port));
        }
        set
    }

    /// The current multicast groups.
    pub fn mcast_snapshot(&self) -> BTreeMap<u16, BTreeSet<u16>> {
        self.vlan_members.clone()
    }
}

// Entry constructors shared by the snapshots and the delta paths. In
// ovn-controller these correspond to the flow-building helpers scattered
// through the code base.

fn invlan_access(port: u16, vlan: u16) -> TableEntry {
    TableEntry {
        table: "InVlan".into(),
        matches: vec![
            FieldMatch::Exact {
                value: port as u128,
            },
            FieldMatch::Exact { value: 0 },
        ],
        priority: 0,
        action: "set_port_vlan".into(),
        params: vec![vlan as u128],
    }
}

fn invlan_trunk(port: u16) -> TableEntry {
    TableEntry {
        table: "InVlan".into(),
        matches: vec![
            FieldMatch::Exact {
                value: port as u128,
            },
            FieldMatch::Exact { value: 1 },
        ],
        priority: 0,
        action: "use_tag".into(),
        params: vec![],
    }
}

fn outvlan_tagged(port: u16) -> TableEntry {
    TableEntry {
        table: "OutVlan".into(),
        matches: vec![FieldMatch::Exact {
            value: port as u128,
        }],
        priority: 0,
        action: "mark_tagged".into(),
        params: vec![],
    }
}

fn mirror_entry(port: u16, dst: u16) -> TableEntry {
    TableEntry {
        table: "Mirror".into(),
        matches: vec![FieldMatch::Exact {
            value: port as u128,
        }],
        priority: 0,
        action: "mirror_to".into(),
        params: vec![dst as u128],
    }
}

fn mac_entry(vlan: u16, mac: u64, port: u16) -> TableEntry {
    TableEntry {
        table: "MacLearned".into(),
        matches: vec![
            FieldMatch::Exact {
                value: vlan as u128,
            },
            FieldMatch::Exact { value: mac as u128 },
        ],
        priority: 0,
        action: "output".into(),
        params: vec![port as u128],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_lifecycle() {
        let mut c = HandwrittenIncremental::new();
        let out = c.handle(Event::PortUpserted(PortConfig::access(1, 10)));
        assert_eq!(out.updates.len(), 1);
        assert_eq!(out.mcast, vec![(10, vec![1])]);

        // Reconfigure to a trunk: access entry retracted, trunk entries
        // installed, VLAN membership updated.
        let out = c.handle(Event::PortUpserted(PortConfig::trunk(1, vec![10, 20])));
        let dels = out
            .updates
            .iter()
            .filter(|u| matches!(u.op, WriteOp::Delete))
            .count();
        let ins = out
            .updates
            .iter()
            .filter(|u| matches!(u.op, WriteOp::Insert))
            .count();
        assert_eq!((dels, ins), (1, 2));
        assert!(out.mcast.contains(&(20, vec![1])));

        let out = c.handle(Event::PortRemoved(1));
        assert_eq!(out.updates.len(), 2);
        assert!(c.installed_snapshot().is_empty());
        assert!(c.mcast_snapshot().is_empty());
        assert_eq!(c.events, 3);
    }

    #[test]
    fn mac_learning_and_moves() {
        let mut c = HandwrittenIncremental::new();
        c.handle(Event::PortUpserted(PortConfig::access(1, 10)));
        c.handle(Event::PortUpserted(PortConfig::access(2, 10)));
        let out = c.handle(Event::MacLearned(LearnedMac {
            port: 1,
            mac: 0xAB,
            vlan: 10,
        }));
        assert_eq!(out.updates.len(), 1);

        // Duplicate observation: no change.
        let out = c.handle(Event::MacLearned(LearnedMac {
            port: 1,
            mac: 0xAB,
            vlan: 10,
        }));
        assert!(out.updates.is_empty());

        // Move to a higher port: replace.
        let out = c.handle(Event::MacLearned(LearnedMac {
            port: 2,
            mac: 0xAB,
            vlan: 10,
        }));
        assert_eq!(out.updates.len(), 2);
        assert_eq!(out.updates[0].op, WriteOp::Delete);
        assert_eq!(out.updates[1].entry.params, vec![2]);

        // Removing port 2 falls back to port 1's (persisting)
        // observation.
        let out = c.handle(Event::PortRemoved(2));
        let mac_ups: Vec<_> = out
            .updates
            .iter()
            .filter(|u| u.entry.table == "MacLearned")
            .collect();
        assert_eq!(mac_ups.len(), 2);
        assert_eq!(mac_ups[1].entry.params, vec![1]);

        // Re-adding port 2 to the VLAN resurrects its observation.
        let out = c.handle(Event::PortUpserted(PortConfig::access(2, 10)));
        let mac_ups: Vec<_> = out
            .updates
            .iter()
            .filter(|u| u.entry.table == "MacLearned")
            .collect();
        assert_eq!(mac_ups.len(), 2);
        assert_eq!(mac_ups[1].entry.params, vec![2]);
    }

    #[test]
    fn equivalent_to_full_recompute() {
        // Random-ish event stream: both controllers must converge to the
        // same installed state.
        let mut inc = HandwrittenIncremental::new();
        let mut ports: Vec<PortConfig> = Vec::new();
        let mut macs: Vec<LearnedMac> = Vec::new();
        let events = vec![
            Event::PortUpserted(PortConfig::access(1, 10)),
            Event::PortUpserted(PortConfig::trunk(2, vec![10, 20])),
            Event::MacLearned(LearnedMac {
                port: 1,
                mac: 1,
                vlan: 10,
            }),
            Event::PortUpserted(PortConfig {
                id: 1,
                mode: Mode::Access(20),
                mirror: Some(9),
            }),
            Event::MacLearned(LearnedMac {
                port: 2,
                mac: 1,
                vlan: 10,
            }),
            Event::PortRemoved(2),
        ];
        for e in events {
            match &e {
                Event::PortUpserted(c) => {
                    ports.retain(|p| p.id != c.id);
                    ports.push(c.clone());
                }
                Event::PortRemoved(id) => {
                    ports.retain(|p| p.id != *id);
                }
                Event::MacLearned(m) => macs.push(*m),
            }
            inc.handle(e);
        }
        let (desired, groups) = crate::fullrecompute::FullRecompute::desired_state(&ports, &macs);
        let desired: BTreeSet<TableEntry> = desired.into_iter().collect();
        assert_eq!(inc.installed_snapshot(), desired);
        assert_eq!(
            inc.mcast_snapshot(),
            groups.into_iter().collect::<BTreeMap<_, _>>()
        );
    }
}
