//! The non-incremental baseline: recompute the complete data-plane state
//! on every change (the conventional controller design the paper argues
//! against in §2.1 — "recomputing the state of an entire network on each
//! change requires significant CPU resources").
//!
//! To be fair to this baseline it still *diffs* the recomputed desired
//! state against what is installed, so the data plane only sees the
//! change; the recomputation cost is what scales with network size.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use p4sim::runtime::{FieldMatch, TableEntry, Update, WriteOp};

use crate::model::{LearnedMac, Mode, PortConfig};

/// Desired multicast groups: group id → member ports.
pub type McastGroups = BTreeMap<u16, BTreeSet<u16>>;

/// The full-recompute controller.
#[derive(Debug, Default)]
pub struct FullRecompute {
    installed: HashSet<TableEntry>,
    installed_mcast: McastGroups,
    /// Total desired entries computed across all recomputations — the
    /// "work" measure (grows with network size × number of changes).
    pub entries_computed: u64,
    /// Number of recomputations performed.
    pub recomputations: u64,
}

impl FullRecompute {
    /// A fresh controller with nothing installed.
    pub fn new() -> FullRecompute {
        FullRecompute::default()
    }

    /// Compute the complete desired state for a configuration.
    pub fn desired_state(
        ports: &[PortConfig],
        macs: &[LearnedMac],
    ) -> (HashSet<TableEntry>, McastGroups) {
        let mut entries = HashSet::new();
        // InVlan: access ports classify untagged frames; trunks accept
        // tagged frames.
        for p in ports {
            match &p.mode {
                Mode::Access(vlan) => {
                    entries.insert(TableEntry {
                        table: "InVlan".into(),
                        matches: vec![
                            FieldMatch::Exact {
                                value: p.id as u128,
                            },
                            FieldMatch::Exact { value: 0 },
                        ],
                        priority: 0,
                        action: "set_port_vlan".into(),
                        params: vec![*vlan as u128],
                    });
                }
                Mode::Trunk(_) => {
                    entries.insert(TableEntry {
                        table: "InVlan".into(),
                        matches: vec![
                            FieldMatch::Exact {
                                value: p.id as u128,
                            },
                            FieldMatch::Exact { value: 1 },
                        ],
                        priority: 0,
                        action: "use_tag".into(),
                        params: vec![],
                    });
                    entries.insert(TableEntry {
                        table: "OutVlan".into(),
                        matches: vec![FieldMatch::Exact {
                            value: p.id as u128,
                        }],
                        priority: 0,
                        action: "mark_tagged".into(),
                        params: vec![],
                    });
                }
            }
            if let Some(dst) = p.mirror {
                entries.insert(TableEntry {
                    table: "Mirror".into(),
                    matches: vec![FieldMatch::Exact {
                        value: p.id as u128,
                    }],
                    priority: 0,
                    action: "mirror_to".into(),
                    params: vec![dst as u128],
                });
            }
        }
        // Multicast groups: VLAN → member ports (also the eligibility
        // filter for learned MACs).
        let mut groups: McastGroups = BTreeMap::new();
        for p in ports {
            for v in p.vlans() {
                groups.entry(v).or_default().insert(p.id);
            }
        }
        // MacLearned: highest port that is still a member of the VLAN
        // wins (same rule as the DDlog program).
        let mut best: HashMap<(u64, u16), u16> = HashMap::new();
        for m in macs {
            let eligible = groups.get(&m.vlan).is_some_and(|g| g.contains(&m.port));
            if !eligible {
                continue;
            }
            let e = best.entry((m.mac, m.vlan)).or_insert(m.port);
            if m.port > *e {
                *e = m.port;
            }
        }
        for ((mac, vlan), port) in best {
            entries.insert(TableEntry {
                table: "MacLearned".into(),
                matches: vec![
                    FieldMatch::Exact {
                        value: vlan as u128,
                    },
                    FieldMatch::Exact { value: mac as u128 },
                ],
                priority: 0,
                action: "output".into(),
                params: vec![port as u128],
            });
        }
        (entries, groups)
    }

    /// Recompute everything from the complete snapshot and return the
    /// updates needed to reconcile the data plane, plus multicast group
    /// changes `(group, new member list)`.
    pub fn reconcile(
        &mut self,
        ports: &[PortConfig],
        macs: &[LearnedMac],
    ) -> (Vec<Update>, Vec<(u16, Vec<u16>)>) {
        self.recomputations += 1;
        let (desired, groups) = Self::desired_state(ports, macs);
        self.entries_computed += desired.len() as u64;

        let mut updates = Vec::new();
        for stale in self.installed.difference(&desired) {
            updates.push(Update {
                op: WriteOp::Delete,
                entry: stale.clone(),
            });
        }
        for fresh in desired.difference(&self.installed) {
            updates.push(Update {
                op: WriteOp::Insert,
                entry: fresh.clone(),
            });
        }
        // Deterministic order: deletes before inserts, then by entry.
        updates.sort_by_key(|u| (matches!(u.op, WriteOp::Insert), format!("{:?}", u.entry)));

        let mut mcast_updates = Vec::new();
        for (g, members) in &groups {
            if self.installed_mcast.get(g) != Some(members) {
                mcast_updates.push((*g, members.iter().copied().collect()));
            }
        }
        for g in self.installed_mcast.keys() {
            if !groups.contains_key(g) {
                mcast_updates.push((*g, vec![]));
            }
        }
        self.installed = desired;
        self.installed_mcast = groups;
        (updates, mcast_updates)
    }

    /// Number of installed entries.
    pub fn installed_len(&self) -> usize {
        self.installed.len()
    }

    /// The entries currently installed, order-normalized — the
    /// installed-state read the differential oracle compares against.
    pub fn installed_snapshot(&self) -> BTreeSet<TableEntry> {
        self.installed.iter().cloned().collect()
    }

    /// The multicast groups currently installed (empty groups pruned).
    pub fn mcast_snapshot(&self) -> McastGroups {
        self.installed_mcast
            .iter()
            .filter(|(_, m)| !m.is_empty())
            .map(|(g, m)| (*g, m.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconcile_computes_diffs() {
        let mut c = FullRecompute::new();
        let p1 = vec![PortConfig::access(1, 10), PortConfig::access(2, 10)];
        let (ups, mcast) = c.reconcile(&p1, &[]);
        assert_eq!(ups.len(), 2); // two InVlan entries
        assert_eq!(mcast, vec![(10, vec![1, 2])]);

        // Adding one port: only its entries appear in the diff, but the
        // work counter grows by the whole desired state.
        let mut p2 = p1.clone();
        p2.push(PortConfig::trunk(3, vec![10, 20]));
        let before_work = c.entries_computed;
        let (ups, mcast) = c.reconcile(&p2, &[]);
        assert_eq!(ups.len(), 2); // InVlan + OutVlan for the trunk
        assert!(ups.iter().all(|u| matches!(u.op, WriteOp::Insert)));
        assert_eq!(mcast, vec![(10, vec![1, 2, 3]), (20, vec![3])]);
        assert_eq!(c.entries_computed - before_work, 4);

        // Removing the trunk retracts exactly its entries.
        let (ups, mcast) = c.reconcile(&p1, &[]);
        assert_eq!(ups.len(), 2);
        assert!(ups.iter().all(|u| matches!(u.op, WriteOp::Delete)));
        assert_eq!(mcast, vec![(10, vec![1, 2]), (20, vec![])]);
    }

    #[test]
    fn mac_move_picks_highest_port() {
        let mut c = FullRecompute::new();
        let ports = vec![PortConfig::access(1, 10), PortConfig::access(2, 10)];
        let macs = vec![
            LearnedMac {
                port: 1,
                mac: 0xAB,
                vlan: 10,
            },
            LearnedMac {
                port: 2,
                mac: 0xAB,
                vlan: 10,
            },
        ];
        let (ups, _) = c.reconcile(&ports, &macs);
        let mac_entry = ups
            .iter()
            .find(|u| u.entry.table == "MacLearned")
            .expect("mac entry");
        assert_eq!(mac_entry.entry.params, vec![2]);
    }

    #[test]
    fn work_scales_with_network_size() {
        // The defining property of the baseline: handling one change in a
        // network of n ports costs O(n).
        let mut c = FullRecompute::new();
        let mut ports: Vec<PortConfig> = (1..=100).map(|i| PortConfig::access(i, 10)).collect();
        c.reconcile(&ports, &[]);
        let w0 = c.entries_computed;
        ports.push(PortConfig::access(101, 10));
        c.reconcile(&ports, &[]);
        assert!(c.entries_computed - w0 >= 100);
    }
}
