//! Snapshot compaction: atomic full-state snapshots that bound WAL
//! replay time.
//!
//! Once the log exceeds its configured threshold the database writes its
//! entire state — every table's rows plus the UUID/transaction counters
//! — as a single JSON document, using the classic write-temp + fsync +
//! rename dance so a crash at any instant leaves either the old snapshot
//! or the new one, never a half-written file. The WAL prefix the
//! snapshot covers is then truncated; recovery loads the snapshot and
//! replays only the suffix, which is byte-equivalent to replaying the
//! full log from genesis.

use std::fs::File;
use std::io::Write;
use std::path::Path;

use serde_json::{json, Map, Value as Json};

use crate::datum::Uuid;
use crate::db::{datum_from_json, Database, RowData};
use crate::schema::Schema;
use crate::wal::WalError;

/// Name of the snapshot file inside a durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";

/// Format tag embedded in (and required of) every snapshot document.
pub const SNAPSHOT_FORMAT: &str = "nerpa-ovsdb-snapshot-v1";

/// A decoded snapshot, ready to restore into a fresh [`Database`].
#[derive(Debug, Clone, Default)]
pub struct SnapshotState {
    /// Commit index (== transaction counter) at snapshot time.
    pub commit_index: u64,
    /// UUID counter at snapshot time.
    pub uuid_counter: u64,
    /// Every row: `(table, uuid, contents)`.
    pub rows: Vec<(String, Uuid, RowData)>,
}

/// Encode the full state of `db` as a snapshot document.
pub fn encode(db: &Database) -> Json {
    let mut tables = Map::new();
    for tname in db.schema().tables.keys() {
        let mut rows = Map::new();
        for (uuid, row) in db.rows(tname) {
            let mut obj = Map::new();
            for (c, d) in row.iter() {
                obj.insert(c.clone(), d.to_json());
            }
            rows.insert(uuid.to_string(), Json::Object(obj));
        }
        if !rows.is_empty() {
            tables.insert(tname.clone(), Json::Object(rows));
        }
    }
    json!({
        "format": SNAPSHOT_FORMAT,
        "schema": db.schema().name,
        "commit_index": db.commit_index(),
        "uuid_counter": db.uuid_counter(),
        "tables": tables,
    })
}

/// Atomically write `db`'s state as `dir/snapshot.json`:
/// write `snapshot.json.tmp`, fsync it, rename over the live name, fsync
/// the directory. A crash at any point leaves a complete snapshot (old
/// or new) on disk.
pub fn write_atomic(dir: &Path, db: &Database) -> Result<(), WalError> {
    let doc = encode(db);
    let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
    let live = dir.join(SNAPSHOT_FILE);
    let bytes = serde_json::to_vec(&doc).expect("snapshot serializes");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &live)?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all(); // directory fsync: best-effort off Linux
    }
    Ok(())
}

/// Load `dir/snapshot.json` if present, validating it against `schema`.
/// Returns `Ok(None)` when no snapshot exists.
pub fn load(dir: &Path, schema: &Schema) -> Result<Option<SnapshotState>, WalError> {
    let path = dir.join(SNAPSHOT_FILE);
    let raw = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(WalError::Io(e)),
    };
    let doc: Json = serde_json::from_slice(&raw)
        .map_err(|e| WalError::CorruptSnapshot(format!("bad json: {e}")))?;
    let fail = |reason: String| Err(WalError::CorruptSnapshot(reason));
    if doc.get("format").and_then(Json::as_str) != Some(SNAPSHOT_FORMAT) {
        return fail(format!("missing format tag {SNAPSHOT_FORMAT:?}"));
    }
    if doc.get("schema").and_then(Json::as_str) != Some(schema.name.as_str()) {
        return fail(format!(
            "snapshot is for database {:?}, expected {:?}",
            doc.get("schema"),
            schema.name
        ));
    }
    let commit_index = match doc.get("commit_index").and_then(Json::as_u64) {
        Some(v) => v,
        None => return fail("missing commit_index".to_string()),
    };
    let uuid_counter = match doc.get("uuid_counter").and_then(Json::as_u64) {
        Some(v) => v,
        None => return fail("missing uuid_counter".to_string()),
    };
    let tables = match doc.get("tables").and_then(Json::as_object) {
        Some(t) => t,
        None => return fail("missing tables".to_string()),
    };
    let mut rows = Vec::new();
    let no_named = |_: &str| None;
    for (tname, trows) in tables {
        let Some(ts) = schema.tables.get(tname) else {
            return fail(format!("unknown table {tname:?}"));
        };
        let Some(trows) = trows.as_object() else {
            return fail(format!("table {tname:?} is not an object"));
        };
        for (uuid_str, row_json) in trows {
            let Some(uuid) = Uuid::parse(uuid_str) else {
                return fail(format!("bad row uuid {uuid_str:?}"));
            };
            let Some(obj) = row_json.as_object() else {
                return fail(format!("row {uuid_str} is not an object"));
            };
            let mut row = RowData::new();
            for (cname, cval) in obj {
                let Some(cs) = ts.columns.get(cname) else {
                    return fail(format!("unknown column {tname}.{cname}"));
                };
                let datum = datum_from_json(cval, &cs.ty, &no_named)
                    .map_err(|e| WalError::CorruptSnapshot(format!("{tname}.{cname}: {e}")))?;
                row.insert(cname.clone(), datum);
            }
            rows.push((tname.clone(), uuid, row));
        }
    }
    Ok(Some(SnapshotState {
        commit_index,
        uuid_counter,
        rows,
    }))
}
