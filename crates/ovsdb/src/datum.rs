//! OVSDB data model: atoms and datums (RFC 7047 §5.1).
//!
//! A column value (*datum*) is a set of atoms or a map of atoms; scalars
//! are sets constrained to exactly one element. Atoms are typed: integer,
//! real, boolean, string, or uuid.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde_json::{json, Value as Json};

/// A 128-bit UUID in canonical textual form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Uuid(pub u128);

impl Uuid {
    /// Parse `xxxxxxxx-xxxx-xxxx-xxxx-xxxxxxxxxxxx`.
    pub fn parse(s: &str) -> Option<Uuid> {
        if s.len() != 36 {
            return None;
        }
        let b = s.as_bytes();
        if b[8] != b'-' || b[13] != b'-' || b[18] != b'-' || b[23] != b'-' {
            return None;
        }
        let hex: String = s.chars().filter(|c| *c != '-').collect();
        u128::from_str_radix(&hex, 16).ok().map(Uuid)
    }

    /// Deterministically derive a UUID from a counter (used by the
    /// database to mint fresh row UUIDs).
    pub fn from_counter(counter: u64, epoch: u64) -> Uuid {
        let mut h: u128 = 0x9e3779b97f4a7c15_9e3779b97f4a7c15;
        h ^= counter as u128;
        h = h.wrapping_mul(0x2545f4914f6cdd1d_0000000000000001);
        h ^= (epoch as u128) << 64;
        h = h.wrapping_mul(0x100000001b3);
        Uuid(h)
    }
}

impl fmt::Display for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let x = self.0;
        write!(
            f,
            "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
            (x >> 96) as u32,
            (x >> 80) as u16,
            (x >> 64) as u16,
            (x >> 48) as u16,
            x & 0xffff_ffff_ffff
        )
    }
}

/// An `f64` with total order (needed because atoms live in sorted sets).
#[derive(Debug, Clone, Copy)]
pub struct OrderedF64(pub f64);

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state)
    }
}

/// The five OVSDB atomic types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomType {
    /// 64-bit signed integer.
    Integer,
    /// IEEE double.
    Real,
    /// Boolean.
    Boolean,
    /// UTF-8 string.
    String,
    /// Row reference or plain UUID.
    Uuid,
}

impl AtomType {
    /// Parse the RFC 7047 type name.
    pub fn parse(s: &str) -> Option<AtomType> {
        Some(match s {
            "integer" => AtomType::Integer,
            "real" => AtomType::Real,
            "boolean" => AtomType::Boolean,
            "string" => AtomType::String,
            "uuid" => AtomType::Uuid,
            _ => return None,
        })
    }

    /// The RFC 7047 type name.
    pub fn name(&self) -> &'static str {
        match self {
            AtomType::Integer => "integer",
            AtomType::Real => "real",
            AtomType::Boolean => "boolean",
            AtomType::String => "string",
            AtomType::Uuid => "uuid",
        }
    }
}

/// An atomic value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// Integer atom.
    Integer(i64),
    /// Real atom.
    Real(OrderedF64),
    /// Boolean atom.
    Boolean(bool),
    /// String atom.
    String(String),
    /// UUID atom.
    Uuid(Uuid),
}

impl Atom {
    /// Shorthand for a string atom.
    pub fn s(v: impl Into<String>) -> Atom {
        Atom::String(v.into())
    }

    /// Shorthand for an integer atom.
    pub fn i(v: i64) -> Atom {
        Atom::Integer(v)
    }

    /// The type of this atom.
    pub fn atom_type(&self) -> AtomType {
        match self {
            Atom::Integer(_) => AtomType::Integer,
            Atom::Real(_) => AtomType::Real,
            Atom::Boolean(_) => AtomType::Boolean,
            Atom::String(_) => AtomType::String,
            Atom::Uuid(_) => AtomType::Uuid,
        }
    }

    /// Encode to the JSON wire form.
    pub fn to_json(&self) -> Json {
        match self {
            Atom::Integer(i) => json!(i),
            Atom::Real(r) => json!(r.0),
            Atom::Boolean(b) => json!(b),
            Atom::String(s) => json!(s),
            Atom::Uuid(u) => json!(["uuid", u.to_string()]),
        }
    }

    /// Decode from the JSON wire form, given the expected type. A
    /// `["named-uuid", name]` is resolved through `named`.
    pub fn from_json(
        v: &Json,
        ty: AtomType,
        named: &dyn Fn(&str) -> Option<Uuid>,
    ) -> Result<Atom, String> {
        match (ty, v) {
            (AtomType::Integer, Json::Number(n)) => n
                .as_i64()
                .map(Atom::Integer)
                .ok_or_else(|| format!("{n} is not an integer")),
            (AtomType::Real, Json::Number(n)) => n
                .as_f64()
                .map(|f| Atom::Real(OrderedF64(f)))
                .ok_or_else(|| format!("{n} is not a real")),
            (AtomType::Boolean, Json::Bool(b)) => Ok(Atom::Boolean(*b)),
            (AtomType::String, Json::String(s)) => Ok(Atom::String(s.clone())),
            (AtomType::Uuid, Json::Array(a)) if a.len() == 2 => {
                let tag = a[0].as_str().unwrap_or("");
                let val = a[1].as_str().unwrap_or("");
                match tag {
                    "uuid" => Uuid::parse(val)
                        .map(Atom::Uuid)
                        .ok_or_else(|| format!("bad uuid {val:?}")),
                    "named-uuid" => named(val)
                        .map(Atom::Uuid)
                        .ok_or_else(|| format!("unknown named-uuid {val:?}")),
                    other => Err(format!("bad uuid tag {other:?}")),
                }
            }
            (ty, v) => Err(format!("JSON {v} is not a valid {}", ty.name())),
        }
    }
}

/// A column value: a set of atoms or a map between atoms.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Datum {
    /// Set of atoms (scalars are singleton sets).
    Set(BTreeSet<Atom>),
    /// Map of atoms.
    Map(BTreeMap<Atom, Atom>),
}

impl Datum {
    /// A scalar datum (singleton set).
    pub fn scalar(a: Atom) -> Datum {
        let mut s = BTreeSet::new();
        s.insert(a);
        Datum::Set(s)
    }

    /// The empty set datum.
    pub fn empty() -> Datum {
        Datum::Set(BTreeSet::new())
    }

    /// Build a set datum from atoms.
    pub fn set(atoms: impl IntoIterator<Item = Atom>) -> Datum {
        Datum::Set(atoms.into_iter().collect())
    }

    /// Build a map datum from pairs.
    pub fn map(pairs: impl IntoIterator<Item = (Atom, Atom)>) -> Datum {
        Datum::Map(pairs.into_iter().collect())
    }

    /// Extract the single atom of a scalar datum.
    pub fn as_scalar(&self) -> Option<&Atom> {
        match self {
            Datum::Set(s) if s.len() == 1 => s.iter().next(),
            _ => None,
        }
    }

    /// Number of elements (set members or map entries).
    pub fn len(&self) -> usize {
        match self {
            Datum::Set(s) => s.len(),
            Datum::Map(m) => m.len(),
        }
    }

    /// True when the datum has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All UUIDs referenced by this datum (for referential integrity).
    pub fn referenced_uuids(&self) -> Vec<Uuid> {
        let mut out = Vec::new();
        let mut push = |a: &Atom| {
            if let Atom::Uuid(u) = a {
                out.push(*u);
            }
        };
        match self {
            Datum::Set(s) => s.iter().for_each(&mut push),
            Datum::Map(m) => m.iter().for_each(|(k, v)| {
                push(k);
                push(v);
            }),
        }
        out
    }

    /// Remove every occurrence of `uuid` (weak-reference cleanup). Returns
    /// true if anything was removed.
    pub fn purge_uuid(&mut self, uuid: Uuid) -> bool {
        match self {
            Datum::Set(s) => {
                let before = s.len();
                s.retain(|a| !matches!(a, Atom::Uuid(u) if *u == uuid));
                s.len() != before
            }
            Datum::Map(m) => {
                let before = m.len();
                m.retain(|k, v| {
                    !matches!(k, Atom::Uuid(u) if *u == uuid)
                        && !matches!(v, Atom::Uuid(u) if *u == uuid)
                });
                m.len() != before
            }
        }
    }

    /// Encode to the JSON wire form: a bare atom for scalars,
    /// `["set", [...]]` otherwise, `["map", [[k, v], ...]]` for maps.
    pub fn to_json(&self) -> Json {
        match self {
            Datum::Set(s) => {
                if s.len() == 1 {
                    s.iter().next().unwrap().to_json()
                } else {
                    json!(["set", s.iter().map(Atom::to_json).collect::<Vec<_>>()])
                }
            }
            Datum::Map(m) => json!([
                "map",
                m.iter()
                    .map(|(k, v)| json!([k.to_json(), v.to_json()]))
                    .collect::<Vec<_>>()
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uuid_text_roundtrip() {
        let u = Uuid(0xdeadbeef_0000_4000_8000_000000000001);
        assert_eq!(Uuid::parse(&u.to_string()), Some(u));
        assert_eq!(Uuid::parse("short"), None);
    }

    #[test]
    fn uuid_from_counter_unique() {
        let a = Uuid::from_counter(1, 0);
        let b = Uuid::from_counter(2, 0);
        let c = Uuid::from_counter(1, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn atom_json_roundtrip() {
        let no_named = |_: &str| None;
        for (atom, ty) in [
            (Atom::Integer(-5), AtomType::Integer),
            (Atom::Boolean(true), AtomType::Boolean),
            (Atom::s("hello"), AtomType::String),
            (Atom::Uuid(Uuid(42)), AtomType::Uuid),
        ] {
            let j = atom.to_json();
            assert_eq!(Atom::from_json(&j, ty, &no_named).unwrap(), atom);
        }
        // Type confusion is rejected.
        assert!(Atom::from_json(&json!("x"), AtomType::Integer, &no_named).is_err());
    }

    #[test]
    fn named_uuid_resolution() {
        let u = Uuid(7);
        let named = move |n: &str| if n == "row1" { Some(u) } else { None };
        let j = json!(["named-uuid", "row1"]);
        assert_eq!(
            Atom::from_json(&j, AtomType::Uuid, &named).unwrap(),
            Atom::Uuid(u)
        );
        let j2 = json!(["named-uuid", "nope"]);
        assert!(Atom::from_json(&j2, AtomType::Uuid, &named).is_err());
    }

    #[test]
    fn datum_scalar_and_set_json() {
        let scalar = Datum::scalar(Atom::i(5));
        assert_eq!(scalar.to_json(), json!(5));
        let set = Datum::set(vec![Atom::i(1), Atom::i(2)]);
        assert_eq!(set.to_json(), json!(["set", [1, 2]]));
        let empty = Datum::empty();
        assert_eq!(empty.to_json(), json!(["set", []]));
        let map = Datum::map(vec![(Atom::s("k"), Atom::i(9))]);
        assert_eq!(map.to_json(), json!(["map", [["k", 9]]]));
    }

    #[test]
    fn purge_weak_refs() {
        let u1 = Uuid(1);
        let u2 = Uuid(2);
        let mut d = Datum::set(vec![Atom::Uuid(u1), Atom::Uuid(u2), Atom::i(3)]);
        assert!(d.purge_uuid(u1));
        assert!(!d.purge_uuid(u1));
        assert_eq!(d.referenced_uuids(), vec![u2]);

        let mut m = Datum::map(vec![
            (Atom::s("a"), Atom::Uuid(u1)),
            (Atom::s("b"), Atom::i(1)),
        ]);
        assert!(m.purge_uuid(u1));
        assert_eq!(m.len(), 1);
    }
}
