//! The transactional database: tables, operations, atomicity, referential
//! integrity, and garbage collection (RFC 7047 §4–§5).
//!
//! Transactions execute against a copy-on-write overlay; an error in any
//! operation discards the overlay, giving all-or-nothing semantics.
//! Committed changes are reported as [`RowChange`]s, the feed for
//! [`crate::monitor`] streams — the property Nerpa's controller relies on
//! ("OVSDB ... can stream a database's ongoing series of changes, grouped
//! into transactions, to a subscriber", §4.1 of the paper).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde_json::{json, Map, Value as Json};

use crate::datum::{Atom, Datum, Uuid};
use crate::schema::{ColumnType, Schema, TableSchema};
use crate::snapshot;
use crate::wal::{self, DurabilityConfig, Wal, WalError, WalRecord, WAL_FILE};

/// The column values of one row (without its UUID).
pub type RowData = BTreeMap<String, Datum>;

/// One row's change in a committed transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct RowChange {
    /// Table name.
    pub table: String,
    /// Row UUID.
    pub uuid: Uuid,
    /// Contents before the transaction (`None` = row inserted).
    pub old: Option<Arc<RowData>>,
    /// Contents after the transaction (`None` = row deleted).
    pub new: Option<Arc<RowData>>,
}

/// One table's storage, with maintained uniqueness indexes.
#[derive(Debug, Clone, Default)]
struct Table {
    rows: HashMap<Uuid, Arc<RowData>>,
    /// index columns → projection → row uuid.
    unique: HashMap<Vec<String>, HashMap<Vec<Datum>, Uuid>>,
}

impl Table {
    fn project(cols: &[String], row: &RowData) -> Vec<Datum> {
        cols.iter()
            .map(|c| row.get(c).cloned().unwrap_or_else(Datum::empty))
            .collect()
    }
}

/// The attached durability layer: an open WAL plus its directory and
/// policy. Present only on databases created with [`Database::open`].
struct Durability {
    dir: PathBuf,
    wal: Wal,
    cfg: DurabilityConfig,
}

/// What [`Database::open`] found and did while recovering.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Commit index restored from the snapshot (0 = no snapshot).
    pub snapshot_commit_index: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Whether a torn tail was detected and truncated.
    pub truncated_tail: bool,
    /// Valid log bytes retained after recovery.
    pub wal_bytes: u64,
    /// Wall time spent loading + replaying.
    pub replay_duration: std::time::Duration,
}

/// An OVSDB-style transactional database.
pub struct Database {
    schema: Schema,
    tables: BTreeMap<String, Table>,
    uuid_counter: u64,
    /// True when the schema uses references or non-root tables, requiring
    /// the integrity/GC pass after each transaction.
    needs_gc: bool,
    /// Monotonic transaction counter.
    pub txn_counter: u64,
    /// Write-ahead log, when this database is durable.
    durability: Option<Durability>,
}

impl Database {
    /// Create an empty database for `schema`.
    pub fn new(schema: Schema) -> Database {
        let tables = schema
            .tables
            .keys()
            .map(|n| {
                let mut t = Table::default();
                for ix in &schema.tables[n].indexes {
                    t.unique.insert(ix.clone(), HashMap::new());
                }
                (n.clone(), t)
            })
            .collect();
        let needs_gc = schema.tables.values().any(|t| {
            !t.is_root
                || t.columns.values().any(|c| {
                    c.ty.key.ref_table.is_some()
                        || c.ty.value.as_ref().is_some_and(|v| v.ref_table.is_some())
                })
        });
        Database {
            schema,
            tables,
            uuid_counter: 0,
            needs_gc,
            txn_counter: 0,
            durability: None,
        }
    }

    /// Open (or create) a **durable** database in directory `dir`:
    /// load the snapshot if one exists, replay the write-ahead log on
    /// top of it (truncating a torn tail, refusing corrupt interiors),
    /// and arm WAL appends for every future committed transaction.
    ///
    /// Replay happens before this returns, so a server built on the
    /// recovered database serves monitors from crash-consistent state
    /// from its first accepted connection. While replaying, the
    /// `ovsdb_wal` health component reports `replaying(...)` (degraded);
    /// it flips to `ok(...)` on success.
    pub fn open(
        dir: &Path,
        schema: Schema,
        cfg: DurabilityConfig,
    ) -> Result<(Database, RecoveryReport), WalError> {
        std::fs::create_dir_all(dir)?;
        let health = &telemetry::global().health;
        health.set("ovsdb_wal", format!("replaying({})", dir.display()));
        let result = Database::recover(dir, schema, cfg);
        match &result {
            Ok((_, report)) => {
                wal::record_replay(report.replay_duration, report.truncated_tail);
                telemetry::record_event(
                    telemetry::Plane::Management,
                    "ovsdb.recover",
                    0,
                    &[
                        ("replayed_records", report.replayed_records),
                        ("truncated_tail", report.truncated_tail as u64),
                    ],
                );
                if report.truncated_tail {
                    // Crash recovery that lost a tail is a failure
                    // signal: snapshot the black box if armed.
                    telemetry::failure_signal(
                        "crash-recovery",
                        &format!("torn WAL tail truncated in {}", dir.display()),
                    );
                }
                health.set(
                    "ovsdb_wal",
                    format!(
                        "ok(replayed {} records in {} us{})",
                        report.replayed_records,
                        report.replay_duration.as_micros(),
                        if report.truncated_tail {
                            ", torn tail truncated"
                        } else {
                            ""
                        }
                    ),
                );
            }
            Err(e) => health.set("ovsdb_wal", format!("degraded({e})")),
        }
        result
    }

    fn recover(
        dir: &Path,
        schema: Schema,
        cfg: DurabilityConfig,
    ) -> Result<(Database, RecoveryReport), WalError> {
        let started = std::time::Instant::now();
        let mut db = Database::new(schema);
        let mut report = RecoveryReport::default();

        if let Some(snap) = snapshot::load(dir, db.schema())? {
            report.snapshot_commit_index = snap.commit_index;
            db.restore(snap)?;
        }

        let wal_path = dir.join(WAL_FILE);
        let image = match std::fs::read(&wal_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(WalError::Io(e)),
        };
        let scan = wal::scan(&image)?;
        report.truncated_tail = scan.torn_at.is_some();
        for record in &scan.records {
            if record.commit_index <= report.snapshot_commit_index {
                // The snapshot already covers this record (a crash
                // between snapshot rename and log truncation leaves an
                // overlapping prefix).
                continue;
            }
            if record.commit_index != db.txn_counter + 1 {
                return Err(WalError::CorruptRecord {
                    offset: 0,
                    reason: format!(
                        "gap between snapshot (commit {}) and WAL record {}",
                        db.txn_counter, record.commit_index
                    ),
                });
            }
            db.uuid_counter = record.uuid_counter;
            let before = db.txn_counter;
            let (results, _changes) = db.transact(&record.ops);
            if db.txn_counter != before + 1 {
                return Err(WalError::Replay {
                    index: record.commit_index,
                    reason: results.to_string(),
                });
            }
            report.replayed_records += 1;
        }
        let wal = Wal::open(&wal_path, cfg.fsync, scan.valid_bytes)?;
        report.wal_bytes = wal.bytes;
        report.replay_duration = started.elapsed();
        db.durability = Some(Durability {
            dir: dir.to_path_buf(),
            wal,
            cfg,
        });
        telemetry::log_info!(
            "ovsdb",
            "recovered {} (snapshot commit {}, {} wal records replayed{})",
            dir.display(),
            report.snapshot_commit_index,
            report.replayed_records,
            if report.truncated_tail {
                ", torn tail truncated"
            } else {
                ""
            }
        );
        Ok((db, report))
    }

    /// Restore a decoded snapshot into this (empty) database.
    fn restore(&mut self, snap: snapshot::SnapshotState) -> Result<(), WalError> {
        for (tname, uuid, row) in snap.rows {
            let Some(table) = self.tables.get_mut(&tname) else {
                return Err(WalError::CorruptSnapshot(format!(
                    "no table {tname:?} in schema"
                )));
            };
            let row = Arc::new(row);
            let cols: Vec<Vec<String>> = table.unique.keys().cloned().collect();
            for c in cols {
                let proj = Table::project(&c, &row);
                table.unique.get_mut(&c).unwrap().insert(proj, uuid);
            }
            table.rows.insert(uuid, row);
        }
        self.uuid_counter = snap.uuid_counter;
        self.txn_counter = snap.commit_index;
        Ok(())
    }

    /// The monotonic commit index: the number of transactions ever
    /// committed (durable or not). A restarted server that lost state
    /// reports a *lower* index than its predecessor — the signal
    /// supervisors use to detect an epoch reset.
    pub fn commit_index(&self) -> u64 {
        self.txn_counter
    }

    /// The UUID counter (exposed for snapshot encoding).
    pub(crate) fn uuid_counter(&self) -> u64 {
        self.uuid_counter
    }

    /// Path of the write-ahead log, when durable.
    pub fn wal_path(&self) -> Option<PathBuf> {
        self.durability.as_ref().map(|d| d.dir.join(WAL_FILE))
    }

    /// The durability directory, when durable.
    pub fn durable_dir(&self) -> Option<PathBuf> {
        self.durability.as_ref().map(|d| d.dir.clone())
    }

    /// Current WAL length in bytes (0 when not durable).
    pub fn wal_bytes(&self) -> u64 {
        self.durability.as_ref().map(|d| d.wal.bytes).unwrap_or(0)
    }

    /// Force a snapshot compaction now: atomically write the full state
    /// and truncate the log. No-op on a non-durable database.
    pub fn compact(&mut self) -> Result<(), WalError> {
        let Some(d) = self.durability.take() else {
            return Ok(());
        };
        // Detach while encoding so `encode` sees a plain database; the
        // layer is restored no matter how the write goes.
        let result = snapshot::write_atomic(&d.dir, self);
        self.durability = Some(d);
        result?;
        self.durability.as_mut().unwrap().wal.reset()?;
        wal::record_compaction();
        telemetry::log_info!(
            "ovsdb",
            "snapshot compaction at commit {} ({} tables)",
            self.txn_counter,
            self.tables.len()
        );
        Ok(())
    }

    /// The database schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows in a table (0 for unknown tables).
    pub fn table_len(&self, table: &str) -> usize {
        self.tables.get(table).map(|t| t.rows.len()).unwrap_or(0)
    }

    /// Get a row.
    pub fn get_row(&self, table: &str, uuid: Uuid) -> Option<&Arc<RowData>> {
        self.tables.get(table)?.rows.get(&uuid)
    }

    /// Iterate over the rows of a table.
    pub fn rows(&self, table: &str) -> impl Iterator<Item = (&Uuid, &Arc<RowData>)> {
        self.tables
            .get(table)
            .into_iter()
            .flat_map(|t| t.rows.iter())
    }

    /// Export the current contents of `tables` as a monitor-style
    /// initial `table-updates` object — byte-for-byte what a fresh
    /// `monitor` call on this database would return. This is the
    /// in-process snapshot hook the differential oracle resyncs against.
    pub fn monitor_snapshot(&self, tables: &[&str]) -> Result<Json, String> {
        let mut requests = Map::new();
        for t in tables {
            requests.insert((*t).to_string(), Json::Object(Map::new()));
        }
        let mon = crate::monitor::Monitor::parse(&Json::Object(requests), self)?;
        Ok(mon.initial_state(self))
    }

    /// Execute a transaction: a JSON array of operations. Returns the
    /// per-operation results plus the committed row changes (empty when
    /// the transaction aborted — the results array then contains the
    /// error).
    pub fn transact(&mut self, ops: &Json) -> (Json, Vec<RowChange>) {
        // UUID counter before any op runs: replaying the logged ops from
        // this value reproduces the exact same minted UUIDs, even though
        // aborted transactions in between consumed counter values without
        // being logged.
        let uuid_pre = self.uuid_counter;
        let ops_json = ops;
        let ops = match ops.as_array() {
            Some(a) => a,
            None => {
                return (
                    json!([{"error": "syntax error", "details": "params must be an array"}]),
                    vec![],
                )
            }
        };
        let mut txn = Txn {
            db: self,
            overlay: HashMap::new(),
            named: HashMap::new(),
            results: Vec::new(),
        };
        let mut failed = false;
        for op in ops {
            match txn.execute(op) {
                Ok(result) => txn.results.push(result),
                Err(e) => {
                    txn.results.push(json!({"error": "aborted", "details": e}));
                    failed = true;
                    break;
                }
            }
        }
        if !failed {
            if let Err(e) = txn.integrity_and_gc() {
                txn.results
                    .push(json!({"error": "constraint violation", "details": e}));
                failed = true;
            }
        }
        if !failed {
            if let Err(e) = txn.check_unique() {
                txn.results
                    .push(json!({"error": "constraint violation", "details": e}));
                failed = true;
            }
        }
        let results = std::mem::take(&mut txn.results);
        if failed {
            return (Json::Array(results), vec![]);
        }
        let overlay = std::mem::take(&mut txn.overlay);
        // Write-ahead: the record must be durable before the state
        // mutates, so a crash at any instant leaves either (a) no
        // record and no state change — the client never got a reply —
        // or (b) a full record that recovery replays. A torn tail is
        // case (a) by construction.
        if let Some(d) = self.durability.as_mut() {
            let record = WalRecord {
                commit_index: self.txn_counter + 1,
                uuid_counter: uuid_pre,
                ops: ops_json.clone(),
            };
            if let Err(e) = d.wal.append(&record) {
                telemetry::log_warn!("ovsdb", "WAL append failed, aborting txn: {e}");
                return (
                    json!([{"error": "io error", "details": e.to_string()}]),
                    vec![],
                );
            }
        }
        let changes = self.apply_overlay(overlay);
        self.txn_counter += 1;
        self.maybe_compact();
        (Json::Array(results), changes)
    }

    /// Compact when the WAL has outgrown its configured threshold. A
    /// compaction failure is logged but does not fail the (already
    /// durable) transaction.
    fn maybe_compact(&mut self) {
        let due = self
            .durability
            .as_ref()
            .is_some_and(|d| d.wal.bytes > d.cfg.snapshot_after_bytes);
        if due {
            if let Err(e) = self.compact() {
                telemetry::log_warn!("ovsdb", "snapshot compaction failed: {e}");
            }
        }
    }

    fn apply_overlay(
        &mut self,
        overlay: HashMap<(String, Uuid), Option<Arc<RowData>>>,
    ) -> Vec<RowChange> {
        let mut changes = Vec::new();
        for ((tname, uuid), new) in overlay {
            let table = self
                .tables
                .get_mut(&tname)
                .expect("overlay on unknown table");
            let old = table.rows.get(&uuid).cloned();
            if old == new {
                continue;
            }
            // Maintain unique indexes.
            let unique_keys: Vec<Vec<String>> = table.unique.keys().cloned().collect();
            for cols in unique_keys {
                if let Some(o) = &old {
                    let proj = Table::project(&cols, o);
                    table.unique.get_mut(&cols).unwrap().remove(&proj);
                }
                if let Some(n) = &new {
                    let proj = Table::project(&cols, n);
                    table.unique.get_mut(&cols).unwrap().insert(proj, uuid);
                }
            }
            match &new {
                Some(row) => {
                    table.rows.insert(uuid, row.clone());
                }
                None => {
                    table.rows.remove(&uuid);
                }
            }
            changes.push(RowChange {
                table: tname,
                uuid,
                old,
                new,
            });
        }
        // Deterministic order for downstream consumers.
        changes.sort_by(|a, b| (&a.table, a.uuid).cmp(&(&b.table, b.uuid)));
        changes
    }
}

/// An in-flight transaction: overlay over the database.
struct Txn<'a> {
    db: &'a mut Database,
    /// (table, uuid) → new contents (`None` = deleted). Only touched rows
    /// appear here.
    overlay: HashMap<(String, Uuid), Option<Arc<RowData>>>,
    named: HashMap<String, Uuid>,
    results: Vec<Json>,
}

impl<'a> Txn<'a> {
    fn table_schema(&self, name: &str) -> Result<&TableSchema, String> {
        self.db
            .schema
            .tables
            .get(name)
            .ok_or_else(|| format!("no table {name:?}"))
    }

    /// Current contents of a row, overlay-aware.
    fn get(&self, table: &str, uuid: Uuid) -> Option<Arc<RowData>> {
        match self.overlay.get(&(table.to_string(), uuid)) {
            Some(v) => v.clone(),
            None => self.db.tables.get(table)?.rows.get(&uuid).cloned(),
        }
    }

    /// All visible row uuids of a table, overlay-aware.
    fn all_uuids(&self, table: &str) -> Vec<Uuid> {
        let mut set: HashSet<Uuid> = self
            .db
            .tables
            .get(table)
            .map(|t| t.rows.keys().copied().collect())
            .unwrap_or_default();
        for ((t, u), v) in &self.overlay {
            if t == table {
                if v.is_some() {
                    set.insert(*u);
                } else {
                    set.remove(u);
                }
            }
        }
        let mut v: Vec<Uuid> = set.into_iter().collect();
        v.sort();
        v
    }

    /// Visible row count of a table, overlay-aware, without scanning the
    /// base table (O(|overlay|)).
    fn visible_count(&self, table: &str) -> usize {
        let base = self.db.tables.get(table).map(|t| t.rows.len()).unwrap_or(0);
        let mut n = base as isize;
        for ((t, u), v) in &self.overlay {
            if t == table {
                let in_base = self
                    .db
                    .tables
                    .get(table)
                    .is_some_and(|tb| tb.rows.contains_key(u));
                match (in_base, v.is_some()) {
                    (false, true) => n += 1,
                    (true, false) => n -= 1,
                    _ => {}
                }
            }
        }
        n.max(0) as usize
    }

    fn put(&mut self, table: &str, uuid: Uuid, row: Option<Arc<RowData>>) {
        self.overlay.insert((table.to_string(), uuid), row);
    }

    fn execute(&mut self, op: &Json) -> Result<Json, String> {
        let o = op.as_object().ok_or("operation must be an object")?;
        let opname = o
            .get("op")
            .and_then(Json::as_str)
            .ok_or("operation needs \"op\"")?;
        match opname {
            "insert" => self.op_insert(o),
            "select" => self.op_select(o),
            "update" => self.op_update(o),
            "mutate" => self.op_mutate(o),
            "delete" => self.op_delete(o),
            "wait" => self.op_wait(o),
            "comment" => Ok(json!({})),
            "abort" => Err("aborted by request".to_string()),
            other => Err(format!("unknown operation {other:?}")),
        }
    }

    fn parse_row(
        &self,
        ts: &TableSchema,
        row_json: &Json,
        defaults: bool,
    ) -> Result<RowData, String> {
        let obj = row_json.as_object().ok_or("\"row\" must be an object")?;
        let mut row = RowData::new();
        for (cname, cval) in obj {
            let cs = ts
                .columns
                .get(cname)
                .ok_or_else(|| format!("no column {cname:?} in table {:?}", ts.name))?;
            let named = |n: &str| self.named.get(n).copied();
            let datum = datum_from_json(cval, &cs.ty, &named)?;
            cs.ty
                .validate(&datum)
                .map_err(|e| format!("column {cname}: {e}"))?;
            row.insert(cname.clone(), datum);
        }
        if defaults {
            for (cname, cs) in &ts.columns {
                if !row.contains_key(cname) {
                    let d = cs.ty.default_datum();
                    cs.ty.validate(&d).map_err(|e| {
                        format!("column {cname} missing and has no valid default: {e}")
                    })?;
                    row.insert(cname.clone(), d);
                }
            }
        }
        Ok(row)
    }

    fn op_insert(&mut self, o: &Map<String, Json>) -> Result<Json, String> {
        let tname = o
            .get("table")
            .and_then(Json::as_str)
            .ok_or("insert needs \"table\"")?;
        let ts = self.table_schema(tname)?.clone();
        let empty = json!({});
        let row_json = o.get("row").unwrap_or(&empty);
        let row = self.parse_row(&ts, row_json, true)?;
        self.db.uuid_counter += 1;
        let uuid = Uuid::from_counter(self.db.uuid_counter, self.db.txn_counter);
        if let Some(name) = o.get("uuid-name").and_then(Json::as_str) {
            if self.named.contains_key(name) {
                return Err(format!("duplicate uuid-name {name:?}"));
            }
            self.named.insert(name.to_string(), uuid);
        }
        if ts.max_rows != usize::MAX && self.visible_count(tname) + 1 > ts.max_rows {
            return Err(format!("table {tname:?} is full (maxRows)"));
        }
        self.put(tname, uuid, Some(Arc::new(row)));
        Ok(json!({"uuid": ["uuid", uuid.to_string()]}))
    }

    /// Evaluate a `where` clause, returning matching row uuids.
    fn eval_where(&self, ts: &TableSchema, where_json: &Json) -> Result<Vec<Uuid>, String> {
        let conds = where_json.as_array().ok_or("\"where\" must be an array")?;
        // Validate condition shape and column names up front so an empty
        // table still reports bad conditions.
        for cond in conds {
            let c = cond
                .as_array()
                .ok_or("condition must be [column, function, value]")?;
            if c.len() != 3 {
                return Err("condition must have 3 elements".to_string());
            }
            let col = c[0].as_str().ok_or("condition column must be a string")?;
            if col != "_uuid" && !ts.columns.contains_key(col) {
                return Err(format!("no column {col:?}"));
            }
            let func = c[1].as_str().ok_or("condition function must be a string")?;
            if !matches!(
                func,
                "==" | "!=" | "<" | "<=" | ">" | ">=" | "includes" | "excludes"
            ) {
                return Err(format!("unknown condition function {func:?}"));
            }
        }
        let mut out = Vec::new();
        'rows: for uuid in self.all_uuids(&ts.name) {
            let row = self.get(&ts.name, uuid).expect("visible row");
            for cond in conds {
                let c = cond
                    .as_array()
                    .ok_or("condition must be [column, function, value]")?;
                if c.len() != 3 {
                    return Err("condition must have 3 elements".to_string());
                }
                let col = c[0].as_str().ok_or("condition column must be a string")?;
                let func = c[1].as_str().ok_or("condition function must be a string")?;
                let (datum, cty);
                if col == "_uuid" {
                    datum = Datum::scalar(Atom::Uuid(uuid));
                    cty = ColumnType::scalar(crate::datum::AtomType::Uuid);
                } else {
                    let cs = ts
                        .columns
                        .get(col)
                        .ok_or_else(|| format!("no column {col:?}"))?;
                    datum = row.get(col).cloned().unwrap_or_else(Datum::empty);
                    cty = cs.ty.clone();
                }
                let named = |n: &str| self.named.get(n).copied();
                let arg = datum_from_json(&c[2], &cty, &named)?;
                if !eval_condition(&datum, func, &arg)? {
                    continue 'rows;
                }
            }
            out.push(uuid);
        }
        Ok(out)
    }

    fn op_select(&mut self, o: &Map<String, Json>) -> Result<Json, String> {
        let tname = o
            .get("table")
            .and_then(Json::as_str)
            .ok_or("select needs \"table\"")?;
        let ts = self.table_schema(tname)?.clone();
        let empty = json!([]);
        let matches = self.eval_where(&ts, o.get("where").unwrap_or(&empty))?;
        let columns: Option<Vec<String>> = o.get("columns").and_then(Json::as_array).map(|a| {
            a.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        });
        let mut rows = Vec::new();
        for uuid in matches {
            let row = self.get(tname, uuid).unwrap();
            rows.push(row_to_json(uuid, &row, columns.as_deref()));
        }
        Ok(json!({"rows": rows}))
    }

    fn op_update(&mut self, o: &Map<String, Json>) -> Result<Json, String> {
        let tname = o
            .get("table")
            .and_then(Json::as_str)
            .ok_or("update needs \"table\"")?;
        let ts = self.table_schema(tname)?.clone();
        let row_json = o.get("row").ok_or("update needs \"row\"")?;
        let updates = self.parse_row(&ts, row_json, false)?;
        let empty = json!([]);
        let matches = self.eval_where(&ts, o.get("where").unwrap_or(&empty))?;
        for uuid in &matches {
            let mut row = (*self.get(tname, *uuid).unwrap()).clone();
            for (c, d) in &updates {
                row.insert(c.clone(), d.clone());
            }
            self.put(tname, *uuid, Some(Arc::new(row)));
        }
        Ok(json!({"count": matches.len()}))
    }

    fn op_mutate(&mut self, o: &Map<String, Json>) -> Result<Json, String> {
        let tname = o
            .get("table")
            .and_then(Json::as_str)
            .ok_or("mutate needs \"table\"")?;
        let ts = self.table_schema(tname)?.clone();
        let muts = o
            .get("mutations")
            .and_then(Json::as_array)
            .ok_or("mutate needs \"mutations\"")?
            .clone();
        let empty = json!([]);
        let matches = self.eval_where(&ts, o.get("where").unwrap_or(&empty))?;
        for uuid in &matches {
            let mut row = (*self.get(tname, *uuid).unwrap()).clone();
            for m in &muts {
                let m = m
                    .as_array()
                    .ok_or("mutation must be [column, mutator, value]")?;
                if m.len() != 3 {
                    return Err("mutation must have 3 elements".to_string());
                }
                let col = m[0].as_str().ok_or("mutation column must be a string")?;
                let mutator = m[1].as_str().ok_or("mutator must be a string")?;
                let cs = ts
                    .columns
                    .get(col)
                    .ok_or_else(|| format!("no column {col:?}"))?;
                let cur = row
                    .get(col)
                    .cloned()
                    .unwrap_or_else(|| cs.ty.default_datum());
                let named = |n: &str| self.named.get(n).copied();
                let new = apply_mutation(&cur, mutator, &m[2], &cs.ty, &named)?;
                cs.ty
                    .validate(&new)
                    .map_err(|e| format!("column {col}: {e}"))?;
                row.insert(col.to_string(), new);
            }
            self.put(tname, *uuid, Some(Arc::new(row)));
        }
        Ok(json!({"count": matches.len()}))
    }

    fn op_delete(&mut self, o: &Map<String, Json>) -> Result<Json, String> {
        let tname = o
            .get("table")
            .and_then(Json::as_str)
            .ok_or("delete needs \"table\"")?;
        let ts = self.table_schema(tname)?.clone();
        let empty = json!([]);
        let matches = self.eval_where(&ts, o.get("where").unwrap_or(&empty))?;
        for uuid in &matches {
            self.put(tname, *uuid, None);
        }
        Ok(json!({"count": matches.len()}))
    }

    /// Non-blocking `wait`: succeeds iff the condition already holds.
    fn op_wait(&mut self, o: &Map<String, Json>) -> Result<Json, String> {
        let tname = o
            .get("table")
            .and_then(Json::as_str)
            .ok_or("wait needs \"table\"")?;
        let ts = self.table_schema(tname)?.clone();
        let empty = json!([]);
        let matches = self.eval_where(&ts, o.get("where").unwrap_or(&empty))?;
        let until = o.get("until").and_then(Json::as_str).unwrap_or("==");
        let expected = o
            .get("rows")
            .and_then(Json::as_array)
            .ok_or("wait needs \"rows\"")?;
        let columns: Option<Vec<String>> = o.get("columns").and_then(Json::as_array).map(|a| {
            a.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        });
        // Compare the matched rows (projected) against the expected rows.
        let mut actual: Vec<RowData> = Vec::new();
        for uuid in matches {
            let row = self.get(tname, uuid).unwrap();
            let projected: RowData = match &columns {
                Some(cols) => cols
                    .iter()
                    .filter_map(|c| row.get(c).map(|d| (c.clone(), d.clone())))
                    .collect(),
                None => (*row).clone(),
            };
            actual.push(projected);
        }
        let mut expected_rows = Vec::new();
        for r in expected {
            expected_rows.push(self.parse_row(&ts, r, false)?);
        }
        let equal = {
            let mut a = actual.clone();
            let mut b = expected_rows.clone();
            a.sort();
            b.sort();
            a == b
        };
        let ok = match until {
            "==" => equal,
            "!=" => !equal,
            other => return Err(format!("bad until {other:?}")),
        };
        if ok {
            Ok(json!({}))
        } else {
            Err("wait condition not satisfied".to_string())
        }
    }

    /// Referential integrity + garbage collection, run over the overlay
    /// view before commit. Errors abort the transaction.
    fn integrity_and_gc(&mut self) -> Result<(), String> {
        if !self.db.needs_gc {
            return Ok(());
        }
        loop {
            let mut changed = false;
            // Collect the visible universe.
            let table_names: Vec<String> = self.db.schema.tables.keys().cloned().collect();
            let mut universe: HashMap<String, Vec<Uuid>> = HashMap::new();
            for t in &table_names {
                universe.insert(t.clone(), self.all_uuids(t));
            }
            let exists = |table: &str, u: Uuid, me: &Self| -> bool { me.get(table, u).is_some() };
            // Strong-reference targets per table, and weak purges.
            let mut strong_refs: HashMap<(String, Uuid), usize> = HashMap::new();
            let mut weak_purges: Vec<(String, Uuid, String, Uuid)> = Vec::new(); // table,row,col,target
            for t in &table_names {
                let ts = self.db.schema.tables[t].clone();
                for uuid in &universe[t] {
                    let row = self.get(t, *uuid).unwrap();
                    for (cname, cs) in &ts.columns {
                        let datum = match row.get(cname) {
                            Some(d) => d,
                            None => continue,
                        };
                        for (bt, atoms) in [
                            (&cs.ty.key, true),
                            (cs.ty.value.as_ref().unwrap_or(&cs.ty.key), false),
                        ] {
                            // For set columns, only the key side exists.
                            if !atoms && cs.ty.value.is_none() {
                                continue;
                            }
                            let Some(rt) = &bt.ref_table else { continue };
                            for target in datum.referenced_uuids() {
                                // referenced_uuids mixes key and value
                                // uuids; acceptable for both-strong or
                                // both-weak schemas, which is what we use.
                                if bt.ref_strong {
                                    if exists(rt, target, self) {
                                        *strong_refs.entry((rt.clone(), target)).or_insert(0) += 1;
                                    } else {
                                        return Err(format!(
                                            "strong reference from {t}.{cname} to missing row \
                                             {target} in {rt}"
                                        ));
                                    }
                                } else if !exists(rt, target, self) {
                                    weak_purges.push((t.clone(), *uuid, cname.clone(), target));
                                }
                            }
                            break; // referenced_uuids covered the datum
                        }
                    }
                }
            }
            for (t, uuid, col, target) in weak_purges {
                let mut row = (*self.get(&t, uuid).unwrap()).clone();
                if let Some(d) = row.get_mut(&col) {
                    if d.purge_uuid(target) {
                        changed = true;
                    }
                }
                self.put(&t, uuid, Some(Arc::new(row)));
            }
            // GC: non-root rows without strong inbound references die.
            for t in &table_names {
                if self.db.schema.tables[t].is_root {
                    continue;
                }
                for uuid in &universe[t] {
                    if self.get(t, *uuid).is_none() {
                        continue; // already deleted this pass
                    }
                    if !strong_refs.contains_key(&(t.clone(), *uuid)) {
                        self.put(t, *uuid, None);
                        changed = true;
                    }
                }
            }
            if !changed {
                return Ok(());
            }
        }
    }

    /// Verify the uniqueness constraints for touched rows.
    fn check_unique(&self) -> Result<(), String> {
        // Group touched rows by table.
        type Touched<'a> = HashMap<&'a str, Vec<(Uuid, Option<&'a Arc<RowData>>)>>;
        let mut touched: Touched<'_> = HashMap::new();
        for ((t, u), v) in &self.overlay {
            touched
                .entry(t.as_str())
                .or_default()
                .push((*u, v.as_ref()));
        }
        for (tname, rows) in touched {
            let ts = &self.db.schema.tables[tname];
            if ts.indexes.is_empty() {
                continue;
            }
            let table = &self.db.tables[tname];
            for cols in &ts.indexes {
                let base = &table.unique[cols];
                let mut new_projections: HashMap<Vec<Datum>, Uuid> = HashMap::new();
                for (uuid, new) in &rows {
                    if let Some(row) = new {
                        let proj = Table::project(cols, row);
                        // Conflict with another touched row?
                        if let Some(prev) = new_projections.insert(proj.clone(), *uuid) {
                            if prev != *uuid {
                                return Err(format!(
                                    "uniqueness violation on {tname} index {cols:?}"
                                ));
                            }
                        }
                        // Conflict with an untouched base row?
                        if let Some(owner) = base.get(&proj) {
                            let owner_touched =
                                self.overlay.contains_key(&(tname.to_string(), *owner));
                            if *owner != *uuid && !owner_touched {
                                return Err(format!(
                                    "uniqueness violation on {tname} index {cols:?}"
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Encode a row (with its UUID) to JSON, optionally projecting columns.
pub fn row_to_json(uuid: Uuid, row: &RowData, columns: Option<&[String]>) -> Json {
    let mut obj = Map::new();
    let include = |c: &str| {
        columns
            .map(|cols| cols.iter().any(|x| x == c))
            .unwrap_or(true)
    };
    if include("_uuid") || columns.is_none() {
        obj.insert("_uuid".to_string(), json!(["uuid", uuid.to_string()]));
    }
    for (c, d) in row {
        if include(c) {
            obj.insert(c.clone(), d.to_json());
        }
    }
    Json::Object(obj)
}

/// Parse a datum from wire JSON given its column type.
pub fn datum_from_json(
    v: &Json,
    ty: &ColumnType,
    named: &dyn Fn(&str) -> Option<Uuid>,
) -> Result<Datum, String> {
    // ["set", [...]] / ["map", [...]] forms.
    if let Some(arr) = v.as_array() {
        match arr.first().and_then(Json::as_str) {
            Some("set") => {
                let items = arr.get(1).and_then(Json::as_array).ok_or("bad set")?;
                let mut set = std::collections::BTreeSet::new();
                for item in items {
                    set.insert(Atom::from_json(item, ty.key.ty, named)?);
                }
                return Ok(Datum::Set(set));
            }
            Some("map") => {
                let vt = ty.value.as_ref().ok_or("map datum for a set column")?;
                let items = arr.get(1).and_then(Json::as_array).ok_or("bad map")?;
                let mut map = BTreeMap::new();
                for item in items {
                    let pair = item.as_array().ok_or("map entry must be a pair")?;
                    if pair.len() != 2 {
                        return Err("map entry must be a pair".to_string());
                    }
                    let k = Atom::from_json(&pair[0], ty.key.ty, named)?;
                    let val = Atom::from_json(&pair[1], vt.ty, named)?;
                    map.insert(k, val);
                }
                return Ok(Datum::Map(map));
            }
            _ => {}
        }
    }
    // Bare atom (scalar shorthand).
    let atom = Atom::from_json(v, ty.key.ty, named)?;
    Ok(Datum::scalar(atom))
}

/// Evaluate an RFC 7047 condition function.
fn eval_condition(datum: &Datum, func: &str, arg: &Datum) -> Result<bool, String> {
    match func {
        "==" => Ok(datum == arg),
        "!=" => Ok(datum != arg),
        "<" | "<=" | ">" | ">=" => {
            let (a, b) = match (datum.as_scalar(), arg.as_scalar()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(format!("{func} requires scalar operands")),
            };
            Ok(match func {
                "<" => a < b,
                "<=" => a <= b,
                ">" => a > b,
                _ => a >= b,
            })
        }
        "includes" => match (datum, arg) {
            (Datum::Set(s), Datum::Set(sub)) => Ok(sub.iter().all(|a| s.contains(a))),
            (Datum::Map(m), Datum::Map(sub)) => Ok(sub.iter().all(|(k, v)| m.get(k) == Some(v))),
            _ => Err("includes requires matching collection kinds".to_string()),
        },
        "excludes" => match (datum, arg) {
            (Datum::Set(s), Datum::Set(sub)) => Ok(sub.iter().all(|a| !s.contains(a))),
            (Datum::Map(m), Datum::Map(sub)) => Ok(sub.iter().all(|(k, v)| m.get(k) != Some(v))),
            _ => Err("excludes requires matching collection kinds".to_string()),
        },
        other => Err(format!("unknown condition function {other:?}")),
    }
}

/// Apply an RFC 7047 mutator.
fn apply_mutation(
    cur: &Datum,
    mutator: &str,
    arg_json: &Json,
    ty: &ColumnType,
    named: &dyn Fn(&str) -> Option<Uuid>,
) -> Result<Datum, String> {
    match mutator {
        "+=" | "-=" | "*=" | "/=" | "%=" => {
            let arg = datum_from_json(arg_json, &ColumnType::scalar(ty.key.ty), named)?;
            let x = match arg.as_scalar() {
                Some(Atom::Integer(i)) => *i,
                _ => return Err("arithmetic mutators need an integer argument".to_string()),
            };
            let apply = |v: i64| -> Result<i64, String> {
                Ok(match mutator {
                    "+=" => v.wrapping_add(x),
                    "-=" => v.wrapping_sub(x),
                    "*=" => v.wrapping_mul(x),
                    "/=" => {
                        if x == 0 {
                            return Err("division by zero".to_string());
                        }
                        v / x
                    }
                    _ => {
                        if x == 0 {
                            return Err("modulo by zero".to_string());
                        }
                        v % x
                    }
                })
            };
            match cur {
                Datum::Set(s) => {
                    let mut out = std::collections::BTreeSet::new();
                    for a in s {
                        match a {
                            Atom::Integer(i) => {
                                out.insert(Atom::Integer(apply(*i)?));
                            }
                            _ => return Err("arithmetic mutator on non-integer".to_string()),
                        }
                    }
                    Ok(Datum::Set(out))
                }
                Datum::Map(_) => Err("arithmetic mutator on a map".to_string()),
            }
        }
        "insert" => {
            let arg = datum_from_json(arg_json, ty, named)?;
            match (cur.clone(), arg) {
                (Datum::Set(mut s), Datum::Set(add)) => {
                    s.extend(add);
                    Ok(Datum::Set(s))
                }
                (Datum::Map(mut m), Datum::Map(add)) => {
                    for (k, v) in add {
                        m.entry(k).or_insert(v);
                    }
                    Ok(Datum::Map(m))
                }
                _ => Err("insert mutator kind mismatch".to_string()),
            }
        }
        "delete" => {
            // For maps the argument may be a set of keys or a map of
            // exact pairs.
            match cur.clone() {
                Datum::Set(mut s) => {
                    let arg = datum_from_json(arg_json, ty, named)?;
                    match arg {
                        Datum::Set(del) => {
                            s.retain(|a| !del.contains(a));
                            Ok(Datum::Set(s))
                        }
                        _ => Err("delete mutator kind mismatch".to_string()),
                    }
                }
                Datum::Map(mut m) => {
                    let key_set_ty = ColumnType {
                        key: ty.key.clone(),
                        value: None,
                        min: 0,
                        max: usize::MAX,
                    };
                    if let Ok(Datum::Set(keys)) = datum_from_json(arg_json, &key_set_ty, named) {
                        m.retain(|k, _| !keys.contains(k));
                        return Ok(Datum::Map(m));
                    }
                    let arg = datum_from_json(arg_json, ty, named)?;
                    match arg {
                        Datum::Map(pairs) => {
                            m.retain(|k, v| pairs.get(k) != Some(v));
                            Ok(Datum::Map(m))
                        }
                        _ => Err("delete mutator kind mismatch".to_string()),
                    }
                }
            }
        }
        other => Err(format!("unknown mutator {other:?}")),
    }
}
