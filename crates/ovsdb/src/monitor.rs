//! Monitors: change-stream subscriptions (RFC 7047 §4.1.5–§4.1.6).
//!
//! A monitor selects tables (and optionally columns) and receives the
//! initial contents followed by one update notification per committed
//! transaction. This is the mechanism Nerpa's controller uses to feed the
//! management plane into the incremental control plane.

use std::collections::BTreeMap;

use serde_json::{json, Map, Value as Json};

use crate::db::{Database, RowChange};

/// Which change kinds a monitored table reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorSelect {
    /// Send the initial table contents on registration.
    pub initial: bool,
    /// Report row insertions.
    pub insert: bool,
    /// Report row deletions.
    pub delete: bool,
    /// Report row modifications.
    pub modify: bool,
}

impl Default for MonitorSelect {
    fn default() -> Self {
        MonitorSelect {
            initial: true,
            insert: true,
            delete: true,
            modify: true,
        }
    }
}

/// Subscription details for one table.
#[derive(Debug, Clone, Default)]
pub struct MonitorTable {
    /// Columns to report (`None` = all).
    pub columns: Option<Vec<String>>,
    /// Which change kinds to report.
    pub select: MonitorSelect,
}

/// A registered monitor.
#[derive(Debug, Clone, Default)]
pub struct Monitor {
    /// Monitored tables.
    pub tables: BTreeMap<String, MonitorTable>,
}

impl Monitor {
    /// Parse the `monitor` request's third parameter:
    /// `{table: {columns: [...], select: {...}} | [...alternatives...]}`.
    pub fn parse(requests: &Json, db: &Database) -> Result<Monitor, String> {
        let obj = requests
            .as_object()
            .ok_or("monitor requests must be an object")?;
        let mut tables = BTreeMap::new();
        for (tname, spec) in obj {
            if db.schema().table(tname).is_none() {
                return Err(format!("no table {tname:?}"));
            }
            // A spec may be a single request or an array of requests; we
            // support a single request (the common case).
            let spec = if let Some(arr) = spec.as_array() {
                arr.first().cloned().unwrap_or(json!({}))
            } else {
                spec.clone()
            };
            let mut mt = MonitorTable::default();
            if let Some(cols) = spec.get("columns").and_then(Json::as_array) {
                let mut list = Vec::new();
                for c in cols {
                    let c = c.as_str().ok_or("column names must be strings")?;
                    if !db.schema().table(tname).unwrap().columns.contains_key(c) {
                        return Err(format!("no column {tname}.{c}"));
                    }
                    list.push(c.to_string());
                }
                mt.columns = Some(list);
            }
            if let Some(sel) = spec.get("select").and_then(Json::as_object) {
                let get = |k: &str| sel.get(k).and_then(Json::as_bool).unwrap_or(true);
                mt.select = MonitorSelect {
                    initial: get("initial"),
                    insert: get("insert"),
                    delete: get("delete"),
                    modify: get("modify"),
                };
            }
            tables.insert(tname.clone(), mt);
        }
        Ok(Monitor { tables })
    }

    /// The initial `table-updates` object (rows reported as inserts).
    pub fn initial_state(&self, db: &Database) -> Json {
        let mut out = Map::new();
        for (tname, mt) in &self.tables {
            if !mt.select.initial {
                continue;
            }
            let mut rows = Map::new();
            for (uuid, row) in db.rows(tname) {
                rows.insert(
                    uuid.to_string(),
                    json!({"new": project(row, mt.columns.as_deref())}),
                );
            }
            if !rows.is_empty() {
                out.insert(tname.clone(), Json::Object(rows));
            }
        }
        Json::Object(out)
    }

    /// Format committed changes as a `table-updates` object; `None` when
    /// nothing this monitor selects changed.
    pub fn format_changes(&self, changes: &[RowChange]) -> Option<Json> {
        let mut out = Map::new();
        for change in changes {
            let Some(mt) = self.tables.get(&change.table) else {
                continue;
            };
            let update = match (&change.old, &change.new) {
                (None, Some(new)) => {
                    if !mt.select.insert {
                        continue;
                    }
                    json!({"new": project(new, mt.columns.as_deref())})
                }
                (Some(old), None) => {
                    if !mt.select.delete {
                        continue;
                    }
                    json!({"old": project(old, mt.columns.as_deref())})
                }
                (Some(old), Some(new)) => {
                    if !mt.select.modify {
                        continue;
                    }
                    // `old` reports only the columns that changed.
                    let mut old_changed = Map::new();
                    for (c, d) in old.iter() {
                        if mt
                            .columns
                            .as_deref()
                            .map(|cols| cols.iter().any(|x| x == c))
                            .unwrap_or(true)
                            && new.get(c) != Some(d)
                        {
                            old_changed.insert(c.clone(), d.to_json());
                        }
                    }
                    if old_changed.is_empty() {
                        continue; // no selected column changed
                    }
                    json!({
                        "old": Json::Object(old_changed),
                        "new": project(new, mt.columns.as_deref()),
                    })
                }
                (None, None) => continue,
            };
            out.entry(change.table.clone())
                .or_insert_with(|| Json::Object(Map::new()))
                .as_object_mut()
                .unwrap()
                .insert(change.uuid.to_string(), update);
        }
        if out.is_empty() {
            None
        } else {
            Some(Json::Object(out))
        }
    }
}

fn project(row: &crate::db::RowData, columns: Option<&[String]>) -> Json {
    let mut obj = Map::new();
    for (c, d) in row {
        if columns
            .map(|cols| cols.iter().any(|x| x == c))
            .unwrap_or(true)
        {
            obj.insert(c.clone(), d.to_json());
        }
    }
    Json::Object(obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use serde_json::json;

    fn db() -> Database {
        let schema = Schema::from_json(&json!({
            "name": "test",
            "tables": {
                "Port": {"columns": {
                    "name": {"type": "string"},
                    "tag": {"type": {"key": "integer", "min": 0, "max": 1}}
                }, "isRoot": true}
            }
        }))
        .unwrap();
        Database::new(schema)
    }

    #[test]
    fn initial_and_update_stream() {
        let mut db = db();
        let (res, _) = db.transact(&json!([
            {"op": "insert", "table": "Port", "row": {"name": "p1", "tag": 10}}
        ]));
        assert!(res[0]["uuid"].is_array(), "{res}");

        let mon = Monitor::parse(&json!({"Port": {}}), &db).unwrap();
        let init = mon.initial_state(&db);
        let port_rows = init["Port"].as_object().unwrap();
        assert_eq!(port_rows.len(), 1);
        let first = port_rows.values().next().unwrap();
        assert_eq!(first["new"]["name"], json!("p1"));

        // Modify: old must carry only the changed column.
        let (_, changes) = db.transact(&json!([
            {"op": "update", "table": "Port", "where": [["name", "==", "p1"]],
             "row": {"tag": 20}}
        ]));
        let upd = mon.format_changes(&changes).unwrap();
        let (_, entry) = upd["Port"].as_object().unwrap().iter().next().unwrap();
        assert_eq!(entry["old"], json!({"tag": 10}));
        assert_eq!(entry["new"]["tag"], json!(20));
        assert_eq!(entry["new"]["name"], json!("p1"));

        // Delete.
        let (_, changes) = db.transact(&json!([
            {"op": "delete", "table": "Port", "where": []}
        ]));
        let upd = mon.format_changes(&changes).unwrap();
        let (_, entry) = upd["Port"].as_object().unwrap().iter().next().unwrap();
        assert!(entry.get("new").is_none());
        assert_eq!(entry["old"]["name"], json!("p1"));
    }

    #[test]
    fn column_projection_and_select_flags() {
        let mut db = db();
        let mon = Monitor::parse(
            &json!({"Port": {"columns": ["name"], "select": {"modify": false}}}),
            &db,
        )
        .unwrap();
        let (_, changes) = db.transact(&json!([
            {"op": "insert", "table": "Port", "row": {"name": "p1", "tag": 1}}
        ]));
        let upd = mon.format_changes(&changes).unwrap();
        let (_, entry) = upd["Port"].as_object().unwrap().iter().next().unwrap();
        assert_eq!(entry["new"], json!({"name": "p1"}));

        // A tag-only change is invisible: modify deselected AND the
        // selected column did not change.
        let (_, changes) = db.transact(&json!([
            {"op": "update", "table": "Port", "where": [], "row": {"tag": 9}}
        ]));
        assert!(mon.format_changes(&changes).is_none());
    }

    #[test]
    fn parse_rejects_unknown() {
        let db = db();
        assert!(Monitor::parse(&json!({"NoSuch": {}}), &db).is_err());
        assert!(Monitor::parse(&json!({"Port": {"columns": ["zap"]}}), &db).is_err());
    }
}
