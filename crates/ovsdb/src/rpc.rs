//! JSON-RPC 1.0-style message framing over byte streams.
//!
//! Messages are newline-delimited JSON objects (one per line), carrying
//! either a request (`method`/`params`/`id`), a response
//! (`result`/`error`/`id`), or a notification (a request whose `id` is
//! `null`). This mirrors the protocol `ovsdb-server` speaks, with NDJSON
//! framing instead of a streaming JSON parser.

use std::io::{BufRead, BufReader, Read, Write};
use std::sync::OnceLock;

use serde_json::{json, Value as Json};
use telemetry::Counter;

/// Wire-level counters, registered once in the global registry and
/// shared by every connection in the process.
fn wire_tx_bytes() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        telemetry::global().registry.counter(
            "ovsdb_wire_tx_bytes_total",
            "Bytes written to OVSDB JSON-RPC streams",
        )
    })
}

fn wire_rx_bytes() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        telemetry::global().registry.counter(
            "ovsdb_wire_rx_bytes_total",
            "Bytes read from OVSDB JSON-RPC streams",
        )
    })
}

fn wire_messages() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        telemetry::global().registry.counter(
            "ovsdb_wire_messages_total",
            "OVSDB JSON-RPC messages written",
        )
    })
}

/// A decoded JSON-RPC message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A method call expecting a response.
    Request {
        /// Request id, echoed in the response.
        id: Json,
        /// Method name.
        method: String,
        /// Parameters.
        params: Json,
    },
    /// A method call with no response expected (`id = null`).
    Notification {
        /// Method name.
        method: String,
        /// Parameters.
        params: Json,
    },
    /// A response to an earlier request.
    Response {
        /// The id of the request this answers.
        id: Json,
        /// Result (`null` on error).
        result: Json,
        /// Error (`null` on success).
        error: Json,
    },
}

impl Message {
    /// Parse one JSON object into a message.
    pub fn from_json(v: Json) -> Result<Message, String> {
        let obj = v.as_object().ok_or("message must be a JSON object")?;
        if let Some(method) = obj.get("method").and_then(Json::as_str) {
            let params = obj.get("params").cloned().unwrap_or(json!([]));
            let id = obj.get("id").cloned().unwrap_or(Json::Null);
            if id.is_null() {
                return Ok(Message::Notification {
                    method: method.to_string(),
                    params,
                });
            }
            return Ok(Message::Request {
                id,
                method: method.to_string(),
                params,
            });
        }
        if obj.contains_key("result") || obj.contains_key("error") {
            return Ok(Message::Response {
                id: obj.get("id").cloned().unwrap_or(Json::Null),
                result: obj.get("result").cloned().unwrap_or(Json::Null),
                error: obj.get("error").cloned().unwrap_or(Json::Null),
            });
        }
        Err("message is neither a request nor a response".to_string())
    }

    /// Encode to a JSON object.
    pub fn to_json(&self) -> Json {
        match self {
            Message::Request { id, method, params } => {
                json!({"method": method, "params": params, "id": id})
            }
            Message::Notification { method, params } => {
                json!({"method": method, "params": params, "id": null})
            }
            Message::Response { id, result, error } => {
                json!({"result": result, "error": error, "id": id})
            }
        }
    }
}

/// Write one message to a stream (NDJSON framing).
pub fn write_message(w: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    let mut line = serde_json::to_vec(&msg.to_json())?;
    line.push(b'\n');
    w.write_all(&line)?;
    wire_tx_bytes().add(line.len() as u64);
    wire_messages().inc();
    w.flush()
}

/// A message reader over any byte stream.
pub struct MessageReader<R: Read> {
    inner: BufReader<R>,
    line: String,
}

impl<R: Read> MessageReader<R> {
    /// Wrap a stream.
    pub fn new(r: R) -> Self {
        MessageReader {
            inner: BufReader::new(r),
            line: String::new(),
        }
    }

    /// Read the next message; `Ok(None)` on clean EOF.
    pub fn read(&mut self) -> std::io::Result<Option<Message>> {
        loop {
            self.line.clear();
            let n = self.inner.read_line(&mut self.line)?;
            if n == 0 {
                return Ok(None);
            }
            wire_rx_bytes().add(n as u64);
            let trimmed = self.line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let v: Json = serde_json::from_str(trimmed)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            return Message::from_json(v)
                .map(Some)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_a_pipe() {
        let mut buf = Vec::new();
        let req = Message::Request {
            id: json!(1),
            method: "transact".to_string(),
            params: json!(["db", {"op": "comment"}]),
        };
        let notif = Message::Notification {
            method: "update".to_string(),
            params: json!(["mon", {}]),
        };
        let resp = Message::Response {
            id: json!(1),
            result: json!([{}]),
            error: Json::Null,
        };
        write_message(&mut buf, &req).unwrap();
        write_message(&mut buf, &notif).unwrap();
        write_message(&mut buf, &resp).unwrap();

        let mut reader = MessageReader::new(buf.as_slice());
        assert_eq!(reader.read().unwrap().unwrap(), req);
        assert_eq!(reader.read().unwrap().unwrap(), notif);
        assert_eq!(reader.read().unwrap().unwrap(), resp);
        assert_eq!(reader.read().unwrap(), None);
    }

    #[test]
    fn blank_lines_skipped_and_garbage_rejected() {
        let mut reader =
            MessageReader::new("\n\n{\"method\":\"echo\",\"params\":[],\"id\":null}\n".as_bytes());
        assert!(matches!(
            reader.read().unwrap(),
            Some(Message::Notification { .. })
        ));

        let mut bad = MessageReader::new("not json\n".as_bytes());
        assert!(bad.read().is_err());

        let mut neither = MessageReader::new("{\"x\":1}\n".as_bytes());
        assert!(neither.read().is_err());
    }
}
