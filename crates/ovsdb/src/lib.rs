//! An OVSDB-style management-plane database (RFC 7047 subset).
//!
//! Provides the management plane of the Full-Stack SDN (Nerpa) stack: a
//! schema-checked, transactional database whose committed changes stream
//! to subscribers as *monitor* updates — exactly the interface the Nerpa
//! controller consumes.
//!
//! * [`datum`] — atoms, sets, maps, UUIDs, and their JSON wire forms.
//! * [`schema`] — database/table/column schemas with constraints.
//! * [`db`] — the transactional store: insert/select/update/mutate/delete
//!   /wait operations, atomicity, referential integrity, GC.
//! * [`monitor`] — change-stream subscriptions.
//! * [`rpc`], [`server`] — a JSON-RPC-style TCP protocol, server, and
//!   blocking client.
//! * [`wal`], [`snapshot`] — durability: a checksummed write-ahead log
//!   with crash recovery and atomic snapshot compaction.
#![warn(missing_docs)]

pub mod datum;
pub mod db;
pub mod monitor;
pub mod rpc;
pub mod schema;
pub mod server;
pub mod snapshot;
pub mod wal;

pub use datum::{Atom, AtomType, Datum, Uuid};
pub use db::{Database, RecoveryReport, RowChange, RowData};
pub use monitor::{Monitor, MonitorSelect, MonitorTable};
pub use schema::{ColumnSchema, ColumnType, Schema, TableSchema};
pub use server::{Client, MonitorOverload, Server, TRACE_KEY};
pub use wal::{DurabilityConfig, FsyncPolicy, WalError};
