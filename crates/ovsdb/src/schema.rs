//! Database schemas (RFC 7047 §3.2): tables, columns, and type
//! constraints.
//!
//! Schemas are parsed from the same JSON shape `ovsdb-server` uses, so a
//! Nerpa program can ship its management-plane schema as a plain `.json`
//! asset.

use std::collections::BTreeMap;

use serde_json::Value as Json;

use crate::datum::{Atom, AtomType, Datum};

/// Constraints on one atom position of a column type.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseType {
    /// The atomic type.
    pub ty: AtomType,
    /// For integers: inclusive minimum.
    pub min_integer: Option<i64>,
    /// For integers: inclusive maximum.
    pub max_integer: Option<i64>,
    /// For strings: permitted values (the `enum` constraint).
    pub enum_values: Option<Vec<Atom>>,
    /// For uuids: the referenced table.
    pub ref_table: Option<String>,
    /// For uuids with `ref_table`: true when the reference is strong
    /// (default), false when weak.
    pub ref_strong: bool,
}

impl BaseType {
    /// An unconstrained base type.
    pub fn plain(ty: AtomType) -> BaseType {
        BaseType {
            ty,
            min_integer: None,
            max_integer: None,
            enum_values: None,
            ref_table: None,
            ref_strong: true,
        }
    }

    /// Validate one atom against this base type.
    pub fn validate(&self, atom: &Atom) -> Result<(), String> {
        if atom.atom_type() != self.ty {
            return Err(format!(
                "atom {atom:?} has type {}, expected {}",
                atom.atom_type().name(),
                self.ty.name()
            ));
        }
        if let Atom::Integer(i) = atom {
            if let Some(min) = self.min_integer {
                if *i < min {
                    return Err(format!("{i} below minInteger {min}"));
                }
            }
            if let Some(max) = self.max_integer {
                if *i > max {
                    return Err(format!("{i} above maxInteger {max}"));
                }
            }
        }
        if let Some(allowed) = &self.enum_values {
            if !allowed.contains(atom) {
                return Err(format!("{atom:?} not in enum"));
            }
        }
        Ok(())
    }

    fn parse(v: &Json) -> Result<BaseType, String> {
        match v {
            Json::String(s) => AtomType::parse(s)
                .map(BaseType::plain)
                .ok_or_else(|| format!("unknown atomic type {s:?}")),
            Json::Object(o) => {
                let tname = o
                    .get("type")
                    .and_then(Json::as_str)
                    .ok_or("base type object needs \"type\"")?;
                let mut bt = BaseType::plain(
                    AtomType::parse(tname)
                        .ok_or_else(|| format!("unknown atomic type {tname:?}"))?,
                );
                bt.min_integer = o.get("minInteger").and_then(Json::as_i64);
                bt.max_integer = o.get("maxInteger").and_then(Json::as_i64);
                if let Some(e) = o.get("enum") {
                    // enum is encoded as a datum: ["set", [...]] or atom.
                    let vals = match e {
                        Json::Array(a) if a.first().and_then(Json::as_str) == Some("set") => a
                            .get(1)
                            .and_then(Json::as_array)
                            .ok_or("bad enum set")?
                            .clone(),
                        other => vec![other.clone()],
                    };
                    let mut atoms = Vec::new();
                    for v in vals {
                        atoms.push(Atom::from_json(&v, bt.ty, &|_| None)?);
                    }
                    bt.enum_values = Some(atoms);
                }
                if let Some(rt) = o.get("refTable").and_then(Json::as_str) {
                    bt.ref_table = Some(rt.to_string());
                    bt.ref_strong =
                        o.get("refType").and_then(Json::as_str).unwrap_or("strong") == "strong";
                }
                Ok(bt)
            }
            other => Err(format!("bad base type {other}")),
        }
    }
}

/// A full column type: key (and optional value for maps) plus the
/// min/max element count.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnType {
    /// The key (or sole) atom type.
    pub key: BaseType,
    /// The value atom type for map columns.
    pub value: Option<BaseType>,
    /// Minimum number of elements (0 makes the column optional).
    pub min: usize,
    /// Maximum number of elements (`usize::MAX` = "unlimited").
    pub max: usize,
}

impl ColumnType {
    /// A scalar column of the given atomic type.
    pub fn scalar(ty: AtomType) -> ColumnType {
        ColumnType {
            key: BaseType::plain(ty),
            value: None,
            min: 1,
            max: 1,
        }
    }

    /// True if the column holds at most one atom (a scalar or optional
    /// scalar).
    pub fn is_scalar(&self) -> bool {
        self.value.is_none() && self.max == 1
    }

    /// True if this is a map column.
    pub fn is_map(&self) -> bool {
        self.value.is_some()
    }

    /// The default datum for this column: empty for optional columns,
    /// a zero value for required scalars.
    pub fn default_datum(&self) -> Datum {
        if self.is_map() {
            return Datum::Map(BTreeMap::new());
        }
        if self.min == 0 {
            return Datum::empty();
        }
        Datum::scalar(match self.key.ty {
            AtomType::Integer => Atom::Integer(
                self.key
                    .min_integer
                    .unwrap_or(0)
                    .max(0)
                    .min(self.key.max_integer.unwrap_or(i64::MAX)),
            ),
            AtomType::Real => Atom::Real(crate::datum::OrderedF64(0.0)),
            AtomType::Boolean => Atom::Boolean(false),
            AtomType::String => match &self.key.enum_values {
                Some(vals) if !vals.is_empty() => vals[0].clone(),
                _ => Atom::s(""),
            },
            AtomType::Uuid => Atom::Uuid(crate::datum::Uuid(0)),
        })
    }

    /// Validate a datum against this column type.
    pub fn validate(&self, datum: &Datum) -> Result<(), String> {
        let n = datum.len();
        if n < self.min {
            return Err(format!("{n} element(s), minimum {}", self.min));
        }
        if n > self.max {
            return Err(format!("{n} element(s), maximum {}", self.max));
        }
        match (datum, &self.value) {
            (Datum::Set(s), None) => {
                for a in s {
                    self.key.validate(a)?;
                }
                Ok(())
            }
            (Datum::Map(m), Some(vt)) => {
                for (k, v) in m {
                    self.key.validate(k)?;
                    vt.validate(v)?;
                }
                Ok(())
            }
            (Datum::Map(_), None) => Err("map datum for a set column".into()),
            (Datum::Set(_), Some(_)) => Err("set datum for a map column".into()),
        }
    }

    fn parse(v: &Json) -> Result<ColumnType, String> {
        match v {
            Json::String(_) => Ok(ColumnType {
                key: BaseType::parse(v)?,
                value: None,
                min: 1,
                max: 1,
            }),
            Json::Object(o) => {
                let key = BaseType::parse(o.get("key").ok_or("column type needs \"key\"")?)?;
                let value = match o.get("value") {
                    Some(v) => Some(BaseType::parse(v)?),
                    None => None,
                };
                let min = o.get("min").and_then(Json::as_u64).unwrap_or(1) as usize;
                let max = match o.get("max") {
                    None => 1,
                    Some(Json::String(s)) if s == "unlimited" => usize::MAX,
                    Some(Json::Number(n)) => n.as_u64().unwrap_or(1) as usize,
                    Some(other) => return Err(format!("bad max {other}")),
                };
                if min > max {
                    return Err(format!("min {min} > max {max}"));
                }
                Ok(ColumnType {
                    key,
                    value,
                    min,
                    max,
                })
            }
            other => Err(format!("bad column type {other}")),
        }
    }
}

/// One column of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSchema {
    /// Column name.
    pub name: String,
    /// Its type.
    pub ty: ColumnType,
    /// Ephemeral columns are not persisted (accepted, not enforced here).
    pub ephemeral: bool,
}

/// One table of a database.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns by name (sorted for determinism).
    pub columns: BTreeMap<String, ColumnSchema>,
    /// Root tables are exempt from garbage collection.
    pub is_root: bool,
    /// Uniqueness constraints: each inner vector is a set of column names
    /// that must be unique together.
    pub indexes: Vec<Vec<String>>,
    /// Maximum number of rows (`usize::MAX` = unlimited).
    pub max_rows: usize,
}

/// A database schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    /// Database name.
    pub name: String,
    /// Schema version string.
    pub version: String,
    /// Tables by name.
    pub tables: BTreeMap<String, TableSchema>,
}

impl Schema {
    /// Parse a schema from its JSON representation.
    pub fn from_json(v: &Json) -> Result<Schema, String> {
        let o = v.as_object().ok_or("schema must be an object")?;
        let name = o
            .get("name")
            .and_then(Json::as_str)
            .ok_or("schema needs \"name\"")?
            .to_string();
        let version = o
            .get("version")
            .and_then(Json::as_str)
            .unwrap_or("0.0.0")
            .to_string();
        let tables_json = o
            .get("tables")
            .and_then(Json::as_object)
            .ok_or("schema needs \"tables\"")?;
        let mut tables = BTreeMap::new();
        for (tname, tv) in tables_json {
            let to = tv
                .as_object()
                .ok_or_else(|| format!("table {tname} must be an object"))?;
            let cols_json = to
                .get("columns")
                .and_then(Json::as_object)
                .ok_or_else(|| format!("table {tname} needs \"columns\""))?;
            let mut columns = BTreeMap::new();
            for (cname, cv) in cols_json {
                if cname.starts_with('_') {
                    return Err(format!("column name {cname:?} is reserved"));
                }
                let co = cv
                    .as_object()
                    .ok_or_else(|| format!("column {cname} must be an object"))?;
                let ty = ColumnType::parse(
                    co.get("type")
                        .ok_or_else(|| format!("column {tname}.{cname} needs \"type\""))?,
                )
                .map_err(|e| format!("column {tname}.{cname}: {e}"))?;
                let ephemeral = co.get("ephemeral").and_then(Json::as_bool).unwrap_or(false);
                columns.insert(
                    cname.clone(),
                    ColumnSchema {
                        name: cname.clone(),
                        ty,
                        ephemeral,
                    },
                );
            }
            let is_root = to.get("isRoot").and_then(Json::as_bool).unwrap_or(false);
            let mut indexes = Vec::new();
            if let Some(ix) = to.get("indexes").and_then(Json::as_array) {
                for cols in ix {
                    let cols = cols
                        .as_array()
                        .ok_or("index must be an array of column names")?
                        .iter()
                        .map(|c| c.as_str().map(str::to_string))
                        .collect::<Option<Vec<_>>>()
                        .ok_or("index column names must be strings")?;
                    for c in &cols {
                        if !columns.contains_key(c) {
                            return Err(format!("index on unknown column {tname}.{c}"));
                        }
                    }
                    indexes.push(cols);
                }
            }
            let max_rows = to
                .get("maxRows")
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .unwrap_or(usize::MAX);
            tables.insert(
                tname.clone(),
                TableSchema {
                    name: tname.clone(),
                    columns,
                    is_root,
                    indexes,
                    max_rows,
                },
            );
        }
        // Validate refTable targets exist.
        for t in tables.values() {
            for c in t.columns.values() {
                for bt in std::iter::once(&c.ty.key).chain(c.ty.value.iter()) {
                    if let Some(rt) = &bt.ref_table {
                        if !tables.contains_key(rt) {
                            return Err(format!(
                                "column {}.{} references unknown table {rt}",
                                t.name, c.name
                            ));
                        }
                    }
                }
            }
        }
        Ok(Schema {
            name,
            version,
            tables,
        })
    }

    /// Parse from JSON text.
    pub fn parse(text: &str) -> Result<Schema, String> {
        let v: Json = serde_json::from_str(text).map_err(|e| e.to_string())?;
        Schema::from_json(&v)
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(name)
    }

    /// Encode back to the JSON schema representation.
    pub fn to_json(&self) -> Json {
        use serde_json::{json, Map};
        let mut tables = Map::new();
        for (tname, t) in &self.tables {
            let mut columns = Map::new();
            for (cname, c) in &t.columns {
                columns.insert(cname.clone(), json!({"type": column_type_json(&c.ty)}));
            }
            let mut tj = Map::new();
            tj.insert("columns".into(), Json::Object(columns));
            if t.is_root {
                tj.insert("isRoot".into(), json!(true));
            }
            if !t.indexes.is_empty() {
                tj.insert("indexes".into(), json!(t.indexes));
            }
            if t.max_rows != usize::MAX {
                tj.insert("maxRows".into(), json!(t.max_rows));
            }
            tables.insert(tname.clone(), Json::Object(tj));
        }
        json!({"name": self.name, "version": self.version, "tables": tables})
    }
}

fn base_type_json(bt: &BaseType) -> Json {
    use serde_json::{json, Map};
    let plain = bt.min_integer.is_none()
        && bt.max_integer.is_none()
        && bt.enum_values.is_none()
        && bt.ref_table.is_none();
    if plain {
        return json!(bt.ty.name());
    }
    let mut o = Map::new();
    o.insert("type".into(), json!(bt.ty.name()));
    if let Some(m) = bt.min_integer {
        o.insert("minInteger".into(), json!(m));
    }
    if let Some(m) = bt.max_integer {
        o.insert("maxInteger".into(), json!(m));
    }
    if let Some(e) = &bt.enum_values {
        o.insert(
            "enum".into(),
            json!(["set", e.iter().map(|a| a.to_json()).collect::<Vec<_>>()]),
        );
    }
    if let Some(rt) = &bt.ref_table {
        o.insert("refTable".into(), json!(rt));
        if !bt.ref_strong {
            o.insert("refType".into(), json!("weak"));
        }
    }
    Json::Object(o)
}

fn column_type_json(ct: &ColumnType) -> Json {
    use serde_json::{json, Map};
    if ct.is_scalar() && ct.min == 1 {
        return base_type_json(&ct.key);
    }
    let mut o = Map::new();
    o.insert("key".into(), base_type_json(&ct.key));
    if let Some(v) = &ct.value {
        o.insert("value".into(), base_type_json(v));
    }
    if ct.min != 1 {
        o.insert("min".into(), json!(ct.min));
    }
    if ct.max == usize::MAX {
        o.insert("max".into(), json!("unlimited"));
    } else if ct.max != 1 {
        o.insert("max".into(), json!(ct.max));
    }
    Json::Object(o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn demo_schema() -> Json {
        json!({
            "name": "snvs",
            "version": "1.0.0",
            "tables": {
                "Port": {
                    "columns": {
                        "name": {"type": "string"},
                        "vlan_mode": {"type": {"key": {"type": "string",
                            "enum": ["set", ["access", "trunk"]]}, "min": 0, "max": 1}},
                        "tag": {"type": {"key": {"type": "integer",
                            "minInteger": 0, "maxInteger": 4095}, "min": 0, "max": 1}},
                        "trunks": {"type": {"key": {"type": "integer",
                            "minInteger": 0, "maxInteger": 4095}, "min": 0, "max": "unlimited"}},
                        "mirror_of": {"type": {"key": {"type": "uuid",
                            "refTable": "Port", "refType": "weak"}, "min": 0, "max": 1}},
                        "options": {"type": {"key": "string", "value": "string",
                            "min": 0, "max": "unlimited"}}
                    },
                    "isRoot": true,
                    "indexes": [["name"]]
                }
            }
        })
    }

    #[test]
    fn parse_full_schema() {
        let s = Schema::from_json(&demo_schema()).unwrap();
        assert_eq!(s.name, "snvs");
        let port = s.table("Port").unwrap();
        assert!(port.is_root);
        assert_eq!(port.indexes, vec![vec!["name".to_string()]]);
        let tag = &port.columns["tag"].ty;
        assert_eq!(tag.min, 0);
        assert_eq!(tag.max, 1);
        assert_eq!(tag.key.max_integer, Some(4095));
        let trunks = &port.columns["trunks"].ty;
        assert_eq!(trunks.max, usize::MAX);
        let opts = &port.columns["options"].ty;
        assert!(opts.is_map());
        let mirror = &port.columns["mirror_of"].ty;
        assert_eq!(mirror.key.ref_table.as_deref(), Some("Port"));
        assert!(!mirror.key.ref_strong);
    }

    #[test]
    fn rejects_bad_schemas() {
        assert!(Schema::parse("not json").is_err());
        let bad_ref = json!({"name": "d", "tables": {"T": {"columns":
            {"r": {"type": {"key": {"type": "uuid", "refTable": "NoSuch"}}}}}}});
        assert!(Schema::from_json(&bad_ref).is_err());
        let reserved = json!({"name": "d", "tables": {"T": {"columns":
            {"_uuid": {"type": "string"}}}}});
        assert!(Schema::from_json(&reserved).is_err());
        let bad_index = json!({"name": "d", "tables": {"T": {"columns":
            {"a": {"type": "string"}}, "indexes": [["nope"]]}}});
        assert!(Schema::from_json(&bad_index).is_err());
    }

    #[test]
    fn column_validation() {
        let s = Schema::from_json(&demo_schema()).unwrap();
        let port = s.table("Port").unwrap();
        let vm = &port.columns["vlan_mode"].ty;
        assert!(vm.validate(&Datum::scalar(Atom::s("access"))).is_ok());
        assert!(vm.validate(&Datum::scalar(Atom::s("bogus"))).is_err());
        assert!(vm.validate(&Datum::empty()).is_ok());
        let tag = &port.columns["tag"].ty;
        assert!(tag.validate(&Datum::scalar(Atom::i(4095))).is_ok());
        assert!(tag.validate(&Datum::scalar(Atom::i(4096))).is_err());
        assert!(tag.validate(&Datum::scalar(Atom::i(-1))).is_err());
        let name = &port.columns["name"].ty;
        assert!(name.validate(&Datum::empty()).is_err()); // required
        assert!(name.validate(&Datum::scalar(Atom::i(1))).is_err()); // wrong type
    }

    #[test]
    fn default_datums() {
        let s = Schema::from_json(&demo_schema()).unwrap();
        let port = s.table("Port").unwrap();
        assert_eq!(
            port.columns["name"].ty.default_datum(),
            Datum::scalar(Atom::s(""))
        );
        assert_eq!(port.columns["tag"].ty.default_datum(), Datum::empty());
        assert_eq!(
            port.columns["options"].ty.default_datum(),
            Datum::Map(Default::default())
        );
        // Enum default picks the first allowed value when required.
        let required_enum = ColumnType {
            key: BaseType {
                enum_values: Some(vec![Atom::s("x"), Atom::s("y")]),
                ..BaseType::plain(AtomType::String)
            },
            value: None,
            min: 1,
            max: 1,
        };
        assert_eq!(required_enum.default_datum(), Datum::scalar(Atom::s("x")));
    }
}
