//! The write-ahead log: per-transaction durability for the management
//! plane.
//!
//! Real OVSDB persists every committed transaction to an append-only
//! file log so configuration survives daemon restarts; this module is
//! that layer for [`crate::db::Database`]. One record is appended per
//! committed transaction, *before* the transaction's overlay is applied
//! (write-ahead semantics: a transaction whose record cannot be made
//! durable is aborted, never half-committed).
//!
//! ## Record format
//!
//! ```text
//! [u32 payload_len][u64 commit_index][u32 crc32][payload bytes]
//! ```
//!
//! All integers little-endian. The CRC covers the commit index and the
//! payload, so a record is self-validating. The payload is the JSON
//! `{"uuid_counter": <pre-transaction value>, "ops": [...]}` — replay
//! re-executes the ops against the recovered state, which is fully
//! deterministic once the UUID counter is restored (UUIDs are minted
//! from counters, never from entropy).
//!
//! ## Recovery rules
//!
//! * A record whose bytes end at EOF but do not parse (short header,
//!   payload past EOF, or CRC mismatch on the final record) is a **torn
//!   tail** — the write was interrupted mid-record. The tail is cleanly
//!   truncated and recovery proceeds; at most that single record (whose
//!   transaction was never acknowledged) is lost.
//! * A record that fails its CRC *with valid data after it*, carries a
//!   non-contiguous commit index, or holds unparseable JSON is a
//!   **corrupt interior** — recovery refuses with a typed
//!   [`WalError::CorruptRecord`] rather than silently dropping
//!   acknowledged transactions.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use serde_json::{json, Value as Json};

/// Size of the fixed per-record header: length + commit index + CRC.
pub const RECORD_HEADER_LEN: usize = 4 + 8 + 4;

/// Name of the log file inside a durability directory.
pub const WAL_FILE: &str = "wal.log";

/// When the log is fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every appended record (safest, slowest).
    Always,
    /// fsync after every N appended records (bounded loss window).
    EveryN(u32),
    /// Never fsync explicitly; rely on the OS flushing dirty pages
    /// (fastest; a host crash may lose the tail of the log).
    Never,
}

/// Configuration of the durability layer.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityConfig {
    /// fsync policy for WAL appends.
    pub fsync: FsyncPolicy,
    /// Once the log exceeds this many bytes, the next commit triggers
    /// snapshot compaction: the full state is written atomically and the
    /// replayed prefix truncated.
    pub snapshot_after_bytes: u64,
}

impl Default for DurabilityConfig {
    fn default() -> DurabilityConfig {
        DurabilityConfig {
            fsync: FsyncPolicy::EveryN(64),
            snapshot_after_bytes: 1 << 20,
        }
    }
}

/// Typed durability-layer errors.
#[derive(Debug)]
pub enum WalError {
    /// An I/O failure against the log, snapshot, or directory.
    Io(std::io::Error),
    /// A record in the *interior* of the log failed validation. Opening
    /// refuses rather than dropping acknowledged transactions.
    CorruptRecord {
        /// Byte offset of the offending record.
        offset: u64,
        /// What failed.
        reason: String,
    },
    /// Replaying a logged transaction against the recovered state did
    /// not commit — the log and the snapshot disagree.
    Replay {
        /// Commit index of the failing record.
        index: u64,
        /// The transaction error.
        reason: String,
    },
    /// The snapshot file exists but cannot be decoded.
    CorruptSnapshot(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::CorruptRecord { offset, reason } => {
                write!(f, "corrupt WAL record at offset {offset}: {reason}")
            }
            WalError::Replay { index, reason } => {
                write!(f, "replay of commit {index} failed: {reason}")
            }
            WalError::CorruptSnapshot(reason) => write!(f, "corrupt snapshot: {reason}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> WalError {
        WalError::Io(e)
    }
}

// ------------------------------------------------------------- crc32

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

fn crc_of(commit_index: u64, payload: &[u8]) -> u32 {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&commit_index.to_le_bytes());
    buf.extend_from_slice(payload);
    crc32(&buf)
}

// ----------------------------------------------------------- metrics

struct WalMetrics {
    records: telemetry::Counter,
    bytes: telemetry::Counter,
    fsyncs: telemetry::Counter,
    replay_us: telemetry::Histogram,
    truncated_tails: telemetry::Counter,
    compactions: telemetry::Counter,
}

fn wal_metrics() -> &'static WalMetrics {
    static M: std::sync::OnceLock<WalMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let reg = &telemetry::global().registry;
        WalMetrics {
            records: reg.counter(
                "ovsdb_wal_records_appended_total",
                "Transaction records appended to the OVSDB write-ahead log",
            ),
            bytes: reg.counter(
                "ovsdb_wal_bytes_total",
                "Bytes appended to the OVSDB write-ahead log",
            ),
            fsyncs: reg.counter(
                "ovsdb_wal_fsyncs_total",
                "fsync calls issued by the OVSDB write-ahead log",
            ),
            replay_us: reg.histogram(
                "ovsdb_wal_replay_duration_us",
                "WAL replay duration on database open (us)",
                &telemetry::LATENCY_BOUNDS_US,
            ),
            truncated_tails: reg.counter(
                "ovsdb_wal_truncated_tails_total",
                "Torn WAL tails detected and truncated during recovery",
            ),
            compactions: reg.counter(
                "ovsdb_wal_snapshot_compactions_total",
                "Snapshot compactions (full-state snapshot + log truncation)",
            ),
        }
    })
}

// ------------------------------------------------------------ writer

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotonic commit index (1-based; equals the database's
    /// transaction counter after this commit).
    pub commit_index: u64,
    /// The database's UUID counter immediately before the transaction
    /// executed (restored before replay so minted UUIDs match).
    pub uuid_counter: u64,
    /// The transaction's operations array.
    pub ops: Json,
}

impl WalRecord {
    /// Encode to on-disk bytes (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let payload =
            serde_json::to_vec(&json!({"uuid_counter": self.uuid_counter, "ops": self.ops}))
                .expect("record payload serializes");
        let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.commit_index.to_le_bytes());
        out.extend_from_slice(&crc_of(self.commit_index, &payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// What happened while scanning a log file.
#[derive(Debug, Clone, Default)]
pub struct ScanReport {
    /// Fully-valid records decoded.
    pub records: Vec<WalRecord>,
    /// Byte offset of a torn tail, if one was found (everything from
    /// here on should be truncated).
    pub torn_at: Option<u64>,
    /// Total valid bytes (== `torn_at` when a tail was torn).
    pub valid_bytes: u64,
}

/// Decode a log image. Returns the valid prefix and where (if anywhere)
/// a torn tail begins; refuses corrupt interiors.
pub fn scan(data: &[u8]) -> Result<ScanReport, WalError> {
    let mut report = ScanReport::default();
    let mut off = 0usize;
    while off < data.len() {
        let remaining = &data[off..];
        if remaining.len() < RECORD_HEADER_LEN {
            report.torn_at = Some(off as u64);
            break;
        }
        let len = u32::from_le_bytes(remaining[0..4].try_into().unwrap()) as usize;
        let commit_index = u64::from_le_bytes(remaining[4..12].try_into().unwrap());
        let crc = u32::from_le_bytes(remaining[12..16].try_into().unwrap());
        if remaining.len() < RECORD_HEADER_LEN + len {
            // Payload (or a garbage length field) extends past EOF: the
            // record was being written when the crash hit.
            report.torn_at = Some(off as u64);
            break;
        }
        let payload = &remaining[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
        let end = off + RECORD_HEADER_LEN + len;
        let fail = |reason: String| -> Result<ScanReport, WalError> {
            Err(WalError::CorruptRecord {
                offset: off as u64,
                reason,
            })
        };
        if crc_of(commit_index, payload) != crc {
            if end == data.len() {
                // The final record's bytes are all present but the
                // checksum fails: a partially-overwritten tail.
                report.torn_at = Some(off as u64);
                break;
            }
            return fail("crc mismatch".to_string());
        }
        let doc: Json = match serde_json::from_slice(payload) {
            Ok(v) => v,
            Err(e) => return fail(format!("bad payload json: {e}")),
        };
        let uuid_counter = match doc.get("uuid_counter").and_then(Json::as_u64) {
            Some(u) => u,
            None => return fail("payload missing uuid_counter".to_string()),
        };
        let ops = match doc.get("ops") {
            Some(o) if o.is_array() => o.clone(),
            _ => return fail("payload missing ops array".to_string()),
        };
        if let Some(prev) = report.records.last() {
            if commit_index != prev.commit_index + 1 {
                return fail(format!(
                    "non-contiguous commit index {commit_index} after {}",
                    prev.commit_index
                ));
            }
        }
        report.records.push(WalRecord {
            commit_index,
            uuid_counter,
            ops,
        });
        off = end;
        report.valid_bytes = off as u64;
    }
    if report.torn_at.is_none() {
        report.valid_bytes = data.len() as u64;
    }
    Ok(report)
}

/// The append side of the log: an open file plus fsync bookkeeping.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Current log length in bytes.
    pub bytes: u64,
    appends_since_fsync: u32,
}

impl Wal {
    /// Open (creating if absent) the log at `path` for appending,
    /// positioned after `valid_bytes` (anything beyond is truncated —
    /// the torn-tail cleanup).
    pub fn open(path: &Path, policy: FsyncPolicy, valid_bytes: u64) -> Result<Wal, WalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len > valid_bytes {
            file.set_len(valid_bytes)?;
            file.sync_all()?;
            wal_metrics().fsyncs.inc();
        }
        file.seek(SeekFrom::Start(valid_bytes))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            policy,
            bytes: valid_bytes,
            appends_since_fsync: 0,
        })
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record, honoring the fsync policy. Returns the bytes
    /// written.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, WalError> {
        let bytes = record.encode();
        self.file.write_all(&bytes)?;
        self.bytes += bytes.len() as u64;
        self.appends_since_fsync += 1;
        let m = wal_metrics();
        m.records.inc();
        m.bytes.add(bytes.len() as u64);
        telemetry::record_event(
            telemetry::Plane::Management,
            "wal.append",
            0,
            &[
                ("commit_index", record.commit_index),
                ("bytes", bytes.len() as u64),
            ],
        );
        let syncing = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_fsync >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if syncing {
            self.file.sync_data()?;
            self.appends_since_fsync = 0;
            m.fsyncs.inc();
        }
        Ok(bytes.len() as u64)
    }

    /// Truncate the log to empty (after a snapshot made its contents
    /// redundant) and fsync the truncation.
    pub fn reset(&mut self) -> Result<(), WalError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()?;
        wal_metrics().fsyncs.inc();
        self.bytes = 0;
        self.appends_since_fsync = 0;
        Ok(())
    }

    /// Force an fsync regardless of policy.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data()?;
        self.appends_since_fsync = 0;
        wal_metrics().fsyncs.inc();
        Ok(())
    }
}

/// Record a completed replay's duration and (optional) torn-tail event
/// in the `ovsdb_wal_*` series.
pub(crate) fn record_replay(duration: std::time::Duration, truncated_tail: bool) {
    let m = wal_metrics();
    m.replay_us.record_duration(duration);
    if truncated_tail {
        m.truncated_tails.inc();
    }
}

/// Record a snapshot compaction in the `ovsdb_wal_*` series.
pub(crate) fn record_compaction() {
    wal_metrics().compactions.inc();
}

// -------------------------------------------------- chaos/test hooks

/// The byte span `[start, end)` of the final record in a log image
/// (`None` for an empty or headerless log). Used by crash-fault
/// injection to tear exactly (and only) the final record.
pub fn final_record_span(data: &[u8]) -> Option<(u64, u64)> {
    let report = scan(data).ok()?;
    let last = report.records.last()?;
    let payload_len =
        serde_json::to_vec(&json!({"uuid_counter": last.uuid_counter, "ops": last.ops}))
            .ok()?
            .len() as u64;
    let end = report.valid_bytes;
    Some((end - RECORD_HEADER_LEN as u64 - payload_len, end))
}

/// Simulate a crash mid-write of the log's final record: chop up to
/// `chop_request` bytes off the tail, clamped so only the final record
/// is damaged. Returns the number of bytes actually removed (0 when the
/// log has no complete record to tear, or `chop_request` is 0).
///
/// Deterministic: for a given log image and `chop_request` the resulting
/// file is byte-identical run after run — this is the hook
/// `chaos::FaultKind::CrashServer` drives.
pub fn tear_tail(path: &Path, chop_request: u64) -> Result<u64, WalError> {
    if chop_request == 0 {
        return Ok(0);
    }
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    let Some((start, end)) = final_record_span(&data) else {
        return Ok(0);
    };
    let chop = chop_request.min(end - start);
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(end - chop)?;
    file.sync_all()?;
    Ok(chop)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> WalRecord {
        WalRecord {
            commit_index: i,
            uuid_counter: 10 * i,
            ops: json!([{"op": "comment"}]),
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_scan_roundtrip() {
        let mut image = Vec::new();
        for i in 1..=3 {
            image.extend_from_slice(&rec(i).encode());
        }
        let report = scan(&image).unwrap();
        assert_eq!(report.records, vec![rec(1), rec(2), rec(3)]);
        assert_eq!(report.torn_at, None);
        assert_eq!(report.valid_bytes, image.len() as u64);
    }

    #[test]
    fn torn_tail_is_detected_not_fatal() {
        let mut image = rec(1).encode();
        let full = rec(2).encode();
        let boundary = image.len();
        image.extend_from_slice(&full[..full.len() - 3]);
        let report = scan(&image).unwrap();
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.torn_at, Some(boundary as u64));
        assert_eq!(report.valid_bytes, boundary as u64);
    }

    #[test]
    fn corrupt_interior_is_refused() {
        let mut image = rec(1).encode();
        let boundary = image.len();
        image.extend_from_slice(&rec(2).encode());
        // Flip a payload byte of record 1 (interior).
        image[RECORD_HEADER_LEN + 2] ^= 0xFF;
        match scan(&image) {
            Err(WalError::CorruptRecord { offset, .. }) => assert_eq!(offset, 0),
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
        // Flip a byte of the *final* record instead: that is a torn
        // tail, not corruption.
        let mut image2 = rec(1).encode();
        image2.extend_from_slice(&rec(2).encode());
        let last = image2.len() - 1;
        image2[last] ^= 0xFF;
        let report = scan(&image2).unwrap();
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.torn_at, Some(boundary as u64));
    }

    #[test]
    fn non_contiguous_index_is_refused() {
        let mut image = rec(1).encode();
        image.extend_from_slice(&rec(3).encode());
        assert!(matches!(scan(&image), Err(WalError::CorruptRecord { .. })));
    }

    #[test]
    fn final_record_span_and_tear() {
        let r1 = rec(1).encode();
        let r2 = rec(2).encode();
        let mut image = r1.clone();
        image.extend_from_slice(&r2);
        let (start, end) = final_record_span(&image).unwrap();
        assert_eq!(start, r1.len() as u64);
        assert_eq!(end, image.len() as u64);

        let dir = std::env::temp_dir().join(format!("nerpa-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tear.log");
        std::fs::write(&path, &image).unwrap();
        // Chop request larger than the final record is clamped to it.
        let chopped = tear_tail(&path, 1 << 20).unwrap();
        assert_eq!(chopped, r2.len() as u64);
        assert_eq!(std::fs::read(&path).unwrap(), r1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
