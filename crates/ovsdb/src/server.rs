//! The OVSDB server: thread-per-connection TCP service over the shared
//! database, with monitor notification fan-out.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam_channel::{bounded, unbounded, Sender, TrySendError};
use parking_lot::Mutex;
use serde_json::{json, Value as Json};

use crate::db::Database;
use crate::monitor::Monitor;
use crate::rpc::{write_message, Message, MessageReader};

/// Bounds for monitor fan-out: each connection gets a bounded outbox
/// drained by its writer thread, and a subscriber that cannot drain it
/// within the deadline is **evicted** — its connection is closed and
/// its subscriptions are dropped, bounding server memory no matter how
/// slow the consumer. Evicted clients are expected to reconnect and
/// re-monitor (the supervisor's resync path), which yields a complete
/// fresh snapshot, so eviction never loses them state for good.
#[derive(Debug, Clone)]
pub struct MonitorOverload {
    /// Max notifications buffered per connection outbox.
    pub outbox_cap: usize,
    /// How long a full outbox may block the fan-out before the
    /// subscriber is evicted.
    pub evict_deadline: Duration,
}

impl Default for MonitorOverload {
    fn default() -> MonitorOverload {
        MonitorOverload {
            outbox_cap: 1024,
            evict_deadline: Duration::from_secs(1),
        }
    }
}

/// Reserved key attached to monitor update objects carrying the causal
/// trace minted at commit time. Table names never collide with it, and
/// schema-driven consumers skip unknown tables, so it is safe to ride
/// along inside the updates object.
pub const TRACE_KEY: &str = "__trace";

struct ServerMetrics {
    commits: telemetry::Counter,
    commit_us: telemetry::Histogram,
    fanout: telemetry::Counter,
    connections: telemetry::Counter,
    evictions: telemetry::Counter,
    disconnects: telemetry::Counter,
    outbox_depth: telemetry::Gauge,
    outbox_depth_hwm: telemetry::Gauge,
}

fn server_metrics() -> &'static ServerMetrics {
    static M: std::sync::OnceLock<ServerMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let reg = &telemetry::global().registry;
        ServerMetrics {
            commits: reg.counter(
                "ovsdb_commits_total",
                "Committed management-plane transactions",
            ),
            commit_us: reg.histogram(
                "ovsdb_commit_duration_us",
                "OVSDB transaction commit latency (us)",
                &telemetry::LATENCY_BOUNDS_US,
            ),
            fanout: reg.counter(
                "ovsdb_monitor_notifications_total",
                "Monitor update notifications fanned out to subscribers",
            ),
            connections: reg.counter(
                "ovsdb_connections_total",
                "Client connections accepted by the OVSDB server",
            ),
            evictions: reg.counter(
                "ovsdb_monitor_evictions_total",
                "Monitor subscribers evicted for failing to drain their outbox in time",
            ),
            disconnects: reg.counter(
                "ovsdb_monitor_disconnects_total",
                "Monitor connections torn down after a failed socket write",
            ),
            outbox_depth: reg.gauge(
                "ovsdb_monitor_outbox_depth",
                "Notifications buffered in the fullest monitor outbox at last fan-out",
            ),
            outbox_depth_hwm: reg.gauge(
                "ovsdb_monitor_outbox_depth_hwm",
                "High-water mark of monitor outbox depth",
            ),
        }
    })
}

struct Subscription {
    conn_id: u64,
    mon_id: Json,
    monitor: Monitor,
    tx: Sender<Message>,
}

struct ServerState {
    db: Mutex<Database>,
    subs: Mutex<Vec<Subscription>>,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
    /// Live connection sockets, so shutdown can sever them cleanly.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    overload: MonitorOverload,
}

impl ServerState {
    /// Sever one connection's socket (both directions). Its reader
    /// observes EOF and finishes the ordinary connection teardown.
    fn sever_conn(&self, conn_id: u64) {
        let conns = self.conns.lock();
        for (id, stream) in conns.iter() {
            if *id == conn_id {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

/// A running OVSDB server. Dropping it (or calling [`Server::shutdown`])
/// stops the listener and severs every live connection, so clients
/// observe the close immediately instead of hanging on a dead socket.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// [`Server::start_with`] under the default [`MonitorOverload`].
    pub fn start(db: Database, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
        Server::start_with(db, addr, MonitorOverload::default())
    }

    /// Start serving `db` on `addr` (use port 0 for an ephemeral port)
    /// with explicit monitor-overload bounds.
    pub fn start_with(
        db: Database,
        addr: impl ToSocketAddrs,
        overload: MonitorOverload,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            db: Mutex::new(db),
            subs: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(1),
            conns: Mutex::new(Vec::new()),
            overload,
        });
        let accept_state = state.clone();
        let accept_thread = std::thread::spawn(move || loop {
            if accept_state.shutdown.load(Ordering::Relaxed) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let st = accept_state.clone();
                    std::thread::spawn(move || serve_connection(st, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        });
        Ok(Server {
            state,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Run a transaction directly (in-process), still notifying monitors.
    pub fn transact_local(&self, ops: &Json) -> Json {
        let started = std::time::Instant::now();
        let (results, changes) = self.state.db.lock().transact(ops);
        let commit_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        record_commit(commit_ns);
        notify(
            &self.state,
            &changes,
            Some((telemetry::next_trace_id(), commit_ns)),
        );
        results
    }

    /// Read-only access to the database.
    pub fn with_db<T>(&self, f: impl FnOnce(&Database) -> T) -> T {
        f(&self.state.db.lock())
    }

    /// Sever every live client connection (the server keeps accepting
    /// new ones). Simulates a crash of the monitor channel: clients see
    /// EOF at once.
    pub fn disconnect_all(&self) {
        let conns = self.state.conns.lock();
        for (_, stream) in conns.iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Number of live client connections.
    pub fn connection_count(&self) -> usize {
        self.state.conns.lock().len()
    }

    /// Number of live monitor subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.state.subs.lock().len()
    }

    /// Stop accepting connections and sever the live ones.
    pub fn shutdown(&mut self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        self.disconnect_all();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn record_commit(commit_ns: u64) {
    let m = server_metrics();
    m.commits.inc();
    m.commit_us.record(commit_ns / 1_000);
}

fn notify(state: &ServerState, changes: &[crate::db::RowChange], trace: Option<(u64, u64)>) {
    if changes.is_empty() {
        return;
    }
    if let Some((id, commit_ns)) = trace {
        // The flight recorder sees every acknowledged commit, and the
        // convergence clock starts here: lag is measured from this ack
        // to the switch writes that settle the trace.
        telemetry::record_event(
            telemetry::Plane::Management,
            "ovsdb.commit",
            id,
            &[("rows", changes.len() as u64), ("commit_ns", commit_ns)],
        );
        telemetry::global().convergence_begin(id);
    }
    let mut evicted: Vec<u64> = Vec::new();
    let mut dead: Vec<u64> = Vec::new();
    {
        let subs = state.subs.lock();
        let mut max_depth = 0usize;
        for sub in subs.iter() {
            if evicted.contains(&sub.conn_id) || dead.contains(&sub.conn_id) {
                continue;
            }
            let Some(mut updates) = sub.monitor.format_changes(changes) else {
                continue;
            };
            if let (Some((id, commit_ns)), Some(obj)) = (trace, updates.as_object_mut()) {
                obj.insert(
                    TRACE_KEY.to_string(),
                    json!({"id": id, "commit_ns": commit_ns}),
                );
            }
            server_metrics().fanout.inc();
            telemetry::log_debug!(
                "ovsdb",
                "monitor update to conn {} (trace {:?})",
                sub.conn_id,
                trace.map(|t| t.0)
            );
            let msg = Message::Notification {
                method: "update".to_string(),
                params: json!([sub.mon_id, updates]),
            };
            // Fast path first; only a full outbox pays the blocking
            // wait, and only up to the eviction deadline.
            let sent = match sub.tx.try_send(msg) {
                Ok(()) => Ok(()),
                Err(TrySendError::Disconnected(_)) => {
                    dead.push(sub.conn_id);
                    continue;
                }
                Err(TrySendError::Full(msg)) => sub
                    .tx
                    .send_timeout(msg, state.overload.evict_deadline)
                    .map_err(|e| e.is_timeout()),
            };
            match sent {
                Ok(()) => {
                    max_depth = max_depth.max(sub.tx.len());
                    telemetry::record_event(
                        telemetry::Plane::Management,
                        "ovsdb.monitor_fanout",
                        trace.map(|t| t.0).unwrap_or(0),
                        &[("conn", sub.conn_id), ("rows", changes.len() as u64)],
                    );
                }
                Err(true) => {
                    // Slow consumer: could not drain one slot within
                    // the deadline. Evict the whole connection; its
                    // reconnect + re-monitor resync makes this safe.
                    server_metrics().evictions.inc();
                    telemetry::record_event(
                        telemetry::Plane::Management,
                        "ovsdb.monitor_evict",
                        trace.map(|t| t.0).unwrap_or(0),
                        &[
                            ("conn", sub.conn_id),
                            ("outbox", sub.tx.len() as u64),
                            (
                                "deadline_ms",
                                state.overload.evict_deadline.as_millis() as u64,
                            ),
                        ],
                    );
                    telemetry::log_warn!(
                        "ovsdb",
                        "evicting slow monitor subscriber on conn {} (outbox {} full past {:?})",
                        sub.conn_id,
                        sub.tx.len(),
                        state.overload.evict_deadline
                    );
                    evicted.push(sub.conn_id);
                }
                Err(false) => {
                    dead.push(sub.conn_id);
                }
            }
        }
        let m = server_metrics();
        m.outbox_depth.set(max_depth as i64);
        m.outbox_depth_hwm.set_max(max_depth as i64);
    }
    // Tear evicted/dead connections down outside the subs iteration:
    // drop every subscription of theirs now (not when their reader
    // notices) and sever the socket so the client observes the close.
    if !evicted.is_empty() || !dead.is_empty() {
        state
            .subs
            .lock()
            .retain(|s| !evicted.contains(&s.conn_id) && !dead.contains(&s.conn_id));
        for conn_id in evicted.iter().chain(dead.iter()) {
            state.sever_conn(*conn_id);
        }
    }
}

fn serve_connection(state: Arc<ServerState>, stream: TcpStream) {
    let conn_id = state.next_conn.fetch_add(1, Ordering::Relaxed);
    server_metrics().connections.inc();
    telemetry::log_info!("ovsdb", "connection {conn_id} accepted");
    let _ = stream.set_nodelay(true);
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    if let Ok(handle) = stream.try_clone() {
        state.conns.lock().push((conn_id, handle));
    }
    // Writer thread: drains the outbound queue so slow readers do not
    // block transaction commit. The outbox is bounded — a subscriber
    // that stops draining fills it and `notify` evicts the connection
    // rather than buffering without limit.
    let (tx, rx) = bounded::<Message>(state.overload.outbox_cap);
    let writer_state = Arc::clone(&state);
    let writer = std::thread::spawn(move || {
        let mut w = write_stream;
        for msg in rx.iter() {
            if write_message(&mut w, &msg).is_err() {
                // The peer is gone (or its socket is wedged): tear down
                // this connection's subscriptions now so fan-out stops
                // paying for it, instead of waiting for the reader side
                // to notice EOF.
                server_metrics().disconnects.inc();
                telemetry::log_warn!(
                    "ovsdb",
                    "write to conn {conn_id} failed; dropping its subscriptions"
                );
                writer_state.subs.lock().retain(|s| s.conn_id != conn_id);
                writer_state.sever_conn(conn_id);
                break;
            }
        }
        let _ = w.shutdown(std::net::Shutdown::Both);
    });

    let mut reader = MessageReader::new(stream);
    while let Ok(Some(msg)) = reader.read() {
        match msg {
            Message::Request { id, method, params } => {
                let (result, error) = handle_request(&state, conn_id, &tx, &method, &params);
                let _ = tx.send(Message::Response { id, result, error });
            }
            Message::Notification { .. } | Message::Response { .. } => {
                // Clients do not send notifications we care about; echo
                // replies etc. are ignored.
            }
        }
    }
    // Connection closed: drop its subscriptions, registry entry, writer.
    state.subs.lock().retain(|s| s.conn_id != conn_id);
    state.conns.lock().retain(|(id, _)| *id != conn_id);
    drop(tx);
    let _ = writer.join();
}

fn handle_request(
    state: &ServerState,
    conn_id: u64,
    tx: &Sender<Message>,
    method: &str,
    params: &Json,
) -> (Json, Json) {
    let err = |msg: String| (Json::Null, json!({"error": msg}));
    match method {
        "echo" => (params.clone(), Json::Null),
        "list_dbs" => {
            let db = state.db.lock();
            (json!([db.schema().name]), Json::Null)
        }
        "get_schema" => {
            let db = state.db.lock();
            match params.get(0).and_then(Json::as_str) {
                Some(name) if name == db.schema().name => (db.schema().to_json(), Json::Null),
                Some(name) => err(format!("no database {name:?}")),
                None => err("get_schema needs a database name".to_string()),
            }
        }
        "transact" => {
            let arr = match params.as_array() {
                Some(a) if !a.is_empty() => a,
                _ => return err("transact needs [db, op...]".to_string()),
            };
            let mut db = state.db.lock();
            if arr[0].as_str() != Some(db.schema().name.as_str()) {
                return err(format!("no database {}", arr[0]));
            }
            let ops = Json::Array(arr[1..].to_vec());
            let started = std::time::Instant::now();
            let (results, changes) = db.transact(&ops);
            drop(db);
            let commit_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            record_commit(commit_ns);
            notify(
                state,
                &changes,
                Some((telemetry::next_trace_id(), commit_ns)),
            );
            (results, Json::Null)
        }
        "monitor" => {
            let arr = match params.as_array() {
                Some(a) if a.len() == 3 => a,
                _ => return err("monitor needs [db, id, requests]".to_string()),
            };
            let db = state.db.lock();
            if arr[0].as_str() != Some(db.schema().name.as_str()) {
                return err(format!("no database {}", arr[0]));
            }
            let monitor = match Monitor::parse(&arr[2], &db) {
                Ok(m) => m,
                Err(e) => return err(e),
            };
            let initial = monitor.initial_state(&db);
            state.subs.lock().push(Subscription {
                conn_id,
                mon_id: arr[1].clone(),
                monitor,
                tx: tx.clone(),
            });
            (initial, Json::Null)
        }
        "commit_index" => {
            let db = state.db.lock();
            (json!(db.commit_index()), Json::Null)
        }
        "monitor_cancel" => {
            let mon_id = params.get(0).cloned().unwrap_or(Json::Null);
            let mut subs = state.subs.lock();
            let before = subs.len();
            subs.retain(|s| !(s.conn_id == conn_id && s.mon_id == mon_id));
            if subs.len() == before {
                return err("unknown monitor".to_string());
            }
            (json!({}), Json::Null)
        }
        other => err(format!("unknown method {other:?}")),
    }
}

/// State shared between a [`Client`] and its reader thread. When the
/// connection dies (server crash, proxy kill, EOF) the reader thread
/// tears this down: it marks the client dead, fails every in-flight
/// call, and closes every monitor channel — so callers observe the
/// failure immediately instead of hanging until a timeout.
struct ClientState {
    pending: Mutex<HashMap<String, Sender<(Json, Json)>>>,
    monitors: Mutex<Vec<(Json, Sender<Json>)>>,
    dead: AtomicBool,
}

impl ClientState {
    /// Mark the connection dead and release every waiter. Dropping the
    /// pending senders fails in-flight `call`s; dropping the monitor
    /// senders disconnects their receivers, which is how the controller
    /// notices the monitor stream is gone.
    fn teardown(&self) {
        self.dead.store(true, Ordering::SeqCst);
        self.pending.lock().clear();
        self.monitors.lock().clear();
    }
}

/// A blocking OVSDB client with explicit connection-failure semantics:
/// once the transport dies, every call fails fast with "connection
/// closed" (nothing hangs), monitor channels disconnect, and
/// [`Client::reconnect`] yields a fresh connection to the same server.
pub struct Client {
    writer: Mutex<TcpStream>,
    state: Arc<ClientState>,
    next_id: AtomicU64,
    peer: SocketAddr,
    reader: Mutex<Option<JoinHandle<()>>>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let read_stream = stream.try_clone()?;
        let state = Arc::new(ClientState {
            pending: Mutex::new(HashMap::new()),
            monitors: Mutex::new(Vec::new()),
            dead: AtomicBool::new(false),
        });
        let st = state.clone();
        let reader = std::thread::spawn(move || {
            let mut r = MessageReader::new(read_stream);
            while let Ok(Some(msg)) = r.read() {
                match msg {
                    Message::Response { id, result, error } => {
                        let key = id.to_string();
                        if let Some(tx) = st.pending.lock().remove(&key) {
                            let _ = tx.send((result, error));
                        }
                    }
                    Message::Notification { method, params } if method == "update" => {
                        let mon_id = params.get(0).cloned().unwrap_or(Json::Null);
                        let updates = params.get(1).cloned().unwrap_or(Json::Null);
                        for (id, tx) in st.monitors.lock().iter() {
                            if *id == mon_id {
                                let _ = tx.send(updates.clone());
                            }
                        }
                    }
                    _ => {}
                }
            }
            st.teardown();
        });
        Ok(Client {
            writer: Mutex::new(stream),
            state,
            next_id: AtomicU64::new(1),
            peer,
            reader: Mutex::new(Some(reader)),
        })
    }

    /// Whether the transport is still up. `false` once the server end
    /// dropped or [`Client::close`] ran.
    pub fn is_connected(&self) -> bool {
        !self.state.dead.load(Ordering::SeqCst)
    }

    /// The server address this client connected to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Open a fresh connection to the same server. The original client
    /// keeps its (possibly dead) connection; monitors are per-connection
    /// and must be re-issued on the new client.
    pub fn reconnect(&self) -> std::io::Result<Client> {
        Client::connect(self.peer)
    }

    /// Close the connection: in-flight calls fail, monitor channels
    /// disconnect, subsequent calls return "connection closed".
    pub fn close(&self) {
        self.state.teardown();
        let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
        if let Some(h) = self.reader.lock().take() {
            let _ = h.join();
        }
    }

    fn call(&self, method: &str, params: Json) -> Result<Json, String> {
        if self.state.dead.load(Ordering::SeqCst) {
            return Err("connection closed".to_string());
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let id_json = json!(id);
        let (tx, rx) = unbounded();
        let key = id_json.to_string();
        self.state.pending.lock().insert(key.clone(), tx);
        // Teardown may have raced between the liveness check and the
        // insert; re-check so the entry cannot linger and the call
        // cannot wait on a sender nobody will ever use.
        if self.state.dead.load(Ordering::SeqCst) {
            self.state.pending.lock().remove(&key);
            return Err("connection closed".to_string());
        }
        {
            let mut w = self.writer.lock();
            let res = write_message(
                &mut *w,
                &Message::Request {
                    id: id_json,
                    method: method.to_string(),
                    params,
                },
            );
            if let Err(e) = res {
                self.state.pending.lock().remove(&key);
                self.state.teardown();
                return Err(e.to_string());
            }
        }
        let (result, error) = rx.recv_timeout(Duration::from_secs(30)).map_err(|e| {
            self.state.pending.lock().remove(&key);
            match e {
                crossbeam_channel::RecvTimeoutError::Disconnected => {
                    "connection closed".to_string()
                }
                crossbeam_channel::RecvTimeoutError::Timeout => "rpc timeout".to_string(),
            }
        })?;
        if !error.is_null() {
            return Err(error.to_string());
        }
        Ok(result)
    }

    /// Run a transaction; `ops` is the JSON array of operations.
    pub fn transact(&self, db: &str, ops: Json) -> Result<Json, String> {
        let mut params = vec![json!(db)];
        match ops {
            Json::Array(a) => params.extend(a),
            other => params.push(other),
        }
        self.call("transact", Json::Array(params))
    }

    /// Fetch the database schema.
    pub fn get_schema(&self, db: &str) -> Result<Json, String> {
        self.call("get_schema", json!([db]))
    }

    /// Round-trip liveness probe.
    pub fn echo(&self) -> Result<Json, String> {
        self.call("echo", json!(["ping"]))
    }

    /// The server's monotonic commit index. A freshly restarted server
    /// that lost (some) state reports a lower index than before —
    /// supervisors use this to detect an epoch reset and force a full
    /// resync rather than trusting monitor continuity.
    pub fn commit_index(&self) -> Result<u64, String> {
        let v = self.call("commit_index", json!([]))?;
        v.as_u64()
            .ok_or_else(|| format!("commit_index returned non-integer {v}"))
    }

    /// Register a monitor; returns the initial table-updates plus a
    /// channel of subsequent updates. The channel disconnects when the
    /// connection dies — receivers observe `RecvError` rather than
    /// blocking forever.
    pub fn monitor(
        &self,
        db: &str,
        mon_id: Json,
        requests: Json,
    ) -> Result<(Json, crossbeam_channel::Receiver<Json>), String> {
        let (tx, rx) = unbounded();
        self.state.monitors.lock().push((mon_id.clone(), tx));
        match self.call("monitor", json!([db, mon_id, requests])) {
            Ok(initial) => Ok((initial, rx)),
            Err(e) => {
                self.state.monitors.lock().retain(|(id, _)| *id != mon_id);
                Err(e)
            }
        }
    }

    /// Cancel a monitor registered on this connection. On a dead
    /// connection this returns an error immediately instead of hanging.
    pub fn monitor_cancel(&self, mon_id: Json) -> Result<(), String> {
        self.call("monitor_cancel", json!([mon_id]))?;
        self.state.monitors.lock().retain(|(id, _)| *id != mon_id);
        Ok(())
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn test_db() -> Database {
        let schema = Schema::from_json(&json!({
            "name": "testdb",
            "tables": {
                "T": {"columns": {"k": {"type": "string"},
                                  "v": {"type": "integer"}}, "isRoot": true}
            }
        }))
        .unwrap();
        Database::new(schema)
    }

    #[test]
    fn end_to_end_over_tcp() {
        let server = Server::start(test_db(), "127.0.0.1:0").unwrap();
        let client = Client::connect(server.local_addr()).unwrap();

        assert_eq!(client.echo().unwrap(), json!(["ping"]));
        assert_eq!(
            client.get_schema("testdb").unwrap()["name"],
            json!("testdb")
        );
        assert!(client.get_schema("nope").is_err());

        // Monitor, then transact from a second client; the update must
        // arrive on the monitor channel.
        let (initial, updates) = client
            .monitor("testdb", json!("m1"), json!({"T": {}}))
            .unwrap();
        assert_eq!(initial, json!({}));

        let client2 = Client::connect(server.local_addr()).unwrap();
        let res = client2
            .transact(
                "testdb",
                json!([{"op": "insert", "table": "T", "row": {"k": "a", "v": 1}}]),
            )
            .unwrap();
        assert!(res[0]["uuid"].is_array());

        let upd = updates.recv_timeout(Duration::from_secs(5)).unwrap();
        let rows = upd["T"].as_object().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows.values().next().unwrap()["new"]["k"], json!("a"));

        // Cancel: further transactions produce no update.
        client.monitor_cancel(json!("m1")).unwrap();
        client2
            .transact(
                "testdb",
                json!([{"op": "insert", "table": "T", "row": {"k": "b", "v": 2}}]),
            )
            .unwrap();
        assert!(updates.recv_timeout(Duration::from_millis(300)).is_err());
    }

    #[test]
    fn transact_local_notifies_tcp_monitors() {
        let server = Server::start(test_db(), "127.0.0.1:0").unwrap();
        let client = Client::connect(server.local_addr()).unwrap();
        let (_, updates) = client
            .monitor("testdb", json!(1), json!({"T": {}}))
            .unwrap();
        server.transact_local(&json!([
            {"op": "insert", "table": "T", "row": {"k": "x", "v": 9}}
        ]));
        let upd = updates.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(upd["T"].is_object());
    }

    #[test]
    fn bad_method_and_bad_db() {
        let server = Server::start(test_db(), "127.0.0.1:0").unwrap();
        let client = Client::connect(server.local_addr()).unwrap();
        assert!(client.call("bogus", json!([])).is_err());
        assert!(client.transact("wrongdb", json!([])).is_err());
    }

    /// Register a monitor from a raw socket (no reader thread) and hand
    /// back the socket plus a reader positioned after the monitor reply.
    fn raw_monitor(addr: SocketAddr, mon_id: &str) -> (TcpStream, MessageReader<TcpStream>) {
        let mut sock = TcpStream::connect(addr).unwrap();
        write_message(
            &mut sock,
            &Message::Request {
                id: json!(1),
                method: "monitor".to_string(),
                params: json!(["testdb", mon_id, {"T": {}}]),
            },
        )
        .unwrap();
        let mut rd = MessageReader::new(sock.try_clone().unwrap());
        match rd.read().unwrap() {
            Some(Message::Response { error, .. }) => assert!(error.is_null()),
            other => panic!("expected monitor reply, got {other:?}"),
        }
        (sock, rd)
    }

    #[test]
    fn slow_monitor_subscriber_is_evicted_and_healthy_one_survives() {
        let server = Server::start_with(
            test_db(),
            "127.0.0.1:0",
            MonitorOverload {
                outbox_cap: 2,
                evict_deadline: Duration::from_millis(100),
            },
        )
        .unwrap();

        // Healthy subscriber: regular client whose reader thread drains.
        let healthy = Client::connect(server.local_addr()).unwrap();
        let (_, updates) = healthy
            .monitor("testdb", json!("ok"), json!({"T": {}}))
            .unwrap();

        // Slow subscriber: raw socket that registers a monitor and then
        // never reads another byte, so its TCP window and then its
        // bounded outbox fill up.
        let (_slow_sock, mut slow_rd) = raw_monitor(server.local_addr(), "slow");
        assert_eq!(server.subscription_count(), 2);

        let evictions_before = server_metrics().evictions.get();
        let disconnects_before = server_metrics().disconnects.get();

        // Flood with fat rows until the slow subscriber is evicted.
        let big = "x".repeat(1 << 20);
        let mut evicted = false;
        for i in 0..32 {
            server.transact_local(&json!([
                {"op": "insert", "table": "T", "row": {"k": format!("r{i}-{big}"), "v": 1}}
            ]));
            if server.subscription_count() == 1 {
                evicted = true;
                break;
            }
        }
        assert!(evicted, "slow subscriber was never evicted");
        assert!(server_metrics().evictions.get() > evictions_before);

        // The healthy subscriber keeps receiving; the last transact must
        // still reach it after the eviction.
        server.transact_local(&json!([
            {"op": "insert", "table": "T", "row": {"k": "after", "v": 2}}
        ]));
        let mut saw_after = false;
        while let Ok(upd) = updates.recv_timeout(Duration::from_secs(5)) {
            if upd["T"]
                .as_object()
                .map(|rows| rows.values().any(|r| r["new"]["k"] == json!("after")))
                .unwrap_or(false)
            {
                saw_after = true;
                break;
            }
        }
        assert!(saw_after, "healthy subscriber lost updates after eviction");

        // The evicted socket observes the close: draining whatever was
        // buffered ends in EOF or an error, never a hang.
        while let Ok(Some(_)) = slow_rd.read() {}

        // Severing the socket makes the blocked writer's in-flight
        // write fail, which exercises the failed-write teardown path.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server_metrics().disconnects.get() == disconnects_before
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(server_metrics().disconnects.get() > disconnects_before);
    }

    #[test]
    fn dead_peer_subscriptions_are_torn_down() {
        let server = Server::start(test_db(), "127.0.0.1:0").unwrap();
        let (sock, rd) = raw_monitor(server.local_addr(), "doomed");
        assert_eq!(server.subscription_count(), 1);
        drop(rd);
        sock.shutdown(std::net::Shutdown::Both).unwrap();
        drop(sock);

        // Keep committing; the server must notice the dead peer (reader
        // EOF or failed write) and drop its subscriptions.
        let mut gone = false;
        for i in 0..200 {
            server.transact_local(&json!([
                {"op": "insert", "table": "T", "row": {"k": format!("d{i}"), "v": 1}}
            ]));
            if server.subscription_count() == 0 {
                gone = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(gone, "dead peer's subscriptions were never dropped");
    }
}
