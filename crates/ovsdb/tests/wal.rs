//! Durability properties of the write-ahead log:
//!
//! * replaying the log reconstructs the live state exactly, for
//!   arbitrary transaction sequences (including aborted transactions,
//!   which consume UUID counter values without being logged);
//! * a tail torn at *every* byte offset of the final record recovers to
//!   the previous commit, losing at most that single record;
//! * recovery from snapshot + WAL suffix is byte-equivalent to
//!   replaying the full log from genesis;
//! * a corrupted log interior fails with a typed
//!   [`WalError::CorruptRecord`], never a panic.

use std::path::{Path, PathBuf};

use ovsdb::wal::final_record_span;
use ovsdb::{Database, DurabilityConfig, FsyncPolicy, Schema, WalError};
use proptest::prelude::*;
use serde_json::{json, Value as Json};

fn schema() -> Schema {
    Schema::from_json(&json!({
        "name": "t",
        "tables": {
            "Port": {"columns": {
                "name": {"type": "string"},
                "tag": {"type": {"key": "integer", "min": 0, "max": 1}},
                "up": {"type": "boolean"}
            }, "isRoot": true, "indexes": [["name"]]}
        }
    }))
    .unwrap()
}

/// A scratch durability directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "nerpa-wal-scratch-{}-{tag}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config(fsync: FsyncPolicy, snapshot_after_bytes: u64) -> DurabilityConfig {
    DurabilityConfig {
        fsync,
        snapshot_after_bytes,
    }
}

/// Full observable state: the monitor-snapshot JSON plus the counters.
fn state_of(db: &Database) -> (String, u64) {
    let snap = db.monitor_snapshot(&["Port"]).unwrap();
    (snap.to_string(), db.commit_index())
}

#[derive(Debug, Clone)]
enum Op {
    Insert(String, i64, bool),
    UpdateTag(String, i64),
    Delete(String),
    /// A transaction that aborts midway (second op hits an unknown
    /// table) *after* minting a UUID — exercising the rule that aborted
    /// transactions consume UUID counter values without being logged.
    Abort(String),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let name = (0u8..6).prop_map(|n| format!("p{n}"));
    prop_oneof![
        (name.clone(), 0i64..100, any::<bool>()).prop_map(|(n, t, u)| Op::Insert(n, t, u)),
        (name.clone(), 0i64..100).prop_map(|(n, t)| Op::UpdateTag(n, t)),
        name.clone().prop_map(Op::Delete),
        name.prop_map(Op::Abort),
    ]
}

fn to_txn(op: &Op) -> Json {
    match op {
        Op::Insert(n, t, u) => json!([
            {"op": "insert", "table": "Port", "row": {"name": n, "tag": *t, "up": *u}}
        ]),
        Op::UpdateTag(n, t) => json!([
            {"op": "update", "table": "Port",
             "where": [["name", "==", n]], "row": {"tag": *t}}
        ]),
        Op::Delete(n) => json!([
            {"op": "delete", "table": "Port", "where": [["name", "==", n]]}
        ]),
        Op::Abort(n) => json!([
            {"op": "insert", "table": "Port", "row": {"name": n, "tag": 0, "up": false}},
            {"op": "insert", "table": "Nope", "row": {}}
        ]),
    }
}

/// Drive `ops` into a durable database at `dir`; duplicate-name inserts
/// abort via the unique index, which is part of what we want to exercise.
fn run_ops(dir: &Path, cfg: DurabilityConfig, ops: &[Op]) -> Database {
    let (mut db, _) = Database::open(dir, schema(), cfg).unwrap();
    for op in ops {
        db.transact(&to_txn(op));
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round-trip: reopening a durable database replays the WAL into
    /// exactly the live state — tables, commit index, and future UUID
    /// minting all agree.
    #[test]
    fn replay_reconstructs_live_state(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let scratch = Scratch::new("roundtrip");
        let cfg = config(FsyncPolicy::Never, u64::MAX);
        let live = run_ops(scratch.path(), cfg, &ops);
        let live_state = state_of(&live);
        drop(live);

        // Recovery is deterministic: recover the same log twice (from a
        // byte-identical copy) and both must behave identically for
        // future commits, UUID minting included.
        let twin = Scratch::new("roundtrip-twin");
        std::fs::copy(
            scratch.path().join("wal.log"),
            twin.path().join("wal.log"),
        ).unwrap();

        let (mut recovered, report) = Database::open(scratch.path(), schema(), cfg).unwrap();
        prop_assert_eq!(state_of(&recovered), live_state);
        prop_assert!(!report.truncated_tail);

        let (mut recovered2, _) = Database::open(twin.path(), schema(), cfg).unwrap();
        let probe = json!([
            {"op": "insert", "table": "Port", "row": {"name": "probe", "tag": 0, "up": true}}
        ]);
        let (results, _) = recovered.transact(&probe);
        let (results2, _) = recovered2.transact(&probe);
        prop_assert_eq!(results.to_string(), results2.to_string());
        prop_assert_eq!(state_of(&recovered), state_of(&recovered2));
    }

    /// Snapshot + suffix replay is byte-equivalent to full-log replay:
    /// the same op sequence recovered through aggressive compaction and
    /// through a never-compacted log yields identical state and identical
    /// subsequent behavior.
    #[test]
    fn snapshot_plus_suffix_equals_full_log(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let full = Scratch::new("fulllog");
        let compacted = Scratch::new("compacted");
        // snapshot_after_bytes = 1: compaction after (nearly) every commit.
        let cfg_full = config(FsyncPolicy::Never, u64::MAX);
        let cfg_snap = config(FsyncPolicy::Never, 1);
        drop(run_ops(full.path(), cfg_full, &ops));
        drop(run_ops(compacted.path(), cfg_snap, &ops));

        let (mut a, _) = Database::open(full.path(), schema(), cfg_full).unwrap();
        let (mut b, _) = Database::open(compacted.path(), schema(), cfg_snap).unwrap();
        prop_assert_eq!(state_of(&a), state_of(&b));

        // Divergence would also show up in later commits; prove it doesn't.
        let probe = json!([
            {"op": "insert", "table": "Port", "row": {"name": "zz", "tag": 1, "up": false}}
        ]);
        let (ra, _) = a.transact(&probe);
        let (rb, _) = b.transact(&probe);
        prop_assert_eq!(ra.to_string(), rb.to_string());
        prop_assert_eq!(state_of(&a), state_of(&b));
    }
}

/// Tear the WAL at every byte offset inside its final record: each torn
/// image must recover cleanly to the state just before the final commit
/// (never panic, never lose more than that single record).
#[test]
fn torn_tail_truncation_at_every_offset() {
    let scratch = Scratch::new("torn");
    let cfg = config(FsyncPolicy::Never, u64::MAX);
    let ops = [
        Op::Insert("a".into(), 1, true),
        Op::Insert("b".into(), 0, false),
        Op::UpdateTag("a".into(), 7),
        Op::Insert("c".into(), 3, true),
    ];
    // State after all but the final commit — what every torn image must
    // recover to.
    let prefix = Scratch::new("torn-prefix");
    let want = state_of(&run_ops(prefix.path(), cfg, &ops[..ops.len() - 1]));

    drop(run_ops(scratch.path(), cfg, &ops));
    let wal_path = scratch.path().join("wal.log");
    let image = std::fs::read(&wal_path).unwrap();
    let (start, end) = final_record_span(&image).unwrap();
    assert!(end == image.len() as u64 && start < end);

    for cut in (start as usize)..(end as usize) {
        let case = Scratch::new(&format!("torn-{cut}"));
        std::fs::write(case.path().join("wal.log"), &image[..cut]).unwrap();
        let (db, report) = Database::open(case.path(), schema(), cfg)
            .unwrap_or_else(|e| panic!("cut at {cut}: recovery failed: {e}"));
        assert_eq!(state_of(&db), want.clone(), "cut at {cut}");
        // Cutting at exactly the record boundary leaves a clean shorter
        // log; any cut inside the record is a torn tail.
        assert_eq!(report.truncated_tail, cut > start as usize, "cut at {cut}");
        assert_eq!(report.replayed_records, ops.len() as u64 - 1);
        // The torn bytes are gone from disk after recovery.
        assert_eq!(
            std::fs::metadata(case.path().join("wal.log"))
                .unwrap()
                .len(),
            start,
            "cut at {cut}"
        );
    }
}

/// The checked-in corrupted-WAL fixture (valid record whose CRC was
/// damaged, with more data after it) must fail with the typed
/// `WalError::CorruptRecord` — not a panic, and not silent truncation.
#[test]
fn corrupt_fixture_fails_with_typed_error() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/corrupt.wal");
    let scratch = Scratch::new("fixture");
    std::fs::copy(&fixture, scratch.path().join("wal.log")).unwrap();
    let cfg = config(FsyncPolicy::Never, u64::MAX);
    match Database::open(scratch.path(), schema(), cfg) {
        Err(WalError::CorruptRecord { offset, .. }) => assert_eq!(offset, 0),
        Ok(_) => panic!("corrupt interior was silently accepted"),
        Err(other) => panic!("expected CorruptRecord, got {other}"),
    }
}

/// Recovery is served before the database is usable: `open` on a
/// non-empty log reports replayed records and leaves the commit index
/// where the log ended.
#[test]
fn recovery_report_counts() {
    let scratch = Scratch::new("report");
    let cfg = config(FsyncPolicy::Always, u64::MAX);
    let ops = [
        Op::Insert("a".into(), 1, true),
        Op::Abort("dup".into()),
        Op::Insert("b".into(), 0, false),
    ];
    let live = run_ops(scratch.path(), cfg, &ops);
    // The abort committed nothing: 2 commits total.
    assert_eq!(live.commit_index(), 2);
    drop(live);
    let (db, report) = Database::open(scratch.path(), schema(), cfg).unwrap();
    assert_eq!(report.replayed_records, 2);
    assert_eq!(db.commit_index(), 2);
    assert!(!report.truncated_tail);
}

/// Compaction keeps state intact and truncates the log; a crash *between*
/// snapshot rename and log truncation (overlapping prefix) still
/// recovers correctly because replay skips records the snapshot covers.
#[test]
fn compaction_and_overlapping_prefix() {
    let scratch = Scratch::new("compact");
    let cfg = config(FsyncPolicy::Never, u64::MAX);
    let mut db = run_ops(
        scratch.path(),
        cfg,
        &[
            Op::Insert("a".into(), 1, true),
            Op::Insert("b".into(), 0, false),
        ],
    );
    let wal_path = scratch.path().join("wal.log");
    let pre_compact_log = std::fs::read(&wal_path).unwrap();
    db.compact().unwrap();
    assert_eq!(std::fs::metadata(&wal_path).unwrap().len(), 0);
    let want = state_of(&db);
    drop(db);

    // Simulate the crash window: restore the already-snapshotted log
    // prefix alongside the snapshot.
    std::fs::write(&wal_path, &pre_compact_log).unwrap();
    let (db, report) = Database::open(scratch.path(), schema(), cfg).unwrap();
    assert_eq!(state_of(&db), want);
    assert_eq!(report.snapshot_commit_index, 2);
    assert_eq!(
        report.replayed_records, 0,
        "snapshot-covered records skipped"
    );
}
