//! Connection-teardown semantics: when the transport under a client
//! dies, everything waiting on it must observe the failure promptly —
//! monitor channels disconnect, in-flight and subsequent calls error,
//! and nothing hangs. These are the guarantees the controller's
//! supervisor (crate `nerpa`) builds recovery on.

use std::time::{Duration, Instant};

use crossbeam_channel::RecvTimeoutError;
use ovsdb::db::Database;
use ovsdb::schema::Schema;
use ovsdb::{Client, Server};
use serde_json::json;

fn test_db() -> Database {
    let schema = Schema::from_json(&json!({
        "name": "testdb",
        "tables": {
            "T": {"columns": {"k": {"type": "string"},
                              "v": {"type": "integer"}}, "isRoot": true}
        }
    }))
    .unwrap();
    Database::new(schema)
}

fn insert(client: &Client, k: &str, v: i64) {
    client
        .transact(
            "testdb",
            json!([{"op": "insert", "table": "T", "row": {"k": k, "v": v}}]),
        )
        .unwrap();
}

#[test]
fn server_drop_mid_monitor_closes_channel() {
    let server = Server::start(test_db(), "127.0.0.1:0").unwrap();
    let client = Client::connect(server.local_addr()).unwrap();
    let (initial, updates) = client
        .monitor("testdb", json!("m"), json!({"T": {}}))
        .unwrap();
    assert_eq!(initial, json!({}));
    assert!(client.is_connected());

    // A live update still flows.
    insert(&client, "a", 1);
    updates.recv_timeout(Duration::from_secs(5)).unwrap();

    // Sever every connection server-side, as a crash would. The monitor
    // channel must disconnect — not block, not deliver garbage.
    server.disconnect_all();
    let start = Instant::now();
    match updates.recv_timeout(Duration::from_secs(5)) {
        Err(RecvTimeoutError::Disconnected) => {}
        other => panic!("expected disconnect, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "disconnect must be observed promptly, not via timeout"
    );
    assert!(!client.is_connected());
}

#[test]
fn calls_on_dead_connection_fail_fast() {
    let server = Server::start(test_db(), "127.0.0.1:0").unwrap();
    let client = Client::connect(server.local_addr()).unwrap();
    client
        .monitor("testdb", json!("m"), json!({"T": {}}))
        .unwrap();

    server.disconnect_all();
    // Give the reader thread a moment to observe EOF and tear down.
    let deadline = Instant::now() + Duration::from_secs(5);
    while client.is_connected() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(!client.is_connected());

    // monitor_cancel on a dead connection errors instead of hanging.
    let start = Instant::now();
    assert!(client.monitor_cancel(json!("m")).is_err());
    assert!(start.elapsed() < Duration::from_secs(1));

    // So does every other call.
    assert!(client.echo().is_err());
    assert!(client.transact("testdb", json!([])).is_err());
}

#[test]
fn close_is_clean_and_idempotent() {
    let server = Server::start(test_db(), "127.0.0.1:0").unwrap();
    let client = Client::connect(server.local_addr()).unwrap();
    let (_, updates) = client
        .monitor("testdb", json!("m"), json!({"T": {}}))
        .unwrap();

    client.close();
    client.close(); // second close is a no-op
    assert!(!client.is_connected());
    assert_eq!(
        updates.recv_timeout(Duration::from_millis(500)),
        Err(RecvTimeoutError::Disconnected)
    );
    assert!(client.echo().is_err());
}

#[test]
fn reconnect_restores_service_and_monitors() {
    let server = Server::start(test_db(), "127.0.0.1:0").unwrap();
    let client = Client::connect(server.local_addr()).unwrap();
    let (_, updates) = client
        .monitor("testdb", json!("m"), json!({"T": {}}))
        .unwrap();

    server.disconnect_all();
    assert_eq!(
        updates.recv_timeout(Duration::from_secs(5)),
        Err(RecvTimeoutError::Disconnected)
    );

    // Monitors are per-connection: the fresh client re-issues and gets
    // the rows committed while the old link was down in its snapshot.
    insert(&Client::connect(server.local_addr()).unwrap(), "b", 2);
    let fresh = client.reconnect().unwrap();
    assert!(fresh.is_connected());
    let (initial, updates) = fresh
        .monitor("testdb", json!("m"), json!({"T": {}}))
        .unwrap();
    assert_eq!(initial["T"].as_object().unwrap().len(), 1);
    insert(&fresh, "c", 3);
    updates.recv_timeout(Duration::from_secs(5)).unwrap();
}

#[test]
fn server_tracks_connection_registry() {
    let server = Server::start(test_db(), "127.0.0.1:0").unwrap();
    let c1 = Client::connect(server.local_addr()).unwrap();
    let c2 = Client::connect(server.local_addr()).unwrap();
    // Registration happens on the connection threads; poll briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.connection_count() < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.connection_count(), 2);

    c1.close();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.connection_count() > 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.connection_count(), 1);
    assert!(c2.is_connected());
    drop(c2);
}
