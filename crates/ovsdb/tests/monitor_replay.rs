//! Property test: replaying a monitor's update stream against the
//! initial state reconstructs the database contents exactly — the
//! invariant Nerpa's controller depends on for state synchronization.

use std::collections::BTreeMap;

use ovsdb::{Database, Monitor, Schema};
use proptest::prelude::*;
use serde_json::{json, Value as Json};

fn schema() -> Schema {
    Schema::from_json(&json!({
        "name": "t",
        "tables": {
            "Port": {"columns": {
                "name": {"type": "string"},
                "tag": {"type": {"key": "integer", "min": 0, "max": 1}},
                "up": {"type": "boolean"}
            }, "isRoot": true}
        }
    }))
    .unwrap()
}

#[derive(Debug, Clone)]
enum Op {
    Insert(String, i64, bool),
    UpdateTag(String, i64),
    Delete(String),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let name = (0u8..5).prop_map(|n| format!("p{n}"));
    prop_oneof![
        (name.clone(), 0i64..100, any::<bool>()).prop_map(|(n, t, u)| Op::Insert(n, t, u)),
        (name.clone(), 0i64..100).prop_map(|(n, t)| Op::UpdateTag(n, t)),
        name.prop_map(Op::Delete),
    ]
}

/// Apply a table-updates JSON object to a shadow map keyed by row uuid.
fn replay(shadow: &mut BTreeMap<String, Json>, updates: &Json) {
    let Some(ports) = updates.get("Port").and_then(Json::as_object) else {
        return;
    };
    for (uuid, upd) in ports {
        match (upd.get("old"), upd.get("new")) {
            (None, Some(new)) => {
                shadow.insert(uuid.clone(), new.clone());
            }
            (Some(_), None) => {
                shadow.remove(uuid);
            }
            (Some(_), Some(new)) => {
                // `new` carries the full row for modifications.
                shadow.insert(uuid.clone(), new.clone());
            }
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn monitor_stream_reconstructs_state(ops in proptest::collection::vec(op_strategy(), 1..30)) {
        let mut db = Database::new(schema());
        // Some initial rows so `initial` is non-trivial.
        db.transact(&json!([
            {"op": "insert", "table": "Port", "row": {"name": "seed", "tag": 1, "up": true}}
        ]));

        let monitor = Monitor::parse(&json!({"Port": {}}), &db).unwrap();
        let mut shadow: BTreeMap<String, Json> = BTreeMap::new();
        replay(&mut shadow, &monitor.initial_state(&db));

        for op in &ops {
            let (_, changes) = db.transact(&to_txn(op));
            if let Some(upd) = monitor.format_changes(&changes) {
                replay(&mut shadow, &upd);
            }
        }

        // The shadow must equal the database contents.
        prop_assert_eq!(shadow, db_contents(&db));
    }

    /// A monitor re-issued after a reconnect delivers a snapshot
    /// identical to the one a brand-new client would receive, and
    /// replacing a stale (outage-era) shadow with that snapshot heals
    /// every missed update.
    #[test]
    fn reissued_monitor_matches_fresh_client(
        before in proptest::collection::vec(op_strategy(), 0..15),
        missed in proptest::collection::vec(op_strategy(), 1..15),
    ) {
        let mut db = Database::new(schema());
        db.transact(&json!([
            {"op": "insert", "table": "Port", "row": {"name": "seed", "tag": 1, "up": true}}
        ]));

        // A connected client tracks the database...
        let monitor = Monitor::parse(&json!({"Port": {}}), &db).unwrap();
        let mut shadow: BTreeMap<String, Json> = BTreeMap::new();
        replay(&mut shadow, &monitor.initial_state(&db));
        for op in &before {
            let (_, changes) = db.transact(&to_txn(op));
            if let Some(upd) = monitor.format_changes(&changes) {
                replay(&mut shadow, &upd);
            }
        }

        // ...then the link drops: these transactions are never delivered.
        for op in &missed {
            db.transact(&to_txn(op));
        }

        // On reconnect the client re-issues the monitor request. Its
        // snapshot must be byte-identical to a fresh client's.
        let reissued = Monitor::parse(&json!({"Port": {}}), &db).unwrap();
        let fresh = Monitor::parse(&json!({"Port": {}}), &db).unwrap();
        let snapshot = reissued.initial_state(&db);
        prop_assert_eq!(&snapshot, &fresh.initial_state(&db));

        // Resync: replace the stale shadow with the snapshot contents.
        shadow.clear();
        replay(&mut shadow, &snapshot);
        prop_assert_eq!(shadow, db_contents(&db));
    }
}

/// The database's Port table as uuid → row-object JSON.
fn db_contents(db: &Database) -> BTreeMap<String, Json> {
    let mut actual: BTreeMap<String, Json> = BTreeMap::new();
    for (uuid, row) in db.rows("Port") {
        let mut obj = serde_json::Map::new();
        for (c, d) in row.iter() {
            obj.insert(c.clone(), d.to_json());
        }
        actual.insert(uuid.to_string(), Json::Object(obj));
    }
    actual
}

fn to_txn(op: &Op) -> Json {
    match op {
        Op::Insert(n, t, u) => json!([
            {"op": "insert", "table": "Port",
             "row": {"name": format!("{n}-{t}"), "tag": t, "up": u}}
        ]),
        Op::UpdateTag(n, t) => json!([
            {"op": "update", "table": "Port",
             "where": [["name", "==", format!("{n}-0")]], "row": {"tag": t}}
        ]),
        Op::Delete(n) => json!([
            {"op": "delete", "table": "Port",
             "where": [["name", "==", format!("{n}-0")]]}
        ]),
    }
}
