//! Integration tests for the OVSDB database core: operations, atomicity,
//! constraints, referential integrity, and garbage collection.

use ovsdb::datum::{Atom, Datum, Uuid};
use ovsdb::db::Database;
use ovsdb::schema::Schema;
use serde_json::{json, Value as Json};

fn simple_db() -> Database {
    let schema = Schema::from_json(&json!({
        "name": "net",
        "tables": {
            "Port": {
                "columns": {
                    "name": {"type": "string"},
                    "tag": {"type": {"key": {"type": "integer",
                        "minInteger": 0, "maxInteger": 4095}, "min": 0, "max": 1}},
                    "trunks": {"type": {"key": "integer", "min": 0, "max": "unlimited"}},
                    "options": {"type": {"key": "string", "value": "string",
                        "min": 0, "max": "unlimited"}}
                },
                "isRoot": true,
                "indexes": [["name"]]
            }
        }
    }))
    .unwrap();
    Database::new(schema)
}

/// Schema with strong references and a GC-able (non-root) table.
fn ref_db() -> Database {
    let schema = Schema::from_json(&json!({
        "name": "refs",
        "tables": {
            "Bridge": {
                "columns": {
                    "name": {"type": "string"},
                    "ports": {"type": {"key": {"type": "uuid", "refTable": "Port"},
                              "min": 0, "max": "unlimited"}}
                },
                "isRoot": true
            },
            "Port": {
                "columns": {
                    "name": {"type": "string"},
                    "peer": {"type": {"key": {"type": "uuid", "refTable": "Port",
                              "refType": "weak"}, "min": 0, "max": 1}}
                }
            }
        }
    }))
    .unwrap();
    Database::new(schema)
}

fn uuid_of(result: &Json) -> Uuid {
    Uuid::parse(result["uuid"][1].as_str().unwrap()).unwrap()
}

#[test]
fn insert_select_roundtrip() {
    let mut db = simple_db();
    let (res, changes) = db.transact(&json!([
        {"op": "insert", "table": "Port",
         "row": {"name": "p1", "tag": 7, "trunks": ["set", [1, 2, 3]],
                 "options": ["map", [["speed", "10g"]]]}},
        {"op": "select", "table": "Port", "where": [["name", "==", "p1"]]}
    ]));
    assert_eq!(changes.len(), 1);
    let rows = res[1]["rows"].as_array().unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0]["tag"], json!(7));
    assert_eq!(rows[0]["trunks"], json!(["set", [1, 2, 3]]));
    assert_eq!(rows[0]["options"], json!(["map", [["speed", "10g"]]]));
    // Defaults: unspecified optional column comes back empty.
    let (res, _) = db.transact(&json!([
        {"op": "insert", "table": "Port", "row": {"name": "p2"}},
        {"op": "select", "table": "Port", "where": [["name", "==", "p2"]],
         "columns": ["tag"]}
    ]));
    assert_eq!(res[1]["rows"][0]["tag"], json!(["set", []]));
}

#[test]
fn atomicity_on_mid_transaction_failure() {
    let mut db = simple_db();
    let (res, changes) = db.transact(&json!([
        {"op": "insert", "table": "Port", "row": {"name": "good"}},
        {"op": "insert", "table": "Port", "row": {"name": "bad", "tag": 9999}}
    ]));
    assert!(changes.is_empty(), "failed txn must commit nothing");
    assert!(res[1]["error"].is_string(), "{res}");
    assert_eq!(db.table_len("Port"), 0);
}

#[test]
fn abort_operation() {
    let mut db = simple_db();
    let (_, changes) = db.transact(&json!([
        {"op": "insert", "table": "Port", "row": {"name": "x"}},
        {"op": "abort"}
    ]));
    assert!(changes.is_empty());
    assert_eq!(db.table_len("Port"), 0);
}

#[test]
fn update_and_mutate() {
    let mut db = simple_db();
    db.transact(&json!([
        {"op": "insert", "table": "Port", "row": {"name": "p", "tag": 5,
            "trunks": ["set", [10]]}}
    ]));
    // update
    let (res, changes) = db.transact(&json!([
        {"op": "update", "table": "Port", "where": [["name", "==", "p"]],
         "row": {"tag": 6}}
    ]));
    assert_eq!(res[0]["count"], json!(1));
    assert_eq!(changes.len(), 1);
    // mutate: arithmetic and set insert/delete
    let (res, _) = db.transact(&json!([
        {"op": "mutate", "table": "Port", "where": [],
         "mutations": [["tag", "+=", 10],
                       ["trunks", "insert", ["set", [20, 30]]],
                       ["trunks", "delete", ["set", [10]]]]},
        {"op": "select", "table": "Port", "where": []}
    ]));
    assert_eq!(res[1]["rows"][0]["tag"], json!(16));
    assert_eq!(res[1]["rows"][0]["trunks"], json!(["set", [20, 30]]));
}

#[test]
fn mutate_constraint_violation_aborts() {
    let mut db = simple_db();
    db.transact(&json!([
        {"op": "insert", "table": "Port", "row": {"name": "p", "tag": 4000}}
    ]));
    let (res, changes) = db.transact(&json!([
        {"op": "mutate", "table": "Port", "where": [],
         "mutations": [["tag", "+=", 1000]]}
    ]));
    assert!(changes.is_empty());
    assert!(res[0]["error"].is_string());
}

#[test]
fn delete_and_where_operators() {
    let mut db = simple_db();
    for (name, tag) in [("a", 1), ("b", 2), ("c", 3)] {
        db.transact(&json!([
            {"op": "insert", "table": "Port", "row": {"name": name, "tag": tag}}
        ]));
    }
    let (res, _) = db.transact(&json!([
        {"op": "select", "table": "Port", "where": [["tag", ">=", 2]]}
    ]));
    assert_eq!(res[0]["rows"].as_array().unwrap().len(), 2);
    let (res, _) = db.transact(&json!([
        {"op": "select", "table": "Port", "where": [["name", "!=", "b"]]}
    ]));
    assert_eq!(res[0]["rows"].as_array().unwrap().len(), 2);
    let (res, changes) = db.transact(&json!([
        {"op": "delete", "table": "Port", "where": [["tag", "<", 3]]}
    ]));
    assert_eq!(res[0]["count"], json!(2));
    assert_eq!(changes.len(), 2);
    assert_eq!(db.table_len("Port"), 1);
}

#[test]
fn includes_excludes_on_sets() {
    let mut db = simple_db();
    db.transact(&json!([
        {"op": "insert", "table": "Port",
         "row": {"name": "t", "trunks": ["set", [1, 2, 3]]}}
    ]));
    let (res, _) = db.transact(&json!([
        {"op": "select", "table": "Port",
         "where": [["trunks", "includes", ["set", [1, 3]]]]}
    ]));
    assert_eq!(res[0]["rows"].as_array().unwrap().len(), 1);
    let (res, _) = db.transact(&json!([
        {"op": "select", "table": "Port",
         "where": [["trunks", "excludes", ["set", [9]]]]}
    ]));
    assert_eq!(res[0]["rows"].as_array().unwrap().len(), 1);
    let (res, _) = db.transact(&json!([
        {"op": "select", "table": "Port",
         "where": [["trunks", "includes", ["set", [9]]]]}
    ]));
    assert_eq!(res[0]["rows"].as_array().unwrap().len(), 0);
}

#[test]
fn uniqueness_constraint() {
    let mut db = simple_db();
    db.transact(&json!([
        {"op": "insert", "table": "Port", "row": {"name": "dup"}}
    ]));
    let (res, changes) = db.transact(&json!([
        {"op": "insert", "table": "Port", "row": {"name": "dup"}}
    ]));
    assert!(changes.is_empty());
    assert!(res
        .as_array()
        .unwrap()
        .iter()
        .any(|r| r.get("error").is_some()));
    // Two conflicting inserts inside one transaction are also rejected.
    let (res, changes) = db.transact(&json!([
        {"op": "insert", "table": "Port", "row": {"name": "d2"}},
        {"op": "insert", "table": "Port", "row": {"name": "d2"}}
    ]));
    assert!(changes.is_empty());
    assert!(res
        .as_array()
        .unwrap()
        .iter()
        .any(|r| r.get("error").is_some()));
    // Renaming a row frees its old name within the same transaction.
    let (_, changes) = db.transact(&json!([
        {"op": "update", "table": "Port", "where": [["name", "==", "dup"]],
         "row": {"name": "renamed"}},
        {"op": "insert", "table": "Port", "row": {"name": "dup"}}
    ]));
    assert_eq!(changes.len(), 2);
}

#[test]
fn named_uuid_resolution_across_ops() {
    let mut db = ref_db();
    let (res, changes) = db.transact(&json!([
        {"op": "insert", "table": "Port", "row": {"name": "p1"}, "uuid-name": "p"},
        {"op": "insert", "table": "Bridge",
         "row": {"name": "br0", "ports": ["set", [["named-uuid", "p"]]]}}
    ]));
    assert!(res[0]["uuid"].is_array(), "{res}");
    assert_eq!(changes.len(), 2);
    // The bridge's ports set references the new port's real uuid.
    let port_uuid = uuid_of(&res[0]);
    let bridge = db.rows("Bridge").next().map(|(_, r)| r.clone()).unwrap();
    assert_eq!(bridge["ports"], Datum::set(vec![Atom::Uuid(port_uuid)]));
}

#[test]
fn gc_deletes_unreferenced_rows() {
    let mut db = ref_db();
    // A port with no referencing bridge is garbage-collected immediately.
    let (_, changes) = db.transact(&json!([
        {"op": "insert", "table": "Port", "row": {"name": "orphan"}}
    ]));
    assert!(changes.is_empty(), "orphan must never become visible");
    assert_eq!(db.table_len("Port"), 0);

    // Referenced ports survive; dropping the reference collects them.
    let (res, _) = db.transact(&json!([
        {"op": "insert", "table": "Port", "row": {"name": "held"}, "uuid-name": "p"},
        {"op": "insert", "table": "Bridge",
         "row": {"name": "br", "ports": ["set", [["named-uuid", "p"]]]}}
    ]));
    assert_eq!(db.table_len("Port"), 1);
    let _ = res;
    let (_, changes) = db.transact(&json!([
        {"op": "update", "table": "Bridge", "where": [],
         "row": {"ports": ["set", []]}}
    ]));
    // Both the bridge modification and the port deletion are reported.
    assert_eq!(changes.len(), 2);
    assert_eq!(db.table_len("Port"), 0);
}

#[test]
fn weak_references_purged_on_target_deletion() {
    let mut db = ref_db();
    let (res, _) = db.transact(&json!([
        {"op": "insert", "table": "Port", "row": {"name": "a"}, "uuid-name": "pa"},
        {"op": "insert", "table": "Port",
         "row": {"name": "b", "peer": ["named-uuid", "pa"]}, "uuid-name": "pb"},
        {"op": "insert", "table": "Bridge", "row": {"name": "br",
         "ports": ["set", [["named-uuid", "pa"], ["named-uuid", "pb"]]]}}
    ]));
    let pa = uuid_of(&res[0]);
    let pb = uuid_of(&res[1]);
    assert_eq!(db.table_len("Port"), 2);
    assert_eq!(
        db.get_row("Port", pb).unwrap()["peer"],
        Datum::set(vec![Atom::Uuid(pa)])
    );
    // Drop pa from the bridge: pa is GCed and pb's weak peer empties.
    let (_, _) = db.transact(&json!([
        {"op": "mutate", "table": "Bridge", "where": [],
         "mutations": [["ports", "delete", ["set", [["uuid", pa.to_string()]]]]]}
    ]));
    assert_eq!(db.table_len("Port"), 1);
    assert_eq!(db.get_row("Port", pb).unwrap()["peer"], Datum::empty());
}

#[test]
fn dangling_strong_reference_rejected() {
    let mut db = ref_db();
    let ghost = "12345678-1234-1234-1234-123456789012";
    let (res, changes) = db.transact(&json!([
        {"op": "insert", "table": "Bridge",
         "row": {"name": "br", "ports": ["set", [["uuid", ghost]]]}}
    ]));
    assert!(changes.is_empty());
    assert!(
        res.as_array()
            .unwrap()
            .iter()
            .any(|r| r.get("error").is_some()),
        "{res}"
    );
}

#[test]
fn wait_operation() {
    let mut db = simple_db();
    db.transact(&json!([
        {"op": "insert", "table": "Port", "row": {"name": "w", "tag": 1}}
    ]));
    // Satisfied wait passes; unsatisfied aborts the txn.
    let (res, _) = db.transact(&json!([
        {"op": "wait", "table": "Port", "where": [["name", "==", "w"]],
         "columns": ["tag"], "until": "==", "rows": [{"tag": 1}]},
        {"op": "comment", "comment": "after wait"}
    ]));
    assert!(res[0].get("error").is_none(), "{res}");
    let (res, changes) = db.transact(&json!([
        {"op": "wait", "table": "Port", "where": [["name", "==", "w"]],
         "columns": ["tag"], "until": "==", "rows": [{"tag": 999}]},
        {"op": "update", "table": "Port", "where": [], "row": {"tag": 2}}
    ]));
    assert!(changes.is_empty());
    assert!(res[0]["error"].is_string());
}

#[test]
fn unknown_table_column_and_op_errors() {
    let mut db = simple_db();
    let cases = [
        json!([{"op": "insert", "table": "Nope", "row": {}}]),
        json!([{"op": "insert", "table": "Port", "row": {"zap": 1}}]),
        json!([{"op": "frobnicate"}]),
        json!([{"op": "select", "table": "Port", "where": [["zap", "==", 1]]}]),
        json!([{"op": "select", "table": "Port", "where": [["name", "~~", "x"]]}]),
    ];
    for ops in cases {
        let (res, changes) = db.transact(&ops);
        assert!(changes.is_empty(), "{ops}");
        assert!(
            res.as_array()
                .unwrap()
                .iter()
                .any(|r| r.get("error").is_some()),
            "expected error for {ops}: {res}"
        );
    }
}

#[test]
fn where_on_uuid() {
    let mut db = simple_db();
    let (res, _) = db.transact(&json!([
        {"op": "insert", "table": "Port", "row": {"name": "u"}}
    ]));
    let uuid = uuid_of(&res[0]);
    let (res, _) = db.transact(&json!([
        {"op": "select", "table": "Port",
         "where": [["_uuid", "==", ["uuid", uuid.to_string()]]]}
    ]));
    assert_eq!(res[0]["rows"].as_array().unwrap().len(), 1);
}

#[test]
fn max_rows_enforced() {
    let schema = Schema::from_json(&json!({
        "name": "lim",
        "tables": {"T": {"columns": {"x": {"type": "integer"}},
                         "isRoot": true, "maxRows": 2}}
    }))
    .unwrap();
    let mut db = Database::new(schema);
    for i in 0..2 {
        let (res, _) = db.transact(&json!([
            {"op": "insert", "table": "T", "row": {"x": i}}
        ]));
        assert!(res[0].get("error").is_none());
    }
    let (res, changes) = db.transact(&json!([
        {"op": "insert", "table": "T", "row": {"x": 99}}
    ]));
    assert!(changes.is_empty());
    assert!(res
        .as_array()
        .unwrap()
        .iter()
        .any(|r| r.get("error").is_some()));
}

#[test]
fn changes_are_deterministically_ordered() {
    let mut db = simple_db();
    let (_, changes) = db.transact(&json!([
        {"op": "insert", "table": "Port", "row": {"name": "z"}},
        {"op": "insert", "table": "Port", "row": {"name": "a"}},
        {"op": "insert", "table": "Port", "row": {"name": "m"}}
    ]));
    let mut sorted = changes.clone();
    sorted.sort_by(|a, b| (&a.table, a.uuid).cmp(&(&b.table, b.uuid)));
    assert_eq!(changes, sorted);
}
