//! snvs — the simple network virtual switch from §4.3 of the Full-Stack
//! SDN paper, built on the Nerpa framework.
//!
//! Features: VLANs (access and trunk ports with tag push/pop), MAC
//! learning through data-plane digests, unknown-destination flooding
//! scoped per VLAN, and ingress port mirroring.
//!
//! The programmer-visible artifacts live in [`assets`]: ~100 lines of P4,
//! a 5-column OVSDB table, and ~30 lines of DDlog rules. [`SnvsStack`]
//! wires the full system together — database, incremental controller,
//! behavioral switches, and a packet-level network.
#![warn(missing_docs)]

pub mod assets;

use crossbeam_channel::Receiver;
use nerpa::codegen::CodegenOptions;
use nerpa::controller::{Controller, NerpaProgram};
use netsim::topo::{Delivery, HostId, Network, SwitchId};
use netsim::{EthFrame, Ip4, Mac};
use ovsdb::Database;
use p4sim::runtime::Digest;
use p4sim::service::SwitchDevice;
use p4sim::Switch;
use serde_json::{json, Value as Json};

/// VLAN membership mode for a port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortMode {
    /// Access port on one VLAN.
    Access(u16),
    /// Trunk port carrying the listed VLANs.
    Trunk(Vec<u16>),
}

/// The full snvs stack, wired in-process for deterministic tests and
/// benchmarks. (The same pieces also run over TCP; see the integration
/// tests.)
pub struct SnvsStack {
    /// The management-plane database.
    pub db: Database,
    /// The Nerpa controller.
    pub controller: Controller,
    /// The packet network.
    pub net: Network,
    /// Switch devices, by controller switch id.
    pub devices: Vec<SwitchDevice>,
    digest_rxs: Vec<Receiver<Vec<Digest>>>,
}

impl SnvsStack {
    /// Build a stack with `num_switches` switches (usually 1).
    pub fn new(num_switches: usize) -> Result<SnvsStack, String> {
        SnvsStack::new_with(num_switches, ddlog::ProvenanceConfig::off())
    }

    /// Build a stack with provenance tracking configured on the
    /// controller's engine, so installed entries can be explained with
    /// [`Controller::why_entry`] / [`Controller::why_mcast`].
    pub fn new_with(
        num_switches: usize,
        prov: ddlog::ProvenanceConfig,
    ) -> Result<SnvsStack, String> {
        let schema = ovsdb::Schema::parse(assets::SNVS_SCHEMA)?;
        let program = p4sim::parse_p4(assets::SNVS_P4).map_err(|e| e.to_string())?;
        let p4info = p4sim::P4Info::from_program(&program);
        let nerpa_program = NerpaProgram {
            schema: schema.clone(),
            p4info,
            rules: assets::SNVS_RULES.to_string(),
            options: CodegenOptions { per_switch: true },
        };
        let mut controller = Controller::new_with(&nerpa_program, prov)?;
        let db = Database::new(schema);
        let mut net = Network::new();
        let mut devices = Vec::new();
        let mut digest_rxs = Vec::new();
        for _ in 0..num_switches {
            let device = SwitchDevice::new(Switch::new(program.clone()));
            digest_rxs.push(device.subscribe_digests());
            controller.add_switch(Box::new(device.clone()));
            net.add_switch(device.clone());
            devices.push(device);
        }
        let mut stack = SnvsStack {
            db,
            controller,
            net,
            devices,
            digest_rxs,
        };
        // Register each switch in the management plane so the rules can
        // enumerate them.
        for idx in 0..num_switches {
            stack.transact(json!([
                {"op": "insert", "table": "Switch", "row": {"idx": idx}}
            ]))?;
        }
        Ok(stack)
    }

    /// Run an OVSDB transaction and feed the committed changes to the
    /// controller. Returns the per-operation results.
    pub fn transact(&mut self, ops: Json) -> Result<Json, String> {
        let (results, changes) = self.db.transact(&ops);
        if !changes.is_empty() {
            self.controller.handle_row_changes(&changes)?;
        }
        Ok(results)
    }

    /// Configure a port through the management plane.
    pub fn add_port(
        &mut self,
        id: u16,
        mode: PortMode,
        mirror_dst: Option<u16>,
    ) -> Result<(), String> {
        let mut row = serde_json::Map::new();
        row.insert("id".into(), json!(id));
        match &mode {
            PortMode::Access(tag) => {
                row.insert("vlan_mode".into(), json!("access"));
                row.insert("tag".into(), json!(tag));
            }
            PortMode::Trunk(vlans) => {
                row.insert("vlan_mode".into(), json!("trunk"));
                row.insert("trunks".into(), json!(["set", vlans]));
            }
        }
        if let Some(d) = mirror_dst {
            row.insert("mirror_dst".into(), json!(d));
        }
        let results = self.transact(json!([{"op": "insert", "table": "Port", "row": row}]))?;
        if let Some(err) = results
            .as_array()
            .and_then(|a| a.iter().find(|r| r.get("error").is_some()))
        {
            return Err(err.to_string());
        }
        Ok(())
    }

    /// Remove a port through the management plane.
    pub fn remove_port(&mut self, id: u16) -> Result<(), String> {
        self.transact(json!([
            {"op": "delete", "table": "Port", "where": [["id", "==", id]]}
        ]))?;
        Ok(())
    }

    /// Attach a host to a switch port (host `n` gets MAC
    /// `02:00:00:00:00:NN` and IP `10.0.x.y`).
    pub fn add_host(&mut self, n: u32, switch: SwitchId, port: u16) -> HostId {
        self.net.add_host(
            Mac::host(n),
            Ip4::new(10, 0, (n >> 8) as u8, n as u8),
            switch,
            port,
        )
    }

    /// Send a frame from a host, then pump any digests back through the
    /// controller (the learning feedback loop).
    pub fn send(&mut self, from: HostId, frame: &EthFrame) -> Result<Vec<Delivery>, String> {
        let deliveries = self.net.send_raw(from, frame.encode());
        self.pump_digests()?;
        Ok(deliveries)
    }

    /// Drain pending digests from every switch into the controller.
    /// Returns how many digests were handled.
    pub fn pump_digests(&mut self) -> Result<usize, String> {
        let mut handled = 0;
        for (sw, rx) in self.digest_rxs.iter().enumerate() {
            let mut batch = Vec::new();
            while let Ok(ds) = rx.try_recv() {
                batch.extend(ds);
            }
            if !batch.is_empty() {
                handled += batch.len();
                self.controller.handle_digests(sw, &batch)?;
            }
        }
        Ok(handled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::ethertype;

    fn eth(dst: Mac, src: Mac, payload: &[u8]) -> EthFrame {
        EthFrame::new(dst, src, ethertype::IPV4, payload.to_vec())
    }

    /// One switch, three access ports on VLAN 10 and one on VLAN 20.
    fn basic_stack() -> (SnvsStack, Vec<HostId>) {
        let mut stack = SnvsStack::new(1).unwrap();
        for port in [1u16, 2, 3] {
            stack.add_port(port, PortMode::Access(10), None).unwrap();
        }
        stack.add_port(4, PortMode::Access(20), None).unwrap();
        let hosts = (1..=4u32).map(|n| stack.add_host(n, 0, n as u16)).collect();
        (stack, hosts)
    }

    #[test]
    fn unknown_destination_floods_vlan_only() {
        let (mut stack, hosts) = basic_stack();
        let d = stack
            .send(hosts[0], &eth(Mac::host(2), Mac::host(1), b"first"))
            .unwrap();
        // Destination unknown: flood to VLAN 10 members (ports 2, 3) but
        // never to VLAN 20's port 4.
        let to: Vec<HostId> = d.iter().map(|x| x.host).collect();
        assert_eq!(to, vec![hosts[1], hosts[2]]);
    }

    #[test]
    fn learning_converges_to_unicast() {
        let (mut stack, hosts) = basic_stack();
        // h1 → h2 floods and teaches the controller where h1 lives.
        stack
            .send(hosts[0], &eth(Mac::host(2), Mac::host(1), b"a"))
            .unwrap();
        // h2 → h1 now goes straight to port 1 (and teaches h2's port).
        let d = stack
            .send(hosts[1], &eth(Mac::host(1), Mac::host(2), b"b"))
            .unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].host, hosts[0]);
        // h1 → h2 is unicast too.
        let d = stack
            .send(hosts[0], &eth(Mac::host(2), Mac::host(1), b"c"))
            .unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].host, hosts[1]);
    }

    #[test]
    fn vlan_isolation() {
        let (mut stack, hosts) = basic_stack();
        // Teach the controller where h4 (VLAN 20) is.
        stack
            .send(hosts[3], &eth(Mac::BROADCAST, Mac::host(4), b"x"))
            .unwrap();
        // h1 (VLAN 10) sending to h4's MAC cannot reach it: the MAC is
        // learned under VLAN 20, so the frame floods VLAN 10 only.
        let d = stack
            .send(hosts[0], &eth(Mac::host(4), Mac::host(1), b"y"))
            .unwrap();
        let to: Vec<HostId> = d.iter().map(|x| x.host).collect();
        assert_eq!(to, vec![hosts[1], hosts[2]]);
    }

    #[test]
    fn port_removal_retracts_state() {
        let (mut stack, hosts) = basic_stack();
        stack
            .send(hosts[0], &eth(Mac::BROADCAST, Mac::host(1), b"x"))
            .unwrap();
        // Removing port 2 shrinks the VLAN 10 flood domain.
        stack.remove_port(2).unwrap();
        let d = stack
            .send(hosts[0], &eth(Mac::BROADCAST, Mac::host(1), b"y"))
            .unwrap();
        let to: Vec<HostId> = d.iter().map(|x| x.host).collect();
        assert_eq!(to, vec![hosts[2]]);
        // And the InVlan entry for port 2 is gone: traffic from h2 dies.
        let d = stack
            .send(hosts[1], &eth(Mac::BROADCAST, Mac::host(2), b"z"))
            .unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn trunk_carries_traffic_between_switches() {
        // Two switches; port 3 on each is a trunk carrying VLANs 10+20.
        // Ports are global rows in this simple schema: both switches get
        // the same configuration (single-program deployment, as in the
        // paper's prototype).
        let mut stack = SnvsStack::new(2).unwrap();
        stack.add_port(1, PortMode::Access(10), None).unwrap();
        stack.add_port(2, PortMode::Access(20), None).unwrap();
        stack
            .add_port(3, PortMode::Trunk(vec![10, 20]), None)
            .unwrap();
        let h_a1 = stack.add_host(1, 0, 1);
        let _h_a2 = stack.add_host(2, 0, 2);
        let h_b1 = stack.add_host(3, 1, 1);
        let _h_b2 = stack.add_host(4, 1, 2);
        stack.net.connect(0, 3, 1, 3);

        // Broadcast from h_a1 (VLAN 10): must reach h_b1 (VLAN 10 on the
        // other switch) untagged, and nobody on VLAN 20.
        let d = stack
            .send(h_a1, &eth(Mac::BROADCAST, Mac::host(1), b"hello"))
            .unwrap();
        let to: Vec<HostId> = d.iter().map(|x| x.host).collect();
        assert_eq!(to, vec![h_b1]);
        // Delivered frame is untagged again (access egress popped the
        // trunk tag).
        let f = EthFrame::decode(&d[0].bytes).unwrap();
        assert_eq!(f.vlan, None);
        assert_eq!(f.payload, b"hello");
    }

    #[test]
    fn mirroring_copies_ingress_traffic() {
        let mut stack = SnvsStack::new(1).unwrap();
        stack.add_port(1, PortMode::Access(10), Some(5)).unwrap();
        stack.add_port(2, PortMode::Access(10), None).unwrap();
        let h1 = stack.add_host(1, 0, 1);
        let h2 = stack.add_host(2, 0, 2);
        let monitor = stack.add_host(9, 0, 5);
        let d = stack
            .send(h1, &eth(Mac::host(2), Mac::host(1), b"secret"))
            .unwrap();
        let to: Vec<HostId> = d.iter().map(|x| x.host).collect();
        // Flood to h2 plus the mirror copy.
        assert!(to.contains(&h2));
        assert!(
            to.contains(&monitor),
            "mirror port must receive a copy: {to:?}"
        );
    }

    #[test]
    fn paper_loc_claim_sanity() {
        // §4.3: snvs is ~350 DDlog + 300 P4 + a small schema. Our
        // artifacts are the same order of magnitude (exact numbers are
        // regenerated by the E3 report).
        let loc = |s: &str| s.lines().filter(|l| !l.trim().is_empty()).count();
        assert!(loc(assets::SNVS_P4) < 400);
        assert!(loc(assets::SNVS_RULES) < 100);
        assert!(loc(assets::SNVS_SCHEMA) < 100);
    }
}
