//! The three artifacts a Nerpa programmer writes for snvs (§4.3 of the
//! paper): the P4 data plane, the OVSDB management-plane schema, and the
//! DDlog control-plane rules. Everything else is generated.

/// The snvs data plane: VLAN classification (access/trunk), MAC learning
/// via digests, unknown-destination flooding through multicast groups,
/// ingress port mirroring, and egress tagging/untagging.
pub const SNVS_P4: &str = r#"
header ethernet_t {
    bit<48> dst;
    bit<48> src;
    bit<16> ether_type;
}
header vlan_t {
    bit<3>  pcp;
    bit<1>  dei;
    bit<12> vid;
    bit<16> ether_type;
}
struct headers_t {
    ethernet_t eth;
    vlan_t     vlan;
}
struct metadata_t {
    bit<12> vlan;
    bit<1>  tagged;
    bit<1>  out_tagged;
}
struct mac_learn_t {
    bit<16>  port;
    bit<48> mac;
    bit<12> vlan;
}

parser SnvsParser(packet_in pkt, out headers_t hdr,
                  inout metadata_t meta,
                  inout standard_metadata_t std_meta) {
    state start {
        pkt.extract(hdr.eth);
        transition select(hdr.eth.ether_type) {
            0x8100: parse_vlan;
            default: accept;
        }
    }
    state parse_vlan {
        pkt.extract(hdr.vlan);
        transition accept;
    }
}

control SnvsIngress(inout headers_t hdr, inout metadata_t meta,
                    inout standard_metadata_t std_meta) {
    action set_port_vlan(bit<12> vid) { meta.vlan = vid; }
    action use_tag() { meta.vlan = hdr.vlan.vid; }
    action drop_packet() { mark_to_drop(); }
    action output(bit<16> port) { std_meta.egress_spec = port; }
    action flood() { std_meta.mcast_grp = (bit<16>) meta.vlan; }
    action mirror_to(bit<16> port) { clone(port); }

    // VLAN classification, keyed on the port and whether the frame
    // carried an 802.1Q tag. Policy entirely decided by the control
    // plane: access ports map untagged traffic, trunks accept tags.
    table InVlan {
        key = { std_meta.ingress_port: exact; meta.tagged: exact; }
        actions = { set_port_vlan; use_tag; drop_packet; }
        default_action = drop_packet();
        size = 1024;
    }

    // Learned unicast forwarding; unknown destinations flood the VLAN.
    table MacLearned {
        key = { meta.vlan: exact; hdr.eth.dst: exact; }
        actions = { output; }
        default_action = flood();
        size = 4096;
    }

    // Ingress port mirroring.
    table Mirror {
        key = { std_meta.ingress_port: exact; }
        actions = { mirror_to; }
        size = 64;
    }

    apply {
        meta.tagged = 0;
        if (hdr.vlan.isValid()) {
            meta.tagged = 1;
        }
        InVlan.apply();
        Mirror.apply();
        digest(mac_learn_t { port = std_meta.ingress_port,
                             mac  = hdr.eth.src,
                             vlan = meta.vlan });
        MacLearned.apply();
    }
}

control SnvsEgress(inout headers_t hdr, inout metadata_t meta,
                   inout standard_metadata_t std_meta) {
    action mark_tagged() { meta.out_tagged = 1; }
    action mark_untagged() { meta.out_tagged = 0; }

    // Should frames leave this port tagged (trunk) or untagged (access)?
    table OutVlan {
        key = { std_meta.egress_port: exact; }
        actions = { mark_tagged; }
        default_action = mark_untagged();
        size = 1024;
    }

    apply {
        OutVlan.apply();
        if (meta.out_tagged == 1) {
            if (!hdr.vlan.isValid()) {
                hdr.vlan.setValid();
                hdr.vlan.ether_type = hdr.eth.ether_type;
                hdr.eth.ether_type = 0x8100;
            }
            hdr.vlan.vid = meta.vlan;
        } else {
            if (hdr.vlan.isValid()) {
                hdr.eth.ether_type = hdr.vlan.ether_type;
                hdr.vlan.setInvalid();
            }
        }
    }
}

V1Switch(SnvsParser(), SnvsIngress(), SnvsEgress()) main;
"#;

/// The snvs management-plane schema: a `Switch` table enumerating the
/// managed switches and a `Port` table whose rows describe switch ports
/// (Fig. 5(b) of the paper, extended with trunks and mirroring). Port
/// rows apply to every switch (all switches run the same program and
/// port layout); learned state is tracked per switch.
pub const SNVS_SCHEMA: &str = r#"
{
    "name": "snvs",
    "version": "1.0.0",
    "tables": {
        "Switch": {
            "columns": {
                "idx": {"type": {"key": {"type": "integer",
                        "minInteger": 0, "maxInteger": 65535}}}
            },
            "isRoot": true,
            "indexes": [["idx"]]
        },
        "Port": {
            "columns": {
                "id": {"type": {"key": {"type": "integer",
                        "minInteger": 0, "maxInteger": 65535}}},
                "vlan_mode": {"type": {"key": {"type": "string",
                        "enum": ["set", ["access", "trunk"]]},
                        "min": 0, "max": 1}},
                "tag": {"type": {"key": {"type": "integer",
                        "minInteger": 0, "maxInteger": 4095},
                        "min": 0, "max": 1}},
                "trunks": {"type": {"key": {"type": "integer",
                        "minInteger": 0, "maxInteger": 4095},
                        "min": 0, "max": "unlimited"}},
                "mirror_dst": {"type": {"key": {"type": "integer",
                        "minInteger": 0, "maxInteger": 65535},
                        "min": 0, "max": 1}}
            },
            "isRoot": true,
            "indexes": [["id"]]
        }
    }
}
"#;

/// The hand-written control plane: ~30 lines of rules compute every data
/// plane table from the management database and the learning digests
/// (Fig. 5(c) generalized). Generated relations referenced here:
///
/// * `Port(_uuid, id, mirror_dst, tag, trunks, vlan_mode)` — from the
///   OVSDB schema (columns alphabetical);
/// * `InVlan`, `MacLearned`, `Mirror`, `OutVlan` — from the P4 tables;
/// * `mac_learn_t(port, mac, vlan)` — from the P4 digest.
pub const SNVS_RULES: &str = r#"
// Internal view: every (port, vlan) membership.
relation PortVlan(port: bigint, vlan: bigint)
PortVlan(p, v) :- Port(_, p, _, tags, _, modes),
                  set_contains(modes, "access"),
                  var v = FlatMap(tags).
PortVlan(p, v) :- Port(_, p, _, _, trunks, modes),
                  set_contains(modes, "trunk"),
                  var v = FlatMap(trunks).

// VLAN classification: access ports map untagged frames to their tag;
// trunks honor the carried tag. The same port policy is installed on
// every switch.
InVlan(sw, p as bit<16>, 0, "set_port_vlan", t as bit<12>) :-
    Switch(_, sw),
    Port(_, p, _, tags, _, modes),
    set_contains(modes, "access"),
    var t = FlatMap(tags).
InVlan(sw, p as bit<16>, 1, "use_tag", 0) :-
    Switch(_, sw),
    Port(_, p, _, _, _, modes),
    set_contains(modes, "trunk").

// MAC learning feedback loop: each switch's digests become *its own*
// forwarding entries (a MAC lives behind different ports on different
// switches), but only while the reporting port is still a member of the
// VLAN. When a MAC moves, the highest port wins deterministically.
MacLearned(sw, vlan, mac, "output", p) :-
    mac_learn_t(sw, port, mac, vlan),
    var pb = port as bigint,
    var vb = vlan as bigint,
    PortVlan(pb, vb),
    var p = max(port) group_by (sw, mac, vlan).

// Ingress mirroring, on every switch.
Mirror(sw, p as bit<16>, "mirror_to", d as bit<16>) :-
    Switch(_, sw),
    Port(_, p, dsts, _, _, _),
    var d = FlatMap(dsts).

// Trunk ports transmit tagged.
OutVlan(sw, p as bit<16>, "mark_tagged") :-
    Switch(_, sw),
    Port(_, p, _, _, _, modes),
    set_contains(modes, "trunk").

// Flooding scope: one multicast group per VLAN, containing its member
// ports (same on every switch, so no switch column is needed).
output relation MulticastGroup(group: bit<16>, port: bit<16>)
MulticastGroup(v as bit<16>, p as bit<16>) :- PortVlan(p, v).
"#;
