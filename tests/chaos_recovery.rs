//! Chaos recovery: the full stack under deterministic fault injection.
//!
//! A seeded [`chaos::FaultProxy`] sits on the OVSDB link and kills it at
//! a scripted protocol message, then partitions the link; the controller
//! reconnects with backoff, re-issues its monitor, and resyncs with a
//! **delta-only** transaction — recovery work proportional to the
//! changes missed while disconnected, not to the database size. A
//! restarted switch is likewise reconciled by read-back + diff. The
//! final data-plane state must equal a fault-free run's.

use std::collections::BTreeSet;
use std::time::Duration;

use chaos::{ConnFault, Direction, FaultProxy, FaultSchedule, Framing};
use crossbeam_channel::RecvTimeoutError;
use nerpa::codegen::CodegenOptions;
use nerpa::controller::{Controller, NerpaProgram};
use nerpa::resync::{BackoffPolicy, MonitorConfig, OvsdbSupervisor};
use p4sim::runtime::{FieldMatch, TableEntry, Update, WriteOp};
use p4sim::service::{ControlClient, ControlService, SwitchDevice};
use p4sim::Switch;
use serde_json::json;

/// Entries grouped per table, order-insensitively, for state comparison.
fn table_state(tables: Vec<(String, Vec<TableEntry>)>) -> Vec<(String, BTreeSet<TableEntry>)> {
    tables
        .into_iter()
        .map(|(name, entries)| (name, entries.into_iter().collect()))
        .collect()
}

#[test]
fn ovsdb_link_death_recovers_with_delta_resync_and_switch_reconcile() {
    // Management plane, pre-populated with one switch and one port.
    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).unwrap();
    let db_server =
        ovsdb::Server::start(ovsdb::Database::new(schema.clone()), "127.0.0.1:0").unwrap();
    let admin = ovsdb::Client::connect(db_server.local_addr()).unwrap();
    admin
        .transact(
            "snvs",
            json!([
                {"op": "insert", "table": "Switch", "row": {"idx": 0}},
                {"op": "insert", "table": "Port",
                 "row": {"id": 7, "vlan_mode": "access", "tag": 42}}
            ]),
        )
        .unwrap();

    // The chaos schedule: the first proxied connection dies right after
    // the 4th server→client message (commit-index response, monitor
    // response, two updates), then the link partitions. Every later
    // connection is transparent.
    let schedule = FaultSchedule::scripted(
        0xC0FFEE,
        Framing::Ndjson,
        vec![ConnFault::kill_after(4, Direction::ServerToClient)
            .partitioning(Duration::from_millis(300))],
    );
    let proxy = FaultProxy::start(db_server.local_addr(), schedule).unwrap();

    // Data plane + controller, wired over TCP like the full-stack test.
    let program = p4sim::parse_p4(snvs::assets::SNVS_P4).unwrap();
    let device = SwitchDevice::new(Switch::new(program.clone()));
    let p4_service = ControlService::start(device.clone(), "127.0.0.1:0").unwrap();
    let nerpa_program = NerpaProgram {
        schema,
        p4info: p4sim::P4Info::from_program(&program),
        rules: snvs::assets::SNVS_RULES.to_string(),
        options: CodegenOptions { per_switch: true },
    };
    let mut controller = Controller::new(&nerpa_program).unwrap();
    controller.add_switch(Box::new(
        ControlClient::connect(p4_service.local_addr()).unwrap(),
    ));

    // The supervisor dials the OVSDB server *through the proxy*.
    let mut supervisor = OvsdbSupervisor::new(
        proxy.local_addr(),
        MonitorConfig::all_columns("snvs", &["Port", "Switch"]),
        BackoffPolicy {
            base: Duration::from_millis(50),
            max: Duration::from_secs(1),
            multiplier: 2.0,
            max_attempts: 10,
            jitter: 0.2,
            seed: 7,
        },
    )
    .unwrap();

    // First connect: the initial snapshot is a cold resync — everything
    // is new, and it flows through to the switch.
    let (client1, updates1, report1) = supervisor.connect_and_sync(&mut controller).unwrap();
    assert_eq!(supervisor.stats.attempts, 1);
    assert_eq!(report1.snapshot_rows, 2, "switch row + port row");
    assert_eq!(report1.inserts, 2);
    assert_eq!(report1.deletes, 0);
    assert_eq!(device.read_table("InVlan").unwrap().len(), 1);

    // Two live updates flow (server→client messages 2 and 3); the third
    // message is the scripted fatal one, delivered and then the link
    // dies.
    for tag in [43, 44] {
        admin
            .transact(
                "snvs",
                json!([{"op": "update", "table": "Port", "where": [["id", "==", 7]],
                        "row": {"tag": tag}}]),
            )
            .unwrap();
        let update = updates1.recv_timeout(Duration::from_secs(5)).unwrap();
        controller.handle_monitor_update(&update).unwrap();
    }
    assert_eq!(device.read_table("InVlan").unwrap()[0].params, vec![44]);

    // The kill is observed as a disconnect, not a timeout.
    assert_eq!(
        updates1.recv_timeout(Duration::from_secs(5)),
        Err(RecvTimeoutError::Disconnected)
    );
    assert!(!client1.is_connected());
    assert_eq!(proxy.stats().kills, 1);
    drop(client1);

    // While the link is down, the database moves on: five new ports.
    admin
        .transact(
            "snvs",
            json!([
                {"op": "insert", "table": "Port", "row": {"id": 10, "vlan_mode": "access", "tag": 10}},
                {"op": "insert", "table": "Port", "row": {"id": 11, "vlan_mode": "access", "tag": 10}},
                {"op": "insert", "table": "Port", "row": {"id": 12, "vlan_mode": "access", "tag": 10}},
                {"op": "insert", "table": "Port", "row": {"id": 13, "vlan_mode": "access", "tag": 11}},
                {"op": "insert", "table": "Port", "row": {"id": 14, "vlan_mode": "access", "tag": 11}}
            ]),
        )
        .unwrap();

    // Re-arm the partition so the reconnect provably needs backoff (the
    // scripted one may have partially elapsed while we committed).
    proxy.partition_for(Duration::from_millis(250));

    // Reconnect: several attempts refused, then the monitor is re-issued
    // and the engine resynced against the fresh snapshot.
    let (client2, _updates2, report2) = supervisor.connect_and_sync(&mut controller).unwrap();
    assert!(
        supervisor.stats.attempts >= 3,
        "reconnect under partition must take >= 2 attempts, saw {} total",
        supervisor.stats.attempts
    );
    assert_eq!(supervisor.stats.connects, 2);
    assert!(proxy.stats().refused >= 1);

    // The incrementality invariant across failure: the resync commits
    // exactly the five missed inserts, nothing proportional to the
    // database.
    assert_eq!(report2.snapshot_rows, 7, "switch row + six port rows");
    assert_eq!(report2.inserts, 5);
    assert_eq!(report2.deletes, 0);
    assert!(report2.delta_ops() < report2.snapshot_rows);
    assert_eq!(controller.metrics.resyncs.get(), 2);
    assert_eq!(device.read_table("InVlan").unwrap().len(), 6);

    // --- Switch restart ---------------------------------------------
    // The switch dies and comes back empty except for one stale entry
    // (as a half-written boot script would leave).
    drop(p4_service);
    let device2 = SwitchDevice::new(Switch::new(program.clone()));
    let p4_service2 = ControlService::start(device2.clone(), "127.0.0.1:0").unwrap();
    let mut stale = device.read_table("InVlan").unwrap()[0].clone();
    match &mut stale.matches[0] {
        FieldMatch::Exact { value } => *value = 9999,
        other => panic!("unexpected InVlan key {other:?}"),
    }
    device2
        .write(&[Update {
            op: WriteOp::Insert,
            entry: stale,
        }])
        .unwrap();

    // Re-dial and reconcile: read back actual state, push only the diff.
    controller
        .replace_switch(
            0,
            Box::new(ControlClient::connect(p4_service2.local_addr()).unwrap()),
        )
        .unwrap();
    let rec = controller.reconcile_switch(0).unwrap();
    assert_eq!(rec.inserted, 6, "all desired entries were missing");
    assert_eq!(rec.deleted, 1, "the stale entry is retracted");
    assert_eq!(rec.unchanged, 0);

    // Reconciling an already-correct switch is a no-op.
    let rec2 = controller.reconcile_switch(0).unwrap();
    assert_eq!(rec2.inserted, 0);
    assert_eq!(rec2.deleted, 0);
    assert_eq!(rec2.unchanged, 6);
    assert_eq!(controller.metrics.reconciles.get(), 2);

    // --- Equivalence with a fault-free run --------------------------
    // A fresh controller + switch fed the same final database state,
    // with no faults anywhere, must produce identical tables.
    let device_ff = SwitchDevice::new(Switch::new(program.clone()));
    let mut controller_ff = Controller::new(&nerpa_program).unwrap();
    controller_ff.add_switch(Box::new(device_ff.clone()));
    let direct = ovsdb::Client::connect(db_server.local_addr()).unwrap();
    let (initial_ff, _updates_ff) = direct
        .monitor("snvs", json!("ff"), json!({"Port": {}, "Switch": {}}))
        .unwrap();
    controller_ff.handle_monitor_update(&initial_ff).unwrap();

    assert_eq!(
        table_state(device2.read_all_tables()),
        table_state(device_ff.read_all_tables()),
        "chaos run must converge to the fault-free state"
    );
    drop(client2);
}

#[test]
fn p4_link_truncation_fails_cleanly_and_atomically() {
    // A proxy on the switch control link truncates the second request's
    // frame mid-wire and severs the link. The torn write must not be
    // applied, and the client must observe an error — never a hang.
    let program = p4sim::parse_p4(p4sim::parser::DEMO).unwrap();
    let device = SwitchDevice::new(Switch::new(program));
    let svc = ControlService::start(device.clone(), "127.0.0.1:0").unwrap();
    let schedule = FaultSchedule::scripted(
        31,
        Framing::LengthPrefixed,
        vec![ConnFault::kill_after(2, Direction::ClientToServer).truncating(6)],
    );
    let proxy = FaultProxy::start(svc.local_addr(), schedule).unwrap();
    let client = ControlClient::connect(proxy.local_addr()).unwrap();

    let entry = |v: u128| Update {
        op: WriteOp::Insert,
        entry: TableEntry {
            table: "InVlan".into(),
            matches: vec![FieldMatch::Exact { value: v }],
            priority: 0,
            action: "set_vlan".into(),
            params: vec![10],
        },
    };

    // First write flows through the proxy untouched.
    client.write(vec![entry(1)]).unwrap();
    assert_eq!(device.read_table("InVlan").unwrap().len(), 1);

    // The second request is torn: the switch sees a broken frame and
    // drops the connection; the client gets a prompt error.
    client.write(vec![entry(2)]).unwrap_err();
    assert_eq!(proxy.stats().truncations, 1);
    assert_eq!(proxy.stats().kills, 1);
    assert_eq!(
        device.read_table("InVlan").unwrap().len(),
        1,
        "a torn frame must not be applied"
    );

    // Recovery: a fresh, direct connection retries the same write.
    let direct = ControlClient::connect(svc.local_addr()).unwrap();
    direct.write(vec![entry(2)]).unwrap();
    assert_eq!(device.read_table("InVlan").unwrap().len(), 2);
}
