//! Durability end-to-end: a durable OVSDB server is killed mid-churn
//! (with a torn WAL tail), restarted from its durability directory, and
//! the controller reconverges through the supervisor's epoch-reset
//! detection + resync.
//!
//! The crash here is the real thing at the boundary the harness can
//! reach: the server (and the database's open WAL handle) is dropped
//! with no graceful shutdown, the log file is damaged on disk exactly as
//! an interrupted `write` would leave it, and recovery starts from the
//! bytes alone.

use std::sync::Mutex;
use std::time::Duration;

use nerpa::codegen::CodegenOptions;
use nerpa::controller::{Controller, NerpaProgram};
use nerpa::resync::{BackoffPolicy, MonitorConfig, OvsdbSupervisor};
use ovsdb::{DurabilityConfig, FsyncPolicy, RecoveryReport, WalError};
use p4sim::service::SwitchDevice;
use p4sim::Switch;
use serde_json::json;

struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("nerpa-durability-e2e-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn durability() -> DurabilityConfig {
    DurabilityConfig {
        fsync: FsyncPolicy::EveryN(2),
        snapshot_after_bytes: 1 << 20,
    }
}

/// The `ovsdb_wal` health component lives on the process-global board,
/// and the tests in this binary run concurrently: every open that also
/// reads the board must hold this lock so another test's open can't
/// overwrite the status in between.
static HEALTH_BOARD: Mutex<()> = Mutex::new(());

type OpenResult = Result<(ovsdb::Database, RecoveryReport), WalError>;

/// Open the durable database and capture the `ovsdb_wal` health status
/// the open left behind, atomically w.r.t. the other tests here.
fn open_durable(dir: &std::path::Path, schema: &ovsdb::Schema) -> (OpenResult, String) {
    let _guard = HEALTH_BOARD.lock().unwrap_or_else(|e| e.into_inner());
    let result = ovsdb::Database::open(dir, schema.clone(), durability());
    let health = telemetry::global()
        .health
        .get("ovsdb_wal")
        .expect("open must publish ovsdb_wal health");
    (result, health)
}

/// Recover from `dir` and serve on `addr`, retrying the bind briefly:
/// the crashed listener's port may still be tearing down. Recovery is
/// idempotent, so each attempt re-opens from disk.
fn restart_server(
    dir: &std::path::Path,
    schema: &ovsdb::Schema,
    addr: std::net::SocketAddr,
) -> ovsdb::Server {
    for _ in 0..100 {
        let (db, _) = open_durable(dir, schema).0.expect("recovery succeeds");
        match ovsdb::Server::start(db, addr) {
            Ok(server) => return server,
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    panic!("could not rebind {addr}");
}

#[test]
fn server_crash_recovers_wal_and_controller_reconverges() {
    let scratch = Scratch::new("crash");
    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).unwrap();

    // --- Durable server, some committed churn -----------------------
    let (open, health) = open_durable(&scratch.0, &schema);
    let (db, report) = open.unwrap();
    assert_eq!(report.replayed_records, 0, "fresh directory");
    assert!(health.starts_with("ok("), "fresh open health: {health}");
    let server = ovsdb::Server::start(db, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let admin = ovsdb::Client::connect(addr).unwrap();
    admin
        .transact(
            "snvs",
            json!([
                {"op": "insert", "table": "Switch", "row": {"idx": 0}},
                {"op": "insert", "table": "Port",
                 "row": {"id": 1, "vlan_mode": "access", "tag": 10}}
            ]),
        )
        .unwrap();
    admin
        .transact(
            "snvs",
            json!([{"op": "insert", "table": "Port",
                    "row": {"id": 2, "vlan_mode": "access", "tag": 11}}]),
        )
        .unwrap();

    // Controller + in-process switch, supervised over TCP.
    let program = p4sim::parse_p4(snvs::assets::SNVS_P4).unwrap();
    let device = SwitchDevice::new(Switch::new(program.clone()));
    let nerpa_program = NerpaProgram {
        schema: schema.clone(),
        p4info: p4sim::P4Info::from_program(&program),
        rules: snvs::assets::SNVS_RULES.to_string(),
        options: CodegenOptions { per_switch: true },
    };
    let mut controller = Controller::new(&nerpa_program).unwrap();
    controller.add_switch(Box::new(device.clone()));
    let mut supervisor = OvsdbSupervisor::new(
        addr,
        MonitorConfig::all_columns("snvs", &["Port", "Switch"]),
        BackoffPolicy {
            base: Duration::from_millis(50),
            max: Duration::from_secs(1),
            multiplier: 2.0,
            max_attempts: 20,
            jitter: 0.2,
            seed: 11,
        },
    )
    .unwrap();
    let (client1, updates1, _) = supervisor.connect_and_sync(&mut controller).unwrap();
    assert_eq!(supervisor.stats.epoch_resets, 0);
    let first_index = supervisor.stats.last_commit_index.expect("index recorded");
    assert_eq!(first_index, 2, "two transactions committed before connect");
    assert_eq!(device.read_table("InVlan").unwrap().len(), 2);

    // Live churn: one more port, delivered over the monitor stream.
    admin
        .transact(
            "snvs",
            json!([{"op": "insert", "table": "Port",
                    "row": {"id": 3, "vlan_mode": "access", "tag": 12}}]),
        )
        .unwrap();
    let update = updates1.recv_timeout(Duration::from_secs(5)).unwrap();
    controller.handle_monitor_update(&update).unwrap();
    assert_eq!(device.read_table("InVlan").unwrap().len(), 3);

    // --- Crash -------------------------------------------------------
    // Clients close first (so the listener port is clean for the
    // rebind), then the server dies taking the open WAL handle with it.
    drop(client1);
    drop(admin);
    drop(server);

    // The crash lands inside the fsync loss window: the final record
    // (port 3) was still buffered and never reaches disk at all, and the
    // one before it (port 2) is torn mid-write.
    let wal_path = scratch.0.join(ovsdb::wal::WAL_FILE);
    let image = std::fs::read(&wal_path).unwrap();
    let (last_start, _) = ovsdb::wal::final_record_span(&image).expect("log has records");
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .unwrap();
    file.set_len(last_start).unwrap();
    drop(file);
    let chopped = ovsdb::wal::tear_tail(&wal_path, 7).unwrap();
    assert_eq!(chopped, 7);

    // --- Recovery ----------------------------------------------------
    let (open, health) = open_durable(&scratch.0, &schema);
    let (db2, report2) = open.unwrap();
    assert!(report2.truncated_tail, "torn tail detected and truncated");
    assert_eq!(
        db2.commit_index(),
        1,
        "the unsynced and the torn transaction are both lost"
    );
    assert_eq!(db2.rows("Port").count(), 1, "ports 2 and 3 are gone");
    assert!(health.starts_with("ok("), "health after recovery: {health}");
    drop(db2);

    let server2 = restart_server(&scratch.0, &schema, addr);

    // --- Reconnect: epoch reset + resync ------------------------------
    let (client2, updates2, resync) = supervisor.connect_and_sync(&mut controller).unwrap();
    assert_eq!(
        supervisor.stats.epoch_resets, 1,
        "lower commit index must be detected as an epoch reset"
    );
    assert_eq!(supervisor.stats.last_commit_index, Some(1));
    // The controller held the lost transactions' rows; the resync
    // retracts them.
    assert_eq!(resync.deletes, 2, "the lost port rows are retracted");
    assert_eq!(resync.inserts, 0);
    assert_eq!(device.read_table("InVlan").unwrap().len(), 1);

    // --- Reconverge: the lost configuration is re-issued -------------
    let admin2 = ovsdb::Client::connect(server2.local_addr()).unwrap();
    admin2
        .transact(
            "snvs",
            json!([
                {"op": "insert", "table": "Port",
                 "row": {"id": 2, "vlan_mode": "access", "tag": 11}},
                {"op": "insert", "table": "Port",
                 "row": {"id": 3, "vlan_mode": "access", "tag": 12}}
            ]),
        )
        .unwrap();
    let update = updates2.recv_timeout(Duration::from_secs(5)).unwrap();
    controller.handle_monitor_update(&update).unwrap();
    assert_eq!(device.read_table("InVlan").unwrap().len(), 3);
    drop(client2);
}

#[test]
fn monitor_initial_state_is_served_from_recovered_state() {
    // A server restarted on a recovered database serves monitor
    // initial-state from the replayed WAL — a controller that connects
    // after the restart sees exactly the pre-crash committed state with
    // no special cases.
    let scratch = Scratch::new("monitor");
    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).unwrap();
    let (open, _) = open_durable(&scratch.0, &schema);
    let server = ovsdb::Server::start(open.unwrap().0, "127.0.0.1:0").unwrap();
    let admin = ovsdb::Client::connect(server.local_addr()).unwrap();
    admin
        .transact(
            "snvs",
            json!([
                {"op": "insert", "table": "Switch", "row": {"idx": 0}},
                {"op": "insert", "table": "Port",
                 "row": {"id": 4, "vlan_mode": "access", "tag": 20}}
            ]),
        )
        .unwrap();
    let (pre, _updates) = admin
        .monitor("snvs", json!("pre"), json!({"Port": {}, "Switch": {}}))
        .unwrap();
    drop(admin);
    drop(server);

    let (open, _) = open_durable(&scratch.0, &schema);
    let (db2, report) = open.unwrap();
    assert_eq!(report.replayed_records, 1);
    let server2 = ovsdb::Server::start(db2, "127.0.0.1:0").unwrap();
    let client = ovsdb::Client::connect(server2.local_addr()).unwrap();
    let (post, _updates2) = client
        .monitor("snvs", json!("post"), json!({"Port": {}, "Switch": {}}))
        .unwrap();
    assert_eq!(pre, post, "recovered monitor snapshot differs");
    assert_eq!(client.commit_index().unwrap(), 1);
}

#[test]
fn corrupt_interior_refuses_and_reports_degraded() {
    // A log with a damaged interior record must refuse recovery with the
    // typed error and leave the health board degraded — the operator
    // signal that manual intervention (restore from snapshot/backup) is
    // needed, instead of silently dropping acknowledged transactions.
    let scratch = Scratch::new("corrupt");
    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).unwrap();
    let (open, _) = open_durable(&scratch.0, &schema);
    let server = ovsdb::Server::start(open.unwrap().0, "127.0.0.1:0").unwrap();
    let admin = ovsdb::Client::connect(server.local_addr()).unwrap();
    for idx in 0..3 {
        admin
            .transact(
                "snvs",
                json!([{"op": "insert", "table": "Switch", "row": {"idx": idx}}]),
            )
            .unwrap();
    }
    drop(admin);
    drop(server);

    // Damage a byte in the *first* record's payload: corrupt interior.
    let wal_path = scratch.0.join(ovsdb::wal::WAL_FILE);
    let mut image = std::fs::read(&wal_path).unwrap();
    image[ovsdb::wal::RECORD_HEADER_LEN + 4] ^= 0xFF;
    std::fs::write(&wal_path, &image).unwrap();

    let (open, health) = open_durable(&scratch.0, &schema);
    match open {
        Err(WalError::CorruptRecord { offset, .. }) => assert_eq!(offset, 0),
        Ok(_) => panic!("corrupt interior accepted"),
        Err(other) => panic!("expected CorruptRecord, got {other}"),
    }
    assert!(
        health.starts_with("degraded("),
        "health after refused recovery: {health}"
    );
    // Leave a green board for anything else sharing this process.
    telemetry::global()
        .health
        .set("ovsdb_wal", "ok(test reset)");
}
