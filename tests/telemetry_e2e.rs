//! Cross-plane telemetry acceptance: one OVSDB transaction travels the
//! full TCP stack (OVSDB server → monitor → controller → P4Runtime
//! service) and its trace id minted at commit time must be visible on
//! the resulting P4 write, with non-zero timings recorded for every
//! plane it crossed. The live introspection endpoint must expose the
//! metrics behind the run as well-formed Prometheus text.

use std::time::Duration;

use nerpa::codegen::CodegenOptions;
use nerpa::controller::{Controller, NerpaProgram};
use p4sim::service::{ControlClient, ControlService, SwitchDevice};
use p4sim::Switch;
use serde_json::json;

#[test]
fn trace_id_flows_from_ovsdb_commit_to_p4_write() {
    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).unwrap();
    let db_server =
        ovsdb::Server::start(ovsdb::Database::new(schema.clone()), "127.0.0.1:0").unwrap();

    let program = p4sim::parse_p4(snvs::assets::SNVS_P4).unwrap();
    let device = SwitchDevice::new(Switch::new(program.clone()));
    let p4_service = ControlService::start(device.clone(), "127.0.0.1:0").unwrap();

    let nerpa_program = NerpaProgram {
        schema,
        p4info: p4sim::P4Info::from_program(&program),
        rules: snvs::assets::SNVS_RULES.to_string(),
        options: CodegenOptions { per_switch: true },
    };
    let mut controller = Controller::new(&nerpa_program).unwrap();
    let p4_client = ControlClient::connect(p4_service.local_addr()).unwrap();
    controller.add_switch(Box::new(p4_client));

    let monitor_client = ovsdb::Client::connect(db_server.local_addr()).unwrap();
    let (initial, updates) = monitor_client
        .monitor("snvs", json!("nerpa"), json!({"Port": {}, "Switch": {}}))
        .unwrap();
    controller.handle_monitor_update(&initial).unwrap();

    // One management-plane transaction: register the switch and add a
    // port. The server mints a trace id when this commits.
    let admin = ovsdb::Client::connect(db_server.local_addr()).unwrap();
    admin
        .transact(
            "snvs",
            json!([
                {"op": "insert", "table": "Switch", "row": {"idx": 0}},
                {"op": "insert", "table": "Port",
                 "row": {"id": 7, "vlan_mode": "access", "tag": 42}}
            ]),
        )
        .unwrap();

    // The monitor update carries the trace context over the wire.
    let update = updates
        .recv_timeout(Duration::from_secs(5))
        .expect("monitor update");
    let minted = update
        .get(ovsdb::TRACE_KEY)
        .and_then(|t| t.get("id"))
        .and_then(|id| id.as_u64())
        .expect("monitor update must carry the commit's trace id");
    controller.handle_monitor_update(&update).unwrap();

    // The entry landed in the data plane...
    let entries = device.with_switch(|sw| sw.read_table("InVlan").unwrap().len());
    assert_eq!(entries, 1);

    // ...and the P4Runtime write that installed it carried the same
    // trace id that was minted at the OVSDB commit.
    assert_eq!(
        device.last_write_trace(),
        Some(minted),
        "the P4 write must carry the commit's trace id"
    );

    // The recorded span tree times every plane the change crossed.
    let tree = telemetry::global()
        .tracer
        .find(minted)
        .expect("the trace must be in the ring buffer");
    for plane in ["management", "control", "data"] {
        assert!(
            tree.plane_duration_ns(plane) > 0,
            "plane {plane} must have a non-zero duration:\n{}",
            tree.render_text()
        );
    }
    assert!(tree.find_span("ovsdb.commit").is_some());
    assert!(tree.find_span("ddlog.apply").is_some());
    assert!(tree.find_span("p4.write").is_some());
}

#[test]
fn introspection_endpoint_exposes_all_three_planes() {
    // Drive a small stack in-process so every plane registers series.
    let mut stack = snvs::SnvsStack::new(1).expect("stack");
    for i in 0..4u16 {
        stack
            .add_port(i, snvs::PortMode::Access(10), None)
            .expect("add port");
    }
    // Exercise the TCP planes too: one OVSDB server round-trip and one
    // P4Runtime service write.
    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).unwrap();
    let server = ovsdb::Server::start(ovsdb::Database::new(schema), "127.0.0.1:0").unwrap();
    let client = ovsdb::Client::connect(server.local_addr()).unwrap();
    client
        .transact(
            "snvs",
            json!([{"op": "insert", "table": "Switch", "row": {"idx": 0}}]),
        )
        .unwrap();

    let mut endpoint = stack
        .controller
        .serve_introspection("127.0.0.1:0")
        .expect("endpoint");
    let (status, body) = telemetry::http_get(endpoint.local_addr(), "/metrics").unwrap();
    assert!(status.contains("200"), "{status}");
    telemetry::validate_exposition(&body).expect("exposition must be well-formed");

    // The dataflow profiler's series are live on /metrics...
    for series in [
        "ddlog_op_tuples_in_total",
        "ddlog_op_tuples_out_total",
        "ddlog_op_wall_ns_total",
        "ddlog_state_bytes",
    ] {
        assert!(body.contains(series), "missing {series} in exposition");
    }

    // ...and /dataflow serves the compiled plan with per-operator costs.
    let (status, dataflow) = telemetry::http_get(endpoint.local_addr(), "/dataflow").unwrap();
    assert!(status.contains("200"), "{status}");
    assert!(
        dataflow.contains("\"schema\":\"nerpa.dataflow.v1\""),
        "{dataflow}"
    );
    assert!(dataflow.contains("\"kind\":\"join\""), "{dataflow}");
    // The snapshot reflects commits made while the endpoint is up.
    let before = stack
        .controller
        .engine()
        .cumulative_profile()
        .total_tuples();
    stack
        .add_port(9, snvs::PortMode::Access(11), None)
        .expect("add port");
    let (_, dataflow) = telemetry::http_get(endpoint.local_addr(), "/dataflow").unwrap();
    let after = stack
        .controller
        .engine()
        .cumulative_profile()
        .total_tuples();
    assert!(after > before, "commit must add dataflow work");
    assert!(
        dataflow.contains(&format!("\"total_tuples\":{after}")),
        "snapshot stale: want total_tuples {after} in {dataflow}"
    );

    // At least 12 distinct named series spanning all three planes.
    let names = telemetry::global().registry.series_names();
    assert!(names.len() >= 12, "only {} series: {names:?}", names.len());
    for prefix in ["ovsdb_", "ddlog_", "p4_", "controller_"] {
        assert!(
            names.iter().any(|n| n.starts_with(prefix)),
            "no {prefix}* series in {names:?}"
        );
    }

    // The health board reports the registered switch.
    let (status, health) = telemetry::http_get(endpoint.local_addr(), "/health").unwrap();
    assert!(status.contains("200"), "{status}: {health}");
    assert!(health.contains("switch/0"), "{health}");

    // Traces are served too.
    let (status, traces) = telemetry::http_get(endpoint.local_addr(), "/traces").unwrap();
    assert!(status.contains("200"), "{status}");
    assert!(traces.contains("stack.change"), "{traces}");
    endpoint.shutdown();
}
