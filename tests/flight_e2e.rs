//! The flight recorder end to end: an oracle-caught failure ships a
//! `.nfr` dump whose merged timeline shows the causally ordered
//! ovsdb → ddlog → shard → p4 events for a traced commit, and
//! convergence lag is recorded for every committed transaction even
//! while a chaos proxy is severing a switch link mid-run.

use std::io::{Read, Write};
use std::time::Duration;

use chaos::{ConnFault, Direction, FaultProxy, FaultSchedule, Framing};
use fullstack_sdn::flight::Timeline;
use nerpa::codegen::CodegenOptions;
use nerpa::controller::{DataPlane, NerpaProgram};
use oracle::{run_oracle, InjectedBug, OracleConfig};
use p4sim::service::{ControlClient, ControlService, SwitchDevice};
use p4sim::Switch;
use serde_json::json;
use shard::{PartitionSpec, Router, ShardRuntime};

fn snvs_program() -> (ovsdb::Schema, p4sim::ast::Program, NerpaProgram) {
    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).unwrap();
    let program = p4sim::parse_p4(snvs::assets::SNVS_P4).unwrap();
    let nerpa_program = NerpaProgram {
        schema: schema.clone(),
        p4info: p4sim::P4Info::from_program(&program),
        rules: snvs::assets::SNVS_RULES.to_string(),
        options: CodegenOptions { per_switch: true },
    };
    (schema, program, nerpa_program)
}

fn trace_of(update: &serde_json::Value) -> u64 {
    update
        .get(ovsdb::TRACE_KEY)
        .and_then(|t| t.get("id"))
        .and_then(|id| id.as_u64())
        .expect("monitor update must carry the commit's trace id")
}

/// The pinned acceptance path: a full sharded TCP stack commits one
/// traced change (filling the rings with its cross-plane events), then
/// an injected engine bug makes the oracle fail — and the `.nfr` dump
/// it ships must replay that commit as a causally ordered
/// ovsdb → ddlog → shard → p4 timeline under `nerpa-flight`'s loader.
#[test]
fn oracle_failure_ships_causally_ordered_flight_dump() {
    let (_, program, nerpa_program) = snvs_program();

    // Two switches over TCP, one shard each.
    let mut devices = Vec::new();
    let mut services = Vec::new();
    let mut switches: Vec<(usize, Box<dyn DataPlane>)> = Vec::new();
    for sw in 0..2 {
        let device = SwitchDevice::new(Switch::new(program.clone()));
        let service = ControlService::start(device.clone(), "127.0.0.1:0").unwrap();
        let client = ControlClient::connect(service.local_addr()).unwrap();
        switches.push((sw, Box::new(client)));
        devices.push(device);
        services.push(service);
    }
    let router = Router::new(PartitionSpec::snvs(), 2);
    let runtime = ShardRuntime::start(&nerpa_program, router, switches).unwrap();

    // Management plane over TCP; the commit's trace id is minted by the
    // server and rides the monitor update into every shard.
    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).unwrap();
    let db_server = ovsdb::Server::start(ovsdb::Database::new(schema), "127.0.0.1:0").unwrap();
    let monitor = ovsdb::Client::connect(db_server.local_addr()).unwrap();
    let (_initial, updates) = monitor
        .monitor("snvs", json!("flight"), json!({"Port": {}, "Switch": {}}))
        .unwrap();
    let admin = ovsdb::Client::connect(db_server.local_addr()).unwrap();
    admin
        .transact(
            "snvs",
            json!([
                {"op": "insert", "table": "Switch", "row": {"idx": 0}},
                {"op": "insert", "table": "Switch", "row": {"idx": 1}},
                {"op": "insert", "table": "Port",
                 "row": {"id": 7, "vlan_mode": "access", "tag": 42}}
            ]),
        )
        .unwrap();
    let update = updates.recv_timeout(Duration::from_secs(5)).unwrap();
    let trace = trace_of(&update);
    runtime.handle_monitor_update(&update).unwrap();
    runtime.flush();
    for device in &devices {
        assert_eq!(
            device.with_switch(|s| s.read_table("InVlan").unwrap().len()),
            1
        );
    }

    // Now the failure: the stale-arrangement engine bug trips the
    // oracle's differential check, and the failure snapshots the rings
    // — which still hold the traced commit above — into a dump.
    let cfg = OracleConfig {
        bug: Some(InjectedBug::StaleArrangement),
        ..OracleConfig::new(1, 200)
    };
    let failure = run_oracle(&cfg).expect_err("stale arrangements must be caught");
    let dump = failure
        .dump_path
        .as_ref()
        .expect("an oracle failure must ship a flight-recorder dump");
    assert_eq!(dump.extension().and_then(|e| e.to_str()), Some("nfr"));

    let timeline = Timeline::load(std::slice::from_ref(dump)).unwrap();
    assert!(
        !timeline.dumps[0].reason.is_empty(),
        "the dump records why it was written"
    );

    // The traced commit's cross-plane story, causally ordered.
    let commit = timeline.filter_trace(trace);
    let kinds: Vec<&str> = commit.events.iter().map(|e| e.kind.as_str()).collect();
    let first = |kind: &str| {
        kinds
            .iter()
            .position(|k| *k == kind)
            .unwrap_or_else(|| panic!("no {kind} event for trace {trace:x}; got {kinds:?}"))
    };
    assert!(first("ovsdb.commit") < first("ddlog.apply"), "{kinds:?}");
    assert!(first("ddlog.apply") < first("shard.push"), "{kinds:?}");
    assert!(first("shard.push") < first("p4.write"), "{kinds:?}");
    for pair in commit.events.windows(2) {
        assert!(
            pair[0].seq < pair[1].seq,
            "merged timeline must preserve the causal sequence order"
        );
    }
    assert_eq!(
        commit.planes_crossed().first().map(String::as_str),
        Some("management"),
        "the trace starts at the ovsdb ack"
    );

    runtime.shutdown();
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

/// Convergence-lag e2e: every transaction committed through the TCP
/// management plane gets its lag recorded — including the ones
/// committed while a chaos proxy has severed one switch's control link
/// and until a fresh connection reconciles it back. The histograms are
/// exported globally and per shard, and `/convergence` serves the
/// recent settlements.
#[test]
fn convergence_lag_recorded_for_every_commit_under_chaos_reconnects() {
    let (_, program, nerpa_program) = snvs_program();

    // Switch 0 on a direct link; switch 1 (the victim) behind a chaos
    // proxy that kills its connection at the third protocol message.
    let device0 = SwitchDevice::new(Switch::new(program.clone()));
    let service0 = ControlService::start(device0.clone(), "127.0.0.1:0").unwrap();
    let device1 = SwitchDevice::new(Switch::new(program.clone()));
    let service1 = ControlService::start(device1.clone(), "127.0.0.1:0").unwrap();
    let schedule = FaultSchedule::scripted(
        0xF11C47,
        Framing::LengthPrefixed,
        vec![ConnFault::kill_after(3, Direction::ClientToServer)],
    );
    let proxy = FaultProxy::start(service1.local_addr(), schedule).unwrap();

    let switches: Vec<(usize, Box<dyn DataPlane>)> = vec![
        (
            0,
            Box::new(ControlClient::connect(service0.local_addr()).unwrap()),
        ),
        (
            1,
            Box::new(ControlClient::connect(proxy.local_addr()).unwrap()),
        ),
    ];
    let runtime = ShardRuntime::start(
        &nerpa_program,
        Router::new(PartitionSpec::snvs(), 2),
        switches,
    )
    .unwrap();

    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).unwrap();
    let db_server = ovsdb::Server::start(ovsdb::Database::new(schema), "127.0.0.1:0").unwrap();
    let monitor = ovsdb::Client::connect(db_server.local_addr()).unwrap();
    let (_initial, updates) = monitor
        .monitor("snvs", json!("lag"), json!({"Port": {}, "Switch": {}}))
        .unwrap();
    let admin = ovsdb::Client::connect(db_server.local_addr()).unwrap();

    let commit = |ops: serde_json::Value| -> u64 {
        admin.transact("snvs", ops).unwrap();
        let update = updates.recv_timeout(Duration::from_secs(5)).unwrap();
        let trace = trace_of(&update);
        runtime.handle_monitor_update(&update).unwrap();
        runtime.flush();
        trace
    };

    let mut traces = Vec::new();
    traces.push(commit(json!([
        {"op": "insert", "table": "Switch", "row": {"idx": 0}},
        {"op": "insert", "table": "Switch", "row": {"idx": 1}},
        {"op": "insert", "table": "Port", "row": {"id": 1, "vlan_mode": "access", "tag": 10}}
    ])));
    for id in [2u16, 3] {
        traces.push(commit(json!([
            {"op": "insert", "table": "Port",
             "row": {"id": id, "vlan_mode": "access", "tag": 10}}
        ])));
    }

    // By now the scripted kill has severed the victim's link; its shard
    // is degraded while the healthy shard keeps settling commits.
    let victim_shard = runtime.shard_of_switch(1);
    assert!(
        !runtime.dirty_switches(victim_shard).is_empty(),
        "the chaos kill must have dirtied the victim switch \
         (proxy stats: {:?})",
        proxy.stats()
    );

    // Chaos reconnect: a fresh direct connection replaces the severed
    // one and the shard reconciles; later commits settle on both shards.
    runtime
        .replace_switch(
            1,
            Box::new(ControlClient::connect(service1.local_addr()).unwrap()),
        )
        .unwrap();
    runtime.flush();
    assert!(runtime.dirty_switches(victim_shard).is_empty());
    for id in [4u16, 5] {
        traces.push(commit(json!([
            {"op": "insert", "table": "Port",
             "row": {"id": id, "vlan_mode": "access", "tag": 10}}
        ])));
    }

    // The property under test: every committed transaction has a
    // recorded convergence lag, outage or not.
    let telemetry = telemetry::global();
    for (i, trace) in traces.iter().enumerate() {
        assert!(
            telemetry.convergence.lag_of(*trace).is_some(),
            "transaction {i} (trace {trace:x}) has no recorded convergence lag"
        );
    }

    // Exported globally and per shard.
    let text = telemetry.registry.render_text();
    assert!(
        text.contains("nerpa_convergence_lag_ns_bucket{le="),
        "global convergence histogram missing"
    );
    assert!(
        text.contains("nerpa_convergence_lag_ns_bucket{shard=\"0\""),
        "per-shard convergence histogram missing:\n{text}"
    );

    // And visible on the live /convergence page.
    let server = telemetry::IntrospectionServer::start("127.0.0.1:0", telemetry.clone()).unwrap();
    let response = http_get(server.local_addr(), "/convergence");
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).unwrap();
    let page: serde_json::Value = serde_json::from_str(body).unwrap();
    assert!(
        page["settled"].as_u64().unwrap() >= traces.len() as u64,
        "{page}"
    );
    let recent: Vec<u64> = page["recent"]
        .as_array()
        .unwrap()
        .iter()
        .map(|s| s["trace"].as_u64().unwrap())
        .collect();
    for trace in &traces {
        assert!(
            recent.contains(trace),
            "trace {trace:x} missing from /convergence recent table: {recent:?}"
        );
    }

    runtime.shutdown();
}
