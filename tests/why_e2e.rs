//! The provenance engine end to end: every P4 table entry and multicast
//! group member a live snvs stack installs resolves — through the
//! controller's table mappings — to a derivation tree rooted entirely
//! in base (OVSDB-mirrored or digest) facts, and entries that are *not*
//! installed get an actionable why-not report.

use ddlog::{ProvenanceConfig, WhyNode};
use netsim::{ethertype, EthFrame, Mac};
use snvs::{PortMode, SnvsStack};

fn eth(dst: Mac, src: Mac, payload: &[u8]) -> EthFrame {
    EthFrame::new(dst, src, ethertype::IPV4, payload.to_vec())
}

/// Two switches, mixed access/trunk ports, mirroring, and learned MACs
/// on both — the workload every installed entry must be explainable
/// under.
fn loaded_stack() -> SnvsStack {
    let mut stack = SnvsStack::new_with(2, ProvenanceConfig::on()).unwrap();
    for port in [1u16, 2, 3] {
        stack.add_port(port, PortMode::Access(10), None).unwrap();
    }
    stack.add_port(4, PortMode::Access(20), None).unwrap();
    stack
        .add_port(5, PortMode::Trunk(vec![10, 20]), Some(3))
        .unwrap();
    let h1 = stack.add_host(1, 0, 1);
    let h2 = stack.add_host(2, 0, 2);
    let h3 = stack.add_host(3, 1, 1);
    stack
        .send(h1, &eth(Mac::host(2), Mac::host(1), b"a"))
        .unwrap();
    stack
        .send(h2, &eth(Mac::host(1), Mac::host(2), b"b"))
        .unwrap();
    stack
        .send(h3, &eth(Mac::BROADCAST, Mac::host(3), b"c"))
        .unwrap();
    stack
}

fn assert_rooted(tree: &WhyNode, what: &str) {
    assert!(
        tree.rooted_in_base(),
        "{what}: derivation tree not rooted in base facts:\n{}",
        tree.render_text()
    );
}

#[test]
fn every_installed_entry_and_group_resolves_to_base_facts() {
    let stack = loaded_stack();
    let controller = &stack.controller;
    let mut entries_checked = 0;
    let mut members_checked = 0;
    for sw in 0..stack.devices.len() {
        for entry in controller.desired_entries(sw).unwrap() {
            let tree = controller
                .why_entry(sw, &entry)
                .unwrap_or_else(|e| panic!("switch {sw} entry {entry:?}: {e}"));
            assert_rooted(&tree, &format!("switch {sw} entry {entry:?}"));
            entries_checked += 1;
        }
        for (group, ports) in controller.mcast_snapshot(sw) {
            for port in ports {
                let tree = controller
                    .why_mcast(sw, group, port)
                    .unwrap_or_else(|e| panic!("switch {sw} group {group} port {port}: {e}"));
                assert_rooted(&tree, &format!("switch {sw} group {group} port {port}"));
                members_checked += 1;
            }
        }
    }
    // The workload must actually exercise the stack: VLAN classification
    // and learned MACs on both switches, plus flood groups.
    assert!(
        entries_checked >= 10,
        "expected a loaded data plane, checked only {entries_checked} entries"
    );
    assert!(members_checked >= 4, "expected flood-group members");
    // The installed entries on the devices are exactly the explained
    // desired sets (the e2e guarantee "from OVSDB row to P4 entry").
    for (sw, device) in stack.devices.iter().enumerate() {
        let installed: std::collections::BTreeSet<_> = device
            .read_all_tables()
            .into_iter()
            .flat_map(|(_, es)| es)
            .collect();
        assert_eq!(installed, controller.desired_entries(sw).unwrap());
    }
    controller.engine().validate_provenance().unwrap();
}

#[test]
fn retraction_prunes_provenance_end_to_end() {
    let mut stack = loaded_stack();
    // Removing port 2 retracts its VLAN membership: the flood group
    // member disappears and so must every derivation that cited it.
    stack.remove_port(2).unwrap();
    let controller = &stack.controller;
    assert!(
        !controller
            .mcast_snapshot(0)
            .get(&10)
            .is_some_and(|m| m.contains(&2)),
        "flood group still lists removed port"
    );
    let err = controller.why_mcast(0, 10, 2).unwrap_err();
    assert!(
        err.contains("no MulticastGroup row"),
        "expected unresolvable member, got: {err}"
    );
    // And the engine can say exactly why it is gone now.
    let report = controller
        .engine()
        .why_not(
            "MulticastGroup",
            vec![ddlog::Value::bit(16, 10), ddlog::Value::bit(16, 2)],
        )
        .unwrap();
    assert!(!report.present);
    controller.engine().validate_provenance().unwrap();
}

#[test]
fn why_not_explains_missing_entries() {
    let stack = loaded_stack();
    let controller = &stack.controller;
    // A MAC that was never learned: the first failing literal must be
    // the digest relation.
    let report = controller
        .engine()
        .why_not(
            "MacLearned",
            vec![
                ddlog::Value::Int(0),
                ddlog::Value::bit(12, 10),
                ddlog::Value::bit(48, 0xdead),
                ddlog::Value::str("output"),
                ddlog::Value::bit(16, 1),
            ],
        )
        .unwrap();
    assert!(!report.present);
    let text = report.render_text();
    assert!(
        text.contains("mac_learn_t"),
        "why-not must name the digest relation:\n{text}"
    );
}
