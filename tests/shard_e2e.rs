//! The sharded deployment over real sockets: four switches, each served
//! by its own control service, driven by a [`shard::ShardRuntime`] of
//! four engine shards. The scenario the sharded control plane exists
//! for: one switch dies mid-run and only its shard degrades — every
//! other shard keeps committing and pushing undisturbed — then the
//! switch comes back empty and per-shard reconciliation restores it
//! without touching the healthy shards.

use std::collections::BTreeSet;

use nerpa::codegen::CodegenOptions;
use nerpa::controller::{DataPlane, NerpaProgram};
use p4sim::runtime::Digest;
use p4sim::service::{ControlClient, ControlService, SwitchDevice};
use p4sim::Switch;
use serde_json::json;
use shard::{PartitionSpec, Router, ShardRuntime};

const SHARDS: usize = 4;
const VICTIM: usize = 2;

fn mac_digest(port: u16, mac: u64, vlan: u16) -> Digest {
    Digest {
        name: "mac_learn_t".into(),
        fields: vec![
            ("port".into(), port as u128),
            ("mac".into(), mac as u128),
            ("vlan".into(), vlan as u128),
        ],
    }
}

#[test]
fn sharded_pipeline_survives_single_switch_failure() {
    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).unwrap();
    let program = p4sim::parse_p4(snvs::assets::SNVS_P4).unwrap();
    let nerpa_program = NerpaProgram {
        schema: schema.clone(),
        p4info: p4sim::P4Info::from_program(&program),
        rules: snvs::assets::SNVS_RULES.to_string(),
        options: CodegenOptions { per_switch: true },
    };

    // Four switch processes, each behind its own TCP control service.
    let mut devices = Vec::new();
    let mut services = Vec::new();
    let mut switches: Vec<(usize, Box<dyn DataPlane>)> = Vec::new();
    for sw in 0..SHARDS {
        let device = SwitchDevice::new(Switch::new(program.clone()));
        let service = ControlService::start(device.clone(), "127.0.0.1:0").unwrap();
        let client = ControlClient::connect(service.local_addr()).unwrap();
        switches.push((sw, Box::new(client)));
        devices.push(device);
        services.push(service);
    }
    let router = Router::new(PartitionSpec::snvs(), SHARDS);
    let runtime = ShardRuntime::start(&nerpa_program, router, switches).unwrap();

    // Register the switches and two ports through the management plane.
    // Port rows broadcast; each Switch row lands on its own shard.
    let mut db = ovsdb::Database::new(schema);
    let mut tx: Vec<serde_json::Value> = (0..SHARDS)
        .map(|sw| json!({"op": "insert", "table": "Switch", "row": {"idx": sw}}))
        .collect();
    for port in [1u16, 2] {
        tx.push(json!({"op": "insert", "table": "Port",
                       "row": {"id": port, "vlan_mode": "access", "tag": 10}}));
    }
    let (_, changes) = db.transact(&json!(tx));
    let trace = runtime.handle_row_changes(&changes).unwrap();
    runtime.flush();

    // Every switch got both port entries over its own socket, and every
    // shard's P4Runtime write carried the one trace id minted for the
    // commit — the fan-out must not orphan traces by minting per shard.
    assert_ne!(trace, 0);
    for (sw, device) in devices.iter().enumerate() {
        let n = device.with_switch(|s| s.read_table("InVlan").unwrap().len());
        assert_eq!(n, 2, "switch {sw} missing config entries");
        assert_eq!(
            device.last_write_trace(),
            Some(trace),
            "switch {sw}: shard write lost the commit's trace id"
        );
    }
    // The writer acked on every shard, so the commit's convergence lag
    // was recorded from the single begin anchor.
    assert!(
        telemetry::global().convergence.lag_of(trace).is_some(),
        "convergence lag must be recorded once the shard writers settle"
    );

    // Per-shard digest path: each switch learns one distinct MAC.
    for sw in 0..SHARDS {
        runtime
            .handle_digests(sw, vec![mac_digest(1, 0xAA00 + sw as u64, 10)])
            .unwrap();
    }
    runtime.flush();
    for (sw, device) in devices.iter().enumerate() {
        let macs = device.with_switch(|s| s.read_table("MacLearned").unwrap().to_vec());
        assert_eq!(macs.len(), 1, "switch {sw}: {macs:?}");
    }

    // One switch dies: stop its service and sever the connection.
    services[VICTIM].shutdown();

    // More management-plane traffic while the switch is down.
    let before: Vec<u64> = (0..SHARDS).map(|s| runtime.commits(s)).collect();
    let (_, changes) = db.transact(&json!([
        {"op": "insert", "table": "Port",
         "row": {"id": 3, "vlan_mode": "access", "tag": 20}}
    ]));
    runtime.handle_row_changes(&changes).unwrap();
    runtime.flush();

    // Every shard's engine kept committing — a dead switch on one shard
    // must not stall the others (or even its own commits; only its
    // pushes fail).
    for (s, &seen) in before.iter().enumerate() {
        assert!(runtime.commits(s) > seen, "shard {s} stalled");
        assert_eq!(runtime.commit_errors(s), 0, "shard {s} commit errors");
    }
    // Healthy switches installed the new entry; the dead one is flagged
    // dirty on its shard, and only there.
    for (sw, device) in devices.iter().enumerate() {
        let n = device.with_switch(|s| s.read_table("InVlan").unwrap().len());
        let want = if sw == VICTIM { 2 } else { 3 };
        assert_eq!(n, want, "switch {sw}");
    }
    let victim_shard = runtime.shard_of_switch(VICTIM);
    assert_eq!(
        runtime.dirty_switches(victim_shard),
        BTreeSet::from([VICTIM])
    );
    for s in (0..SHARDS).filter(|s| *s != victim_shard) {
        assert!(
            runtime.dirty_switches(s).is_empty(),
            "shard {s} wrongly dirty"
        );
    }

    // The switch comes back as a fresh, empty process on a new socket.
    // Replacing the data plane reconciles only its shard.
    let fresh = SwitchDevice::new(Switch::new(program.clone()));
    let service = ControlService::start(fresh.clone(), "127.0.0.1:0").unwrap();
    let client = ControlClient::connect(service.local_addr()).unwrap();
    runtime.replace_switch(VICTIM, Box::new(client)).unwrap();
    runtime.flush();
    services.push(service);

    // Reconciliation restored the full desired state — the three config
    // entries and the MAC its shard still holds for it.
    let n = fresh.with_switch(|s| s.read_table("InVlan").unwrap().len());
    assert_eq!(n, 3, "restarted switch missing config entries");
    let macs = fresh.with_switch(|s| s.read_table("MacLearned").unwrap().len());
    assert_eq!(macs, 1, "restarted switch missing learned MAC");
    assert!(runtime.dirty_switches(victim_shard).is_empty());

    // The introspection page (registered at startup) reflects the
    // sharded topology.
    let (content_type, body) = telemetry::global().render_page("/shards").unwrap();
    assert_eq!(content_type, "application/json");
    let page: serde_json::Value = serde_json::from_str(&body).unwrap();
    let shards = page["shards"].as_array().unwrap();
    assert_eq!(shards.len(), SHARDS);
    for (sw, entry) in shards.iter().enumerate() {
        assert_eq!(entry["shard"], json!(sw));
        assert_eq!(entry["switches"], json!([sw]));
        assert!(entry["commits"].as_u64().unwrap() > 0);
        assert_eq!(entry["dirty_switches"], json!([]));
    }

    runtime.shutdown();
}
