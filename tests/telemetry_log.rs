//! At the default log level (`warn`), the per-transaction hot path —
//! OVSDB commit → DDlog apply → P4 write — must emit no log records at
//! all: the level check is one atomic load and nothing is formatted.
//! Widening the level makes the same path chatty, proving the sites are
//! actually there.

use telemetry::log::{records_emitted, set_level, Level};

#[test]
fn hot_path_is_silent_at_default_level() {
    // Pin the default level explicitly so a NERPA_LOG in the test
    // environment cannot widen it.
    set_level(telemetry::log::DEFAULT_LEVEL);
    assert_eq!(telemetry::log::max_level(), Level::Warn);

    let mut stack = snvs::SnvsStack::new(1).expect("stack");
    let before = records_emitted();
    let ((), lines) = telemetry::log::capture(|| {
        for i in 0..50u16 {
            stack
                .add_port(i, snvs::PortMode::Access(10 + (i % 8)), None)
                .expect("add port");
        }
    });
    assert_eq!(
        records_emitted(),
        before,
        "hot path emitted records at the default level: {lines:?}"
    );
    assert!(lines.is_empty(), "{lines:?}");

    // The same path logs per-transaction detail once debug is on.
    set_level(Level::Debug);
    let ((), lines) = telemetry::log::capture(|| {
        stack
            .add_port(100, snvs::PortMode::Access(10), None)
            .expect("add port");
    });
    set_level(telemetry::log::DEFAULT_LEVEL);
    assert!(
        lines.iter().any(|l| l.starts_with("DEBUG controller:")),
        "expected controller debug records, got {lines:?}"
    );
}
