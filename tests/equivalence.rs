//! Property tests asserting that the three controller implementations
//! agree, and that incremental evaluation equals from-scratch evaluation
//! — the correctness backbone of the whole reproduction.

use baselines::{Event, FullRecompute, HandwrittenIncremental, LearnedMac, PortConfig};
use ddlog::{Engine, Transaction, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// Incremental == from-scratch for the recursive reachability program.
// ---------------------------------------------------------------------

const REACH: &str = "
input relation GivenLabel(n: bigint, l: bigint)
input relation Edge(a: bigint, b: bigint)
output relation Label(n: bigint, l: bigint)
Label(n, l) :- GivenLabel(n, l).
Label(b, l) :- Label(a, l), Edge(a, b).
";

fn edge(a: i128, b: i128) -> Vec<Value> {
    vec![Value::Int(a), Value::Int(b)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Apply a random sequence of edge insertions/deletions one
    /// transaction at a time; the final state must equal evaluating the
    /// surviving edge set from scratch. This exercises semi-naive
    /// insertion and DRed deletion on arbitrary graphs (cycles included).
    #[test]
    fn incremental_equals_scratch(ops in proptest::collection::vec(
        (0u8..2, 0i128..8, 0i128..8), 1..60,
    )) {
        let mut incremental = Engine::from_source(REACH).unwrap();
        let mut t = Transaction::new();
        t.insert("GivenLabel", vec![Value::Int(0), Value::Int(7)]);
        incremental.commit(t).unwrap();

        let mut live: BTreeSet<(i128, i128)> = BTreeSet::new();
        for (kind, a, b) in &ops {
            let mut t = Transaction::new();
            if *kind == 0 {
                t.insert("Edge", edge(*a, *b));
                live.insert((*a, *b));
            } else {
                t.delete("Edge", edge(*a, *b));
                live.remove(&(*a, *b));
            }
            incremental.commit(t).unwrap();
        }

        let mut scratch = Engine::from_source(REACH).unwrap();
        let mut t = Transaction::new();
        t.insert("GivenLabel", vec![Value::Int(0), Value::Int(7)]);
        for (a, b) in &live {
            t.insert("Edge", edge(*a, *b));
        }
        scratch.commit(t).unwrap();

        prop_assert_eq!(
            incremental.dump("Label").unwrap(),
            scratch.dump("Label").unwrap()
        );
        prop_assert_eq!(
            incremental.dump("Edge").unwrap(),
            scratch.dump("Edge").unwrap()
        );
    }
}

// ---------------------------------------------------------------------
// Incremental == from-scratch for a program with negation + aggregation.
// ---------------------------------------------------------------------

const AGG_NEG: &str = "
input relation Item(grp: bigint, v: bigint)
input relation Banned(grp: bigint)
relation Allowed(grp: bigint, v: bigint)
output relation Summary(grp: bigint, n: bigint)
Allowed(g, v) :- Item(g, v), not Banned(g).
Summary(g, n) :- Allowed(g, v), var n = count(v) group_by (g).
";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn negation_aggregation_incremental(ops in proptest::collection::vec(
        (0u8..4, 0i128..4, 0i128..6), 1..50,
    )) {
        let mut inc = Engine::from_source(AGG_NEG).unwrap();
        let mut items: BTreeSet<(i128, i128)> = BTreeSet::new();
        let mut banned: BTreeSet<i128> = BTreeSet::new();
        for (kind, g, v) in &ops {
            let mut t = Transaction::new();
            match kind {
                0 => { t.insert("Item", vec![Value::Int(*g), Value::Int(*v)]); items.insert((*g, *v)); }
                1 => { t.delete("Item", vec![Value::Int(*g), Value::Int(*v)]); items.remove(&(*g, *v)); }
                2 => { t.insert("Banned", vec![Value::Int(*g)]); banned.insert(*g); }
                _ => { t.delete("Banned", vec![Value::Int(*g)]); banned.remove(g); }
            }
            inc.commit(t).unwrap();
        }

        let mut scratch = Engine::from_source(AGG_NEG).unwrap();
        let mut t = Transaction::new();
        for (g, v) in &items {
            t.insert("Item", vec![Value::Int(*g), Value::Int(*v)]);
        }
        for g in &banned {
            t.insert("Banned", vec![Value::Int(*g)]);
        }
        scratch.commit(t).unwrap();

        prop_assert_eq!(
            inc.dump("Summary").unwrap(),
            scratch.dump("Summary").unwrap()
        );
    }
}

// ---------------------------------------------------------------------
// The three snvs controllers agree: Nerpa (declarative, incremental),
// hand-written incremental, and full recompute.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    AddAccess(u16, u16),
    AddTrunk(u16, Vec<u16>),
    /// Flip an existing port between access and trunk mode (no-op when
    /// the port is not configured). Churns flood-group membership.
    FlipMode(u16),
    Remove(u16),
    Learn(u16, u64, u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..6, 1u16..4).prop_map(|(p, v)| Op::AddAccess(p, 10 + v)),
        (0u16..6, proptest::collection::vec(1u16..4, 1..3))
            .prop_map(|(p, vs)| Op::AddTrunk(p, vs.into_iter().map(|v| 10 + v).collect())),
        (0u16..6).prop_map(Op::FlipMode),
        (0u16..6).prop_map(Op::Remove),
        (0u16..6, 1u64..5, 1u16..4).prop_map(|(p, m, v)| Op::Learn(p, 0xAA00 + m, 10 + v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn controllers_agree(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        use p4sim::service::SwitchDevice;
        use p4sim::Switch;
        use serde_json::json;

        // Nerpa stack with one switch.
        let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).unwrap();
        let program = p4sim::parse_p4(snvs::assets::SNVS_P4).unwrap();
        let nerpa_program = nerpa::controller::NerpaProgram {
            schema: schema.clone(),
            p4info: p4sim::P4Info::from_program(&program),
            rules: snvs::assets::SNVS_RULES.to_string(),
            options: nerpa::codegen::CodegenOptions { per_switch: true },
        };
        let mut controller = nerpa::Controller::new(&nerpa_program).unwrap();
        let device = SwitchDevice::new(Switch::new(program.clone()));
        controller.add_switch(Box::new(device.clone()));
        let mut db = ovsdb::Database::new(schema);
        let (_, changes) = db.transact(&json!([
            {"op": "insert", "table": "Switch", "row": {"idx": 0}}
        ]));
        controller.handle_row_changes(&changes).unwrap();

        // Comparators.
        let mut hand = HandwrittenIncremental::new();
        let mut ports: Vec<PortConfig> = Vec::new();
        let mut macs: Vec<LearnedMac> = Vec::new();

        for op in &ops {
            match op {
                Op::AddAccess(p, v) => {
                    // Upsert = delete + insert in the management plane.
                    let (_, ch) = db.transact(&json!([
                        {"op": "delete", "table": "Port", "where": [["id", "==", p]]},
                        {"op": "insert", "table": "Port",
                         "row": {"id": p, "vlan_mode": "access", "tag": v}}
                    ]));
                    controller.handle_row_changes(&ch).unwrap();
                    hand.handle(Event::PortUpserted(PortConfig::access(*p, *v)));
                    ports.retain(|c| c.id != *p);
                    ports.push(PortConfig::access(*p, *v));
                }
                Op::AddTrunk(p, vs) => {
                    let (_, ch) = db.transact(&json!([
                        {"op": "delete", "table": "Port", "where": [["id", "==", p]]},
                        {"op": "insert", "table": "Port",
                         "row": {"id": p, "vlan_mode": "trunk", "trunks": ["set", vs]}}
                    ]));
                    controller.handle_row_changes(&ch).unwrap();
                    hand.handle(Event::PortUpserted(PortConfig::trunk(*p, vs.clone())));
                    ports.retain(|c| c.id != *p);
                    ports.push(PortConfig::trunk(*p, vs.clone()));
                }
                Op::FlipMode(p) => {
                    let Some(cur) = ports.iter().find(|c| c.id == *p).cloned() else {
                        continue;
                    };
                    let mut next = cur;
                    next.mode = match next.mode {
                        baselines::Mode::Access(v) => baselines::Mode::Trunk(vec![v]),
                        baselines::Mode::Trunk(vs) => {
                            baselines::Mode::Access(vs.first().copied().unwrap_or(11))
                        }
                    };
                    let row = match &next.mode {
                        baselines::Mode::Access(v) => json!(
                            {"id": p, "vlan_mode": "access", "tag": v}
                        ),
                        baselines::Mode::Trunk(vs) => json!(
                            {"id": p, "vlan_mode": "trunk", "trunks": ["set", vs]}
                        ),
                    };
                    let (_, ch) = db.transact(&json!([
                        {"op": "delete", "table": "Port", "where": [["id", "==", p]]},
                        {"op": "insert", "table": "Port", "row": row}
                    ]));
                    controller.handle_row_changes(&ch).unwrap();
                    hand.handle(Event::PortUpserted(next.clone()));
                    ports.retain(|c| c.id != *p);
                    ports.push(next);
                }
                Op::Remove(p) => {
                    let (_, ch) = db.transact(&json!([
                        {"op": "delete", "table": "Port", "where": [["id", "==", p]]}
                    ]));
                    controller.handle_row_changes(&ch).unwrap();
                    hand.handle(Event::PortRemoved(*p));
                    ports.retain(|c| c.id != *p);
                }
                Op::Learn(p, m, v) => {
                    let digest = p4sim::Digest {
                        name: "mac_learn_t".into(),
                        fields: vec![
                            ("port".into(), *p as u128),
                            ("mac".into(), *m as u128),
                            ("vlan".into(), *v as u128),
                        ],
                    };
                    controller.handle_digests(0, &[digest]).unwrap();
                    hand.handle(Event::MacLearned(LearnedMac { port: *p, mac: *m, vlan: *v }));
                    macs.push(LearnedMac { port: *p, mac: *m, vlan: *v });
                }
            }
        }

        // Desired state from the full-recompute specification.
        let (spec_entries, spec_groups) = FullRecompute::desired_state(&ports, &macs);
        let spec: BTreeSet<p4sim::TableEntry> = spec_entries.into_iter().collect();

        // Hand-written controller state.
        prop_assert_eq!(&hand.installed_snapshot(), &spec);
        prop_assert_eq!(hand.mcast_snapshot(), spec_groups.clone());

        // Nerpa: read the switch's actual tables. Strip the per-switch
        // routing (entries land on switch 0).
        let mut actual: BTreeSet<p4sim::TableEntry> = BTreeSet::new();
        for t in ["InVlan", "MacLearned", "Mirror", "OutVlan"] {
            let entries = device.with_switch(|sw| sw.read_table(t).unwrap().to_vec());
            actual.extend(entries);
        }
        prop_assert_eq!(&actual, &spec);

        // Multicast groups on the device mirror the spec.
        let dev_groups = device.with_switch(|sw| sw.mcast_groups.clone());
        for (g, members) in &spec_groups {
            let mut want: Vec<u16> = members.iter().copied().collect();
            want.sort_unstable();
            let mut got = dev_groups.get(g).cloned().unwrap_or_default();
            got.sort_unstable();
            prop_assert_eq!(got, want, "group {}", g);
        }
        // Churned-away groups must not leave stale members behind: any
        // device group absent from the spec has to be empty.
        for (g, members) in &dev_groups {
            if !spec_groups.contains_key(g) {
                prop_assert!(
                    members.is_empty(),
                    "stale mcast group {} still has members {:?}",
                    g,
                    members
                );
            }
        }
    }
}
