//! The full distributed deployment, over real sockets: an OVSDB server,
//! a P4 switch control service, and the Nerpa controller talking to both
//! through TCP — the architecture of the paper's Fig. 4 with every arrow
//! being a network connection.

use std::time::Duration;

use nerpa::codegen::CodegenOptions;
use nerpa::controller::{Controller, NerpaProgram};
use p4sim::service::{ControlClient, ControlService, SwitchDevice};
use p4sim::Switch;
use serde_json::json;

#[test]
fn management_to_data_plane_over_sockets() {
    // Management plane: an OVSDB server on an ephemeral port.
    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).unwrap();
    let db_server = ovsdb::Server::start(ovsdb::Database::new(schema.clone()), "127.0.0.1:0")
        .expect("ovsdb server");

    // Data plane: a switch served over its own socket.
    let program = p4sim::parse_p4(snvs::assets::SNVS_P4).unwrap();
    let device = SwitchDevice::new(Switch::new(program.clone()));
    let p4_service = ControlService::start(device.clone(), "127.0.0.1:0").expect("p4 service");

    // Control plane: compiled from the same three artifacts, attached to
    // the switch through a TCP control client.
    let nerpa_program = NerpaProgram {
        schema,
        p4info: p4sim::P4Info::from_program(&program),
        rules: snvs::assets::SNVS_RULES.to_string(),
        options: CodegenOptions { per_switch: true },
    };
    let mut controller = Controller::new(&nerpa_program).expect("controller");
    let p4_client = ControlClient::connect(p4_service.local_addr()).expect("p4 client");
    controller.add_switch(Box::new(p4_client));

    // Subscribe to the management plane like ovn-controller would.
    let monitor_client = ovsdb::Client::connect(db_server.local_addr()).expect("client");
    let (initial, updates) = monitor_client
        .monitor("snvs", json!("nerpa"), json!({"Port": {}, "Switch": {}}))
        .unwrap();
    controller.handle_monitor_update(&initial).unwrap();

    // A second client (the administrator) registers the switch and adds
    // a port.
    let admin = ovsdb::Client::connect(db_server.local_addr()).expect("admin");
    admin
        .transact(
            "snvs",
            json!([
                {"op": "insert", "table": "Switch", "row": {"idx": 0}},
                {"op": "insert", "table": "Port",
                 "row": {"id": 7, "vlan_mode": "access", "tag": 42}}
            ]),
        )
        .unwrap();

    // The monitor update arrives over TCP; feed it to the controller.
    let update = updates
        .recv_timeout(Duration::from_secs(5))
        .expect("monitor update");
    controller.handle_monitor_update(&update).unwrap();

    // The entry must now be installed in the switch (visible through the
    // in-process handle).
    let entries = device.with_switch(|sw| sw.read_table("InVlan").unwrap().to_vec());
    assert_eq!(entries.len(), 1, "{entries:?}");
    assert_eq!(entries[0].action, "set_port_vlan");
    assert_eq!(entries[0].params, vec![42]);

    // Modifying the row over TCP (a monitor `modify` update, where `old`
    // carries only the changed columns) replaces the entry's action data.
    admin
        .transact(
            "snvs",
            json!([{"op": "update", "table": "Port", "where": [["id", "==", 7]],
                    "row": {"tag": 43}}]),
        )
        .unwrap();
    let update = updates
        .recv_timeout(Duration::from_secs(5))
        .expect("modify update");
    controller.handle_monitor_update(&update).unwrap();
    let entries = device.with_switch(|sw| sw.read_table("InVlan").unwrap().to_vec());
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].params, vec![43]);

    // Deleting the port over TCP retracts the entry.
    admin
        .transact(
            "snvs",
            json!([{"op": "delete", "table": "Port", "where": [["id", "==", 7]]}]),
        )
        .unwrap();
    let update = updates
        .recv_timeout(Duration::from_secs(5))
        .expect("second update");
    controller.handle_monitor_update(&update).unwrap();
    let remaining = device.with_switch(|sw| sw.read_table("InVlan").unwrap().len());
    assert_eq!(remaining, 0);
}

#[test]
fn digest_feedback_over_sockets() {
    // A switch whose digests travel over TCP into the controller, whose
    // output travels back over TCP into the switch.
    let schema = ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).unwrap();
    let program = p4sim::parse_p4(snvs::assets::SNVS_P4).unwrap();
    let device = SwitchDevice::new(Switch::new(program.clone()));
    let p4_service = ControlService::start(device.clone(), "127.0.0.1:0").unwrap();

    let nerpa_program = NerpaProgram {
        schema,
        p4info: p4sim::P4Info::from_program(&program),
        rules: snvs::assets::SNVS_RULES.to_string(),
        options: CodegenOptions { per_switch: true },
    };
    let mut controller = Controller::new(&nerpa_program).unwrap();
    let write_client = ControlClient::connect(p4_service.local_addr()).unwrap();
    controller.add_switch(Box::new(write_client));

    // Configure through the in-process DB for brevity.
    let mut db = ovsdb::Database::new(ovsdb::Schema::parse(snvs::assets::SNVS_SCHEMA).unwrap());
    let (_, changes) = db.transact(&json!([
        {"op": "insert", "table": "Switch", "row": {"idx": 0}},
        {"op": "insert", "table": "Port",
         "row": {"id": 1, "vlan_mode": "access", "tag": 10}},
        {"op": "insert", "table": "Port",
         "row": {"id": 2, "vlan_mode": "access", "tag": 10}}
    ]));
    controller.handle_row_changes(&changes).unwrap();

    // Digest subscription over TCP.
    let digest_client = ControlClient::connect(p4_service.local_addr()).unwrap();
    let digests = digest_client.subscribe_digests().unwrap();

    // A frame enters port 1; the digest arrives over the socket.
    let mut frame = vec![0u8; 20];
    frame[5] = 0xBB; // dst
    frame[11] = 0xAA; // src
    frame[12] = 0x08; // ethertype ipv4
    device.inject(1, &frame);
    let batch = digests
        .recv_timeout(Duration::from_secs(5))
        .expect("digests");
    controller.handle_digests(0, &batch).unwrap();

    // The learned MAC is installed back into the switch via TCP.
    let macs = device.with_switch(|sw| sw.read_table("MacLearned").unwrap().to_vec());
    assert_eq!(macs.len(), 1, "{macs:?}");
    assert_eq!(macs[0].action, "output");
    assert_eq!(macs[0].params, vec![1]);
}
